"""Fused-QKV attention and inference-mode fast path.

The fused ``(D, 3D)`` projection must be a pure refactor: numerically
identical to the historical separate q/k/v Linears in forward and backward,
loadable from legacy checkpoints, and invisible to training dynamics.
Inference mode must skip every backward cache and drop attention maps
unless retention is requested.
"""

import numpy as np
import pytest

from repro.nn import (
    ClassificationHead,
    EncoderConfig,
    MultiHeadSelfAttention,
    TransformerEncoder,
)
from repro.nn.dtype import use_dtype

RNG = np.random.default_rng(3)


@pytest.fixture(autouse=True)
def _float64():
    """Equivalence checks want float64 so tolerances can be tight."""
    with use_dtype(np.float64):
        yield


def _unfused_slices(attn):
    d = attn.d_model
    W = attn.qkv_proj.W.data
    b = attn.qkv_proj.b.data
    return [(W[:, i * d:(i + 1) * d], b[i * d:(i + 1) * d]) for i in range(3)]


def _unfused_forward(attn, x, mask=None):
    """The pre-fusion algorithm: three separate projections, same math."""
    (Wq, bq), (Wk, bk), (Wv, bv) = _unfused_slices(attn)
    b, l, _ = x.shape

    def split(y):
        return y.reshape(b, l, attn.n_heads, attn.d_head).transpose(0, 2, 1, 3)

    q, k, v = split(x @ Wq + bq), split(x @ Wk + bk), split(x @ Wv + bv)
    scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(attn.d_head)
    if mask is not None:
        scores = scores + (1.0 - mask[:, None, None, :]) * -1e9
    shifted = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    weights /= weights.sum(axis=-1, keepdims=True)
    context = (weights @ v).transpose(0, 2, 1, 3).reshape(b, l, attn.d_model)
    return context @ attn.out_proj.W.data + attn.out_proj.b.data


class TestFusedEquivalence:
    def test_forward_matches_unfused(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=5).eval()
        x = RNG.normal(size=(3, 6, 8))
        np.testing.assert_allclose(attn.forward(x), _unfused_forward(attn, x),
                                   atol=1e-12)

    def test_forward_matches_unfused_masked(self):
        attn = MultiHeadSelfAttention(8, 4, dropout=0.0, rng=6).eval()
        x = RNG.normal(size=(2, 5, 8))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 0]], dtype=np.float64)
        np.testing.assert_allclose(attn.forward(x, mask),
                                   _unfused_forward(attn, x, mask), atol=1e-12)

    def test_backward_matches_unfused_numerically(self):
        """Fused analytic input/parameter grads vs central differences of the
        *unfused* forward — ties the fused backward to the legacy math."""
        attn = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=7).eval()
        x = RNG.normal(size=(1, 3, 4))

        out = attn.forward(x)
        attn.zero_grad()
        dx = attn.backward(np.ones_like(out))

        def numeric(arr):
            grad = np.zeros_like(arr)
            it = np.nditer(arr, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                orig = arr[idx]
                arr[idx] = orig + 1e-6
                f_plus = _unfused_forward(attn, x).sum()
                arr[idx] = orig - 1e-6
                f_minus = _unfused_forward(attn, x).sum()
                arr[idx] = orig
                grad[idx] = (f_plus - f_minus) / 2e-6
                it.iternext()
            return grad

        np.testing.assert_allclose(dx, numeric(x), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(attn.qkv_proj.W.grad,
                                   numeric(attn.qkv_proj.W.data),
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(attn.qkv_proj.b.grad,
                                   numeric(attn.qkv_proj.b.data),
                                   rtol=1e-4, atol=1e-6)

    def test_legacy_state_dict_loads(self):
        """Checkpoints with separate q/k/v projections load into the fused
        layout and reproduce the source model's outputs."""
        src = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=8).eval()
        d = src.d_model
        state = src.state_dict()
        legacy = {"out_proj.W": state["out_proj.W"], "out_proj.b": state["out_proj.b"]}
        for i, name in enumerate(["q_proj", "k_proj", "v_proj"]):
            legacy[f"{name}.W"] = state["qkv_proj.W"][:, i * d:(i + 1) * d]
            legacy[f"{name}.b"] = state["qkv_proj.b"][i * d:(i + 1) * d]

        dst = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=99).eval()
        dst.load_state_dict(legacy)
        x = RNG.normal(size=(2, 4, 8))
        np.testing.assert_allclose(dst.forward(x), src.forward(x), atol=1e-12)

    def test_legacy_encoder_state_loads(self):
        """Legacy per-projection keys migrate through the full encoder stack
        (the load_pretrained_encoder / persistence path)."""
        cfg = EncoderConfig(vocab_size=11, d_model=8, n_heads=2, n_layers=2,
                            d_ff=12, max_len=6, dropout=0.0)
        enc = TransformerEncoder(cfg, rng=0)
        legacy = {}
        for key, value in enc.state_dict().items():
            if key.endswith("attn.qkv_proj.W"):
                stem = key[: -len("qkv_proj.W")]
                for i, name in enumerate(["q_proj", "k_proj", "v_proj"]):
                    legacy[f"{stem}{name}.W"] = value[:, i * 8:(i + 1) * 8]
            elif key.endswith("attn.qkv_proj.b"):
                stem = key[: -len("qkv_proj.b")]
                for i, name in enumerate(["q_proj", "k_proj", "v_proj"]):
                    legacy[f"{stem}{name}.b"] = value[i * 8:(i + 1) * 8]
            else:
                legacy[key] = value

        other = TransformerEncoder(cfg, rng=1).eval()
        other.load_state_dict(legacy)
        enc.eval()
        ids = np.array([[1, 5, 2, 0], [3, 4, 0, 0]])
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=np.float64)
        np.testing.assert_allclose(other.forward(ids, mask),
                                   enc.forward(ids, mask), atol=1e-12)


class TestInferenceMode:
    def _model(self):
        cfg = EncoderConfig(vocab_size=11, d_model=8, n_heads=2, n_layers=1,
                            d_ff=12, max_len=6, dropout=0.1)
        return TransformerEncoder(cfg, rng=0), ClassificationHead(8, 4, rng=1)

    def test_outputs_match_eval(self):
        enc, head = self._model()
        ids = np.array([[1, 5, 2, 0]])
        mask = np.array([[1, 1, 1, 0]], dtype=np.float64)
        enc.eval(); head.eval()
        ref = head.forward(enc.forward(ids, mask))
        enc.inference_mode(); head.inference_mode()
        np.testing.assert_allclose(head.forward(enc.forward(ids, mask)), ref,
                                   atol=1e-12)

    def test_inference_forward_caches_nothing(self):
        enc, head = self._model()
        enc.inference_mode(); head.inference_mode()
        ids = np.array([[1, 5, 2, 0]])
        mask = np.array([[1, 1, 1, 0]], dtype=np.float64)
        head.forward(enc.forward(ids, mask))
        layer = enc.layers[0]
        assert layer.attn._cache is None
        assert layer.attn.qkv_proj._x is None
        assert layer.attn.out_proj._x is None
        assert layer.ffn.fc1._x is None
        assert layer.ffn.act._cache is None
        assert layer.ln1._cache is None
        assert enc.tok_emb._ids is None
        assert head.fc1._x is None
        assert head._seq_shape is None

    def test_last_attention_opt_in(self):
        enc, _ = self._model()
        ids = np.array([[1, 5, 2, 0]])
        mask = np.array([[1, 1, 1, 0]], dtype=np.float64)

        enc.inference_mode()
        enc.forward(ids, mask)
        assert all(m is None for m in enc.attention_maps())

        for layer in enc.layers:
            layer.attn.retain_attention = True
        enc.forward(ids, mask)
        maps = enc.attention_maps()
        assert all(m is not None for m in maps)
        np.testing.assert_allclose(maps[0].sum(axis=-1), 1.0, atol=1e-10)

        # plain eval still retains (gradcheck and training introspection)
        enc.eval()
        for layer in enc.layers:
            layer.attn.retain_attention = False
        enc.forward(ids, mask)
        assert all(m is not None for m in enc.attention_maps())

    def test_train_resets_inference_flag(self):
        enc, _ = self._model()
        enc.inference_mode()
        assert enc.layers[0].attn.inference
        enc.train()
        assert not enc.layers[0].attn.inference
        assert enc.layers[0].attn.training
