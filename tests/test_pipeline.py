"""Integration tests for the experiment pipeline at a tiny scale."""

import pytest

from repro.models.pragformer import PragFormerConfig
from repro.pipeline import ScaleConfig, get_scale
from repro.pipeline import experiments as E
from repro.pipeline.context import get_context
from repro.tokenize import Representation

TINY = ScaleConfig(
    name="tiny-test",
    corpus_records=260,
    epochs=2,
    mlm_epochs=1,
    pragformer=PragFormerConfig(d_model=32, n_heads=2, n_layers=1, d_ff=64,
                                d_head_hidden=32, batch_size=32, seed=0),
)


@pytest.fixture(scope="module")
def ctx():
    return get_context(TINY)


class TestContext:
    def test_memoized_per_scale(self, ctx):
        assert get_context(TINY) is ctx

    def test_corpus_size(self, ctx):
        assert len(ctx.corpus) == TINY.corpus_records

    def test_encoded_cached(self, ctx):
        assert ctx.encoded() is ctx.encoded()

    def test_pragformer_trained_once(self, ctx):
        m1 = ctx.pragformer
        m2 = ctx.pragformer
        assert m1 is m2

    def test_default_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert get_scale().name == "full"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            get_scale()


class TestStatExperiments:
    def test_table3(self):
        stats = E.exp_table3(TINY)
        assert stats["total_code_snippets"] == TINY.corpus_records
        assert stats["for_loops_with_omp"] > 0

    def test_table4(self):
        hist = E.exp_table4(TINY)
        assert sum(hist.values()) == TINY.corpus_records

    def test_fig3(self):
        dist = E.exp_fig3(TINY)
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_table5(self):
        sizes = E.exp_table5(TINY)
        assert set(sizes) == {"directive", "clause"}
        assert sizes["directive"]["train"] > sizes["directive"]["test"]

    def test_table7(self):
        stats = E.exp_table7(TINY)
        assert set(stats) == {r.value for r in Representation}
        assert stats["replaced-text"]["train_vocab_size"] < stats["text"]["train_vocab_size"]


class TestModelExperiments:
    def test_table8_structure(self):
        rows = E.exp_table8(TINY)
        assert set(rows) == {"PragFormer", "BoW", "ComPar"}
        for name, m in rows.items():
            for key in ("precision", "recall", "f1", "accuracy"):
                assert 0.0 <= m[key] <= 1.0, (name, key)

    def test_fig7_structure(self):
        bins = E.exp_fig7(TINY)
        assert abs(sum(b["share_of_errors"] for b in bins.values()) - 1.0) < 1e-9 \
            or all(b["errors"] == 0 for b in bins.values())

    def test_table9_and_10(self):
        for fn in (E.exp_table9, E.exp_table10):
            rows = fn(TINY)
            assert set(rows) == {"PragFormer", "BoW", "ComPar"}

    def test_table11_structure(self):
        rows = E.exp_table11(TINY)
        assert "PragFormer PolyBench" in rows
        assert rows["ComPar PolyBench"]["parse_failures"] > 0

    def test_table12(self):
        results = E.exp_table12_fig8(TINY, n_lime_samples=40)
        assert len(results) == 4
        names = {r["name"] for r in results}
        assert "io_loop" in names and "polybench_mvt" in names
        for r in results:
            assert r["prediction"] in (0, 1)
            assert len(r["top_tokens"]) > 0

    def test_fig456_all_representations(self):
        curves = E.exp_fig456(TINY)
        assert set(curves) == {r.value for r in Representation}
        for series in curves.values():
            assert len(series["valid_accuracy"]) == TINY.epochs
            assert len(series["train_loss"]) == TINY.epochs


class TestAblations:
    def test_pretraining_ablation_structure(self):
        result = E.ablation_pretraining(TINY)
        assert set(result) == {"pretrained", "scratch"}
        assert all(0 <= v <= 1 for v in result.values())

    def test_seq_length_ablation_structure(self):
        result = E.ablation_seq_length(TINY)
        assert set(result) == {"max_len_32", "max_len_64", "max_len_110"}
