"""Canary checkpoint rollouts: digest-sliced serving, promote/rollback.

The operability contract under test (see ``docs/operations.md``): a canary
serves a *deterministic* digest slice of traffic from a second checkpoint
while the primary keeps the rest; per-arm latency / error /
verdict-agreement counters accumulate in ``/stats``; ``promote`` atomically
makes the canary the primary through the PR-4 versioned-slot machinery (so
a prediction cached under the old primary can never be served afterwards);
``rollback`` drops it without touching the primary; and a
:class:`~repro.serve.CanaryPolicy` finishes the rollout automatically.
The acceptance gate drives concurrent ``advise_full_async`` load across a
``start_canary`` → ``promote`` sequence and requires zero dropped
requests, zero stale cache hits, and deterministic arm assignment.
"""

import functools
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    AutoscaleConfig,
    CanaryPolicy,
    EngineConfig,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
    canary_routes,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

# enough snippets that a 50% digest slice reliably contains both arms
SNIPPETS = [
    f"for (i = 0; i < n; i++) a[i] = b[i] * {k} + c[i];" for k in range(16)
]

HEAD_NAMES = ("directive", "private", "reduction")
FRACTION = 0.5


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)


def _registry(vocab, seed0):
    """Three tiny heads; different ``seed0`` gives different weights."""
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name, PragFormer(len(vocab),
                                           replace(TINY, seed=seed0 + k),
                                           rng=seed0 + k),
                          vocab, max_len=TINY.max_len)
    return registry


@pytest.fixture()
def checkpoints(vocab, tmp_path):
    """Two advisor checkpoints with distinct weights, on disk."""
    a, b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
    _registry(vocab, 0).save(a)
    _registry(vocab, 100).save(b)
    return a, b


@pytest.fixture()
def verdicts(vocab, checkpoints):
    """Reference FullAdvice per snippet from fresh engines on A and B."""
    a, b = checkpoints
    with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as ea, \
            MultiModelEngine(ModelRegistry.from_checkpoint(b)) as eb:
        return ea.advise_full_many(SNIPPETS), eb.advise_full_many(SNIPPETS)


def _assert_arm_split(got, exp_a, exp_b, fraction=FRACTION):
    """Every snippet's verdict must come from its digest-assigned arm."""
    canary_rows = 0
    for code, g, a, b in zip(SNIPPETS, got, exp_a, exp_b):
        ref = b if canary_routes(code, fraction) else a
        canary_rows += canary_routes(code, fraction)
        np.testing.assert_allclose(g.directive.probability,
                                   ref.directive.probability, atol=1e-6)
        for name in ref.clauses:
            np.testing.assert_allclose(g.clauses[name].probability,
                                       ref.clauses[name].probability,
                                       atol=1e-6)
    return canary_rows


class TestRouting:
    def test_deterministic_and_fraction_scaled(self):
        for fraction in (0.1, 0.5, 1.0):
            first = [canary_routes(code, fraction) for code in SNIPPETS]
            second = [canary_routes(code, fraction) for code in SNIPPETS]
            assert first == second
        # fraction 1.0 routes everything, and slices nest monotonically:
        # a snippet in the 10% slice is also in the 50% slice
        assert all(canary_routes(code, 1.0) for code in SNIPPETS)
        for code in SNIPPETS:
            if canary_routes(code, 0.1):
                assert canary_routes(code, 0.5)

    def test_split_has_both_arms(self):
        routed = [canary_routes(code, FRACTION) for code in SNIPPETS]
        assert any(routed) and not all(routed), (
            "test corpus must exercise both arms — regenerate SNIPPETS")


class TestStartCanary:
    def test_sync_and_async_serve_the_digest_slice(self, checkpoints,
                                                   verdicts):
        a, b = checkpoints
        exp_a, exp_b = verdicts
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            version = engine.start_canary(b, FRACTION)
            assert version == f"v1:{b.name}"
            got_sync = engine.advise_full_many(SNIPPETS)
            n_canary = _assert_arm_split(got_sync, exp_a, exp_b)
            assert n_canary >= 1
            got_async = [engine.advise_full_async(code) for code in SNIPPETS]
            _assert_arm_split(got_async, exp_a, exp_b)
            # primary model_version is untouched while the canary runs
            assert engine.model_version == "0"

    def test_arm_counters_accumulate(self, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, FRACTION)
            engine.advise_full_many(SNIPPETS)
            for code in SNIPPETS:
                engine.advise_full_async(code)
            arms = engine.stats()["canary"]["arms"]
            expected_canary = 2 * sum(
                canary_routes(code, FRACTION) for code in SNIPPETS)
            assert arms["canary"]["requests"] == expected_canary
            assert arms["primary"]["requests"] == (
                2 * len(SNIPPETS) - expected_canary)
            assert arms["canary"]["errors"] == 0
            # every canary request was agreement-compared against a shadow
            # primary directive verdict
            assert (arms["canary"]["agreements"]
                    + arms["canary"]["disagreements"]) == expected_canary
            assert arms["canary"]["latency_samples"] == expected_canary
            assert arms["canary"]["latency_total_s"] > 0

    def test_second_canary_rejected(self, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, FRACTION)
            with pytest.raises(RuntimeError, match="already active"):
                engine.start_canary(b, FRACTION)

    def test_bad_checkpoint_leaves_primary_untouched(self, checkpoints,
                                                     tmp_path):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            before = engine.advise_full(SNIPPETS[0])
            with pytest.raises(FileNotFoundError):
                engine.start_canary(tmp_path / "nope", FRACTION)
            assert engine.stats()["canary"] is None
            assert engine.advise_full(SNIPPETS[0]) == before

    def test_invalid_fraction_rejected(self, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            for fraction in (0.0, -0.1, 1.5):
                with pytest.raises(ValueError):
                    engine.start_canary(b, fraction)

    def test_reload_blocked_while_canary_active(self, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, FRACTION)
            with pytest.raises(RuntimeError, match="canary"):
                engine.reload(b)


class TestPromoteRollback:
    def test_promote_swaps_primary_and_no_stale_cache(self, checkpoints,
                                                      verdicts):
        a, b = checkpoints
        _, exp_b = verdicts
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.advise_full_many(SNIPPETS)   # cached under version "0"
            engine.advise_full_many(SNIPPETS)   # provably cached
            hits_before = engine.stats()["combined"]["cache_hits"]
            assert hits_before > 0
            version = engine.start_canary(b, FRACTION)
            engine.promote()
            assert engine.model_version == version
            assert engine.stats()["canary"] is None
            got = engine.advise_full_many(SNIPPETS)  # all arms now B
            for g, ref in zip(got, exp_b):
                np.testing.assert_allclose(g.directive.probability,
                                           ref.directive.probability,
                                           atol=1e-6)
            # version-prefixed keys: the old primary's cached predictions
            # MISS after the promote — zero new hits
            assert engine.stats()["combined"]["cache_hits"] == hits_before
            summary = engine.stats()["last_canary"]
            assert summary["outcome"] == "promoted"
            assert summary["version"] == version

    def test_rollback_drops_canary_keeps_primary(self, checkpoints,
                                                 verdicts):
        a, b = checkpoints
        exp_a, _ = verdicts
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, FRACTION)
            engine.rollback()
            assert engine.model_version == "0"
            got = engine.advise_full_many(SNIPPETS)  # all arms back to A
            for g, ref in zip(got, exp_a):
                np.testing.assert_allclose(g.directive.probability,
                                           ref.directive.probability,
                                           atol=1e-6)
            assert engine.stats()["last_canary"]["outcome"] == "rolled_back"

    def test_finish_without_canary_raises(self, checkpoints):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            with pytest.raises(RuntimeError, match="no canary"):
                engine.promote()
            with pytest.raises(RuntimeError, match="no canary"):
                engine.rollback()


class TestCanaryPolicy:
    def test_auto_promote_on_agreement(self, vocab, checkpoints, tmp_path):
        """A canary identical to the primary agrees on every verdict, so a
        permissive policy promotes it once the sample floor is met."""
        a, _ = checkpoints
        same = tmp_path / "ckpt_same"
        _registry(vocab, 0).save(same)   # same seeds as A -> same verdicts
        policy = CanaryPolicy(min_samples=4, max_disagreement=0.0,
                              max_error_rate=0.0, auto_promote=True)
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            version = engine.start_canary(same, 1.0, policy=policy)
            for code in SNIPPETS:
                engine.advise_full_async(code)
            summary = engine.stats()["last_canary"]
            assert summary is not None and summary["outcome"] == "promoted"
            assert "policy" in summary["reason"]
            assert engine.model_version == version

    def test_auto_rollback_on_disagreement(self, checkpoints):
        """Different weights disagree; a zero-tolerance policy rolls back
        and the primary keeps serving version 0."""
        a, b = checkpoints
        policy = CanaryPolicy(min_samples=4, max_disagreement=0.0,
                              max_error_rate=1.0, auto_promote=True)
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, 1.0, policy=policy)
            engine.advise_full_many(SNIPPETS)
            summary = engine.stats()["last_canary"]
            # B's untrained weights all but surely disagree somewhere on 16
            # snippets; if they happened to agree the policy promoted — both
            # are legitimate policy outcomes, only *no decision* is a bug
            assert summary is not None
            if summary["outcome"] == "rolled_back":
                assert engine.model_version == "0"
                assert "disagreement" in summary["reason"]

    def test_no_decision_below_sample_floor(self, checkpoints):
        a, b = checkpoints
        policy = CanaryPolicy(min_samples=10_000)
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.start_canary(b, 1.0, policy=policy)
            engine.advise_full_many(SNIPPETS)
            assert engine.stats()["canary"] is not None  # still rolling out

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CanaryPolicy(min_samples=0)
        with pytest.raises(ValueError):
            CanaryPolicy(max_disagreement=1.5)
        with pytest.raises(ValueError):
            CanaryPolicy(max_error_rate=-0.1)


class TestCanaryUnderLiveTraffic:
    def test_promote_under_concurrent_async_load(self, checkpoints,
                                                 verdicts):
        """The acceptance gate: concurrent ``advise_full_async`` clients
        hammer the engine while ``start_canary`` → ``promote`` runs — zero
        dropped requests, deterministic arm assignment before, all-B after,
        zero stale cache hits (checked via the B reference verdicts)."""
        a, b = checkpoints
        _, exp_b = verdicts
        engine = MultiModelEngine(ModelRegistry.from_checkpoint(a))
        errors: list = []
        served = [0]
        stop = threading.Event()

        def hammer(worker):
            try:
                k = worker
                while not stop.is_set():
                    engine.advise_full_async(SNIPPETS[k % len(SNIPPETS)])
                    served[0] += 1
                    k += 1
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        try:
            for t in threads:
                t.start()
            version = engine.start_canary(b, FRACTION)
            # let both arms serve real traffic mid-rollout
            for code in SNIPPETS:
                engine.advise_full_async(code)
            arms = engine.stats()["canary"]["arms"]
            assert arms["canary"]["requests"] >= 1
            assert arms["primary"]["requests"] >= 1
            assert arms["canary"]["errors"] == 0
            engine.promote()
            stop.set()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            assert served[0] > 0
            assert engine.model_version == version
            # post-promote verdicts are B's — on every snippet, both arms
            got = engine.advise_full_many(SNIPPETS)
            for g, ref in zip(got, exp_b):
                np.testing.assert_allclose(g.directive.probability,
                                           ref.directive.probability,
                                           atol=1e-6)
        finally:
            stop.set()
            engine.close()


def _build_multi(path, config):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path),
                            config=config)


class TestShardedCanary:
    def test_broadcast_split_and_promote(self, checkpoints, verdicts):
        a, b = checkpoints
        exp_a, exp_b = verdicts
        factory = functools.partial(_build_multi, a,
                                    EngineConfig(max_batch_size=8))
        with ShardedEngine(factory, n_shards=2) as sharded:
            version = sharded.start_canary(b, FRACTION)
            got = sharded.advise_full_many(SNIPPETS)
            _assert_arm_split(got, exp_a, exp_b)
            stats = sharded.stats()
            assert stats["canary"]["version"] == version
            assert stats["canary"]["shards_live"] == 2
            assert stats["canary"]["arms"]["canary"]["requests"] >= 1
            assert sharded.promote() == version
            got = sharded.advise_full_many(SNIPPETS)
            for g, ref in zip(got, exp_b):
                np.testing.assert_allclose(g.directive.probability,
                                           ref.directive.probability,
                                           atol=1e-5)
            stats = sharded.stats()
            assert stats["model_version"] == version
            assert stats["canary"] is None
            assert stats["last_canary"]["outcome"] == "promoted"

    def test_rollback_broadcast(self, checkpoints, verdicts):
        a, b = checkpoints
        exp_a, _ = verdicts
        factory = functools.partial(_build_multi, a,
                                    EngineConfig(max_batch_size=8))
        with ShardedEngine(factory, n_shards=2) as sharded:
            sharded.start_canary(b, FRACTION)
            sharded.rollback()
            got = sharded.advise_full_many(SNIPPETS)
            for g, ref in zip(got, exp_a):
                np.testing.assert_allclose(g.directive.probability,
                                           ref.directive.probability,
                                           atol=1e-5)
            assert sharded.stats()["canary"] is None

    def test_reload_blocked_while_canary_active(self, checkpoints):
        a, b = checkpoints
        factory = functools.partial(_build_multi, a,
                                    EngineConfig(max_batch_size=8))
        with ShardedEngine(factory, n_shards=2) as sharded:
            sharded.start_canary(b, FRACTION)
            with pytest.raises(RuntimeError, match="canary"):
                sharded.reload(b)

    def test_grown_worker_replays_canary(self, checkpoints, verdicts):
        """Acceptance: an autoscaler grow mid-rollout keeps canary state
        consistent — the grown worker splits traffic like its siblings."""
        a, b = checkpoints
        exp_a, exp_b = verdicts
        factory = functools.partial(_build_multi, a,
                                    EngineConfig(max_batch_size=8))
        cfg = AutoscaleConfig(min_shards=1, max_shards=2,
                              high_watermark=0.01, low_watermark=0.005,
                              window=2, cooldown_s=0.0)
        with ShardedEngine(factory, n_shards=1, autoscale=cfg) as sharded:
            version = sharded.start_canary(b, FRACTION)
            stop = threading.Event()
            errors: list = []

            def client():
                while not stop.is_set():
                    try:
                        sharded.advise_full_many(SNIPPETS)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            import time as _time
            deadline = _time.monotonic() + 45
            while sharded.n_shards < 2 and _time.monotonic() < deadline:
                _time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            assert sharded.n_shards == 2, "burst must grow the fleet"
            # the grown worker must agree on the rollout: every shard
            # reports the same canary version, and verdicts still split
            # by digest exactly as before the grow
            stats = sharded.stats()
            assert stats["canary"]["shards_live"] == 2
            assert stats["canary"]["version"] == version
            got = sharded.advise_full_many(SNIPPETS)
            _assert_arm_split(got, exp_a, exp_b)


class TestReviewRegressions:
    """Pinned fixes from the canary code review."""

    def test_canary_slice_independent_of_shard_routing(self):
        """The canary digest must not be the shard-routing integer: with
        ``gcd(n_shards, 100) > 1`` a shared hash would pin every canary
        residue to a fixed shard subset and starve the rest.  With the
        independent digest, every shard of common fleet sizes sees canary
        traffic at a small fraction."""
        from repro.serve import shard_of

        codes = [f"for (i = 0; i < {k}; i++) x[i] = {k};"
                 for k in range(2000)]
        for n_shards in (2, 4, 5, 10):
            canary_per_shard = [0] * n_shards
            for code in codes:
                if canary_routes(code, 0.05):
                    canary_per_shard[shard_of(code, n_shards)] += 1
            assert all(count > 0 for count in canary_per_shard), (
                f"n_shards={n_shards}: canary slice starves shards "
                f"{[s for s, c in enumerate(canary_per_shard) if not c]}")

    def test_fraction_quantizing_to_zero_rejected(self, checkpoints):
        """fraction < 0.005 rounds to a 0% slice — the rollout would idle
        forever (and block reload) while serving nothing; reject it."""
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            with pytest.raises(ValueError, match="quantizes to zero"):
                engine.start_canary(b, 0.004)
            assert engine.stats()["canary"] is None

    def test_watcher_retries_canary_blocked_reload(self, vocab,
                                                   checkpoints):
        """A checkpoint landing in the watch dir *during* a canary must
        not be dropped forever: the canary-blocked reload is retryable,
        and the watcher lands it as soon as the rollout finishes."""
        from repro.serve import CheckpointWatcher

        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            watcher = CheckpointWatcher(engine, a, interval=0.05)
            engine.start_canary(b, FRACTION)
            _registry(vocab, 77).save(a)   # rollout lands mid-canary
            assert watcher.poll_once() is True
            assert "canary" in (watcher.last_error or "")
            assert watcher.reloads == 0
            engine.promote()
            # the same mtime change is retried now that the canary ended
            assert watcher.poll_once() is True
            assert watcher.reloads == 1 and watcher.last_error is None
            assert engine.model_version == f"v2:{a.name}"

    def test_sharded_promote_converges_after_partial_state(self,
                                                           checkpoints):
        """A shard that already dropped/promoted its canary answers "no
        canary active"; promote() must tolerate that and converge instead
        of wedging the rollout."""
        a, b = checkpoints
        factory = functools.partial(_build_multi, a,
                                    EngineConfig(max_batch_size=8))
        with ShardedEngine(factory, n_shards=2) as sharded:
            version = sharded.start_canary(b, FRACTION)
            # knock shard 1's canary out from under the parent, as a
            # partially failed earlier promote would leave it
            status, _ = sharded._collect(
                sharded._send(1, "canary_promote", None))
            assert status == "ok"
            assert sharded.promote() == version   # converges, no wedge
            stats = sharded.stats()
            assert stats["model_version"] == version
            assert stats["canary"] is None
