"""Error recovery in the C frontend: recover-mode lexing, resilient
parsing, the nesting-depth and time-budget limits, the committed dirty
corpus, and the seeded fuzz property tests (never raises, always
terminates in budget) — including the serving-engine path.

Scale the fuzz sweep with ``REPRO_FUZZ_N`` (mutants per seed corpus;
the CI ``--fuzz`` stage raises it, the default keeps tier-1 fast).
"""

import os
import time
from pathlib import Path

import pytest

from repro.clang import (
    DEFAULT_MAX_DEPTH,
    ErrorStmt,
    ParseError,
    parse,
    parse_resilient,
)
from repro.clang.fuzz import MUTATORS, check_snippet, fuzz_corpus, mutate
from repro.clang.lexer import TokenKind, tokenize
from repro.clang.serialize import ast_to_dfs_text
from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import EngineConfig, InferenceEngine
from repro.tokenize import ERROR_TOKEN, Vocab, robust_text_tokens, text_tokens

DIRTY_DIR = Path(__file__).parent / "data" / "dirty"
FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "150"))

CLEAN = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) { s += a[i]; }",
    "while (k < n) { total += buf[k]; k++; }",
    'for (i = 0; i < n; i++) printf("%d", a[i]);',
    "if (x > 0) { y = x * 2; } else { y = -x; }",
    "do { n--; } while (n > 0);",
]


def _dirty_files():
    files = sorted(DIRTY_DIR.glob("*.c"))
    assert len(files) >= 50, "dirty corpus must hold ~50 fixtures"
    return files


class TestRecoverLexer:
    def test_clean_input_identical_to_strict(self):
        for code in CLEAN:
            strict = tokenize(code)
            recovered = tokenize(code, recover=True)
            assert [(t.kind, t.value) for t in strict] == \
                   [(t.kind, t.value) for t in recovered]

    @pytest.mark.parametrize("dirty", [
        'char *s = "never closed;\nint x = 1;',
        "char c = 'y;\nint x = 1;",
        "int x = 1; /* never closed",
        "x = 1 @ 2;",
        "a \x00 b",
    ])
    def test_dirty_input_yields_error_tokens_not_exceptions(self, dirty):
        toks = tokenize(dirty, recover=True)
        assert any(t.kind is TokenKind.ERROR for t in toks)
        assert toks[-1].kind is TokenKind.EOF

    def test_unterminated_string_stops_at_newline(self):
        """One bad literal must not swallow the rest of the file."""
        toks = tokenize('x = "oops;\nint y = 1;', recover=True)
        values = [t.value for t in toks]
        assert "y" in values  # the next line still lexes


class TestResilientParser:
    def test_clean_input_no_diagnostics(self):
        for code in CLEAN:
            ast, diags = parse_resilient(code)
            assert diags == []
            assert ast_to_dfs_text(ast) == ast_to_dfs_text(parse(code))

    def test_partial_ast_preserves_good_statements(self):
        code = ('int a = "unterminated;\n'
                "for (i = 0; i < n; i++) a[i] = i;\n"
                "x = @@;")
        ast, diags = parse_resilient(code)
        assert diags
        labels = ast_to_dfs_text(ast)
        assert "For:" in labels          # the clean loop survived
        assert "ErrorStmt:" in labels    # the damage is explicit

    def test_error_stmt_nodes_serialize(self):
        from repro.clang.serialize import unparse

        ast, _ = parse_resilient("x = @@; y = 1;")
        assert any(isinstance(s, ErrorStmt) for s in ast.stmts)
        assert isinstance(unparse(ast), str)

    def test_diagnostics_carry_position_and_kind(self):
        _, diags = parse_resilient('x = "bad;\n@@')
        kinds = {d.kind for d in diags}
        assert "lex" in kinds
        assert all(d.line >= 1 and d.col >= 1 for d in diags)


class TestDepthLimit:
    def test_strict_mode_deterministic_parse_error(self):
        code = "x = " + "(" * 5000 + "1" + ")" * 5000 + ";"
        with pytest.raises(ParseError, match="nesting depth"):
            parse(code)

    def test_resilient_mode_notes_depth_diagnostic(self):
        code = "{" * 1000 + "x = 1;" + "}" * 1000
        ast, diags = parse_resilient(code)
        assert any(d.kind == "depth" for d in diags)
        assert ast_to_dfs_text(ast)  # partial AST still walks

    def test_custom_depth_limit_respected(self):
        code = "x = " + "(" * 30 + "1" + ")" * 30 + ";"
        parse(code)  # fits the default limit of DEFAULT_MAX_DEPTH
        assert DEFAULT_MAX_DEPTH > 20
        with pytest.raises(ParseError, match="nesting depth"):
            parse(code, max_depth=20)

    def test_never_recursion_error(self):
        code = "(" * 4000 + "{" * 400
        try:
            parse(code)
        except ParseError:
            pass
        parse_resilient(code)  # must not raise at all


class TestBudget:
    def test_tiny_budget_terminates_with_diagnostic(self):
        code = "x = 1;\n" * 5000
        _, diags = parse_resilient(code, budget_s=1e-9)
        assert any(d.kind == "budget" for d in diags)

    def test_generous_budget_is_invisible(self):
        ast, diags = parse_resilient(CLEAN[0], budget_s=60.0)
        assert diags == []


class TestRobustTokens:
    def test_identical_to_strict_on_clean_input(self):
        for code in CLEAN:
            assert robust_text_tokens(code) == text_tokens(code)

    def test_error_sentinel_on_dirty_input(self):
        toks = robust_text_tokens('x = "bad;')
        assert ERROR_TOKEN in toks


class TestDirtyCorpus:
    """Every committed fixture parses resiliently: no exception, a
    diagnostic trail, a walkable AST, all inside the budget."""

    @pytest.mark.parametrize(
        "path", _dirty_files(), ids=lambda p: p.stem)
    def test_fixture_recovers(self, path):
        code = path.read_bytes().decode("utf-8", errors="replace")
        report = check_snippet(code, budget_s=5.0)
        assert report["elapsed_s"] < 5.0
        assert report["dfs_tokens"] >= 0

    def test_corpus_produces_diagnostics_somewhere(self):
        total = 0
        for path in _dirty_files():
            code = path.read_bytes().decode("utf-8", errors="replace")
            _, diags = parse_resilient(code, budget_s=5.0)
            total += len(diags)
        assert total > 0


class TestFuzzProperties:
    """Seeded fuzz sweep: mutants of clean code never raise and always
    terminate within the budget, in the parser and through the engine."""

    def test_mutators_are_deterministic(self):
        import random

        for name in MUTATORS:
            a = MUTATORS[name](CLEAN[0], random.Random(7))
            b = MUTATORS[name](CLEAN[0], random.Random(7))
            assert a == b, name

    def test_mutate_only_uses_registered_mutators(self):
        import random

        rng = random.Random(3)
        for _ in range(20):
            assert isinstance(mutate(CLEAN[1], rng, corpus=CLEAN), str)

    def test_fuzz_sweep_never_raises(self):
        mutants = fuzz_corpus(CLEAN, n=FUZZ_N, seed=42)
        assert len(mutants) == FUZZ_N
        start = time.monotonic()
        for code in mutants:
            report = check_snippet(code, budget_s=2.0)
            assert report["diagnostics"] >= 0
        # the whole sweep stays interactive, not just each snippet
        assert time.monotonic() - start < 60.0

    def test_fuzzed_engine_path_always_answers(self):
        vocab = Vocab.build([text_tokens(c) for c in CLEAN], min_freq=1)
        tiny = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                                d_head_hidden=16, max_len=24, batch_size=8,
                                seed=0)
        engine = InferenceEngine(
            PragFormer(len(vocab), tiny), vocab, max_len=tiny.max_len,
            config=EngineConfig(max_snippet_bytes=1 << 16))
        mutants = fuzz_corpus(CLEAN, n=min(FUZZ_N, 100), seed=7)
        advices = engine.advise_many(mutants)
        assert len(advices) == len(mutants)
        for adv in advices:
            assert 0.0 <= adv.probability <= 1.0
        stats = engine.stats.as_dict()
        assert stats["requests"] >= len(mutants)
