"""Tests for the command-line interface."""


import pytest

from repro.cli import main


class TestBuildCorpus:
    def test_prints_table3_stats(self, capsys):
        assert main(["build-corpus", "--records", "60", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "total_code_snippets" in out
        assert "60" in out

    def test_writes_records(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(["build-corpus", "--records", "25", "--out", str(out_dir)]) == 0
        assert len(list(out_dir.glob("record_*"))) == 25


class TestComparCommand:
    def test_inserts_on_parallel_loop(self, tmp_path, capsys):
        f = tmp_path / "loop.c"
        f.write_text("for (i = 0; i < n; i++) s += a[i];\n")
        assert main(["compar", str(f)]) == 0
        out = capsys.readouterr().out
        assert "reduction(+:s)" in out

    def test_reports_reasons_on_serial_loop(self, tmp_path, capsys):
        f = tmp_path / "loop.c"
        f.write_text("for (i = 1; i < n; i++) a[i] = a[i-1];\n")
        assert main(["compar", str(f)]) == 0
        out = capsys.readouterr().out
        assert "no directive" in out
        assert "dependence" in out

    def test_parse_failure_exit_code(self, tmp_path, capsys):
        f = tmp_path / "loop.c"
        f.write_text("register int r;\nfor (i = 0; i < n; i++) a[i] = r;\n")
        assert main(["compar", str(f)]) == 1
        assert "parse failure" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "table99"])


class TestServeParser:
    """Flag plumbing for the serving subcommand (no models trained here)."""

    def _parse(self, argv):
        from unittest import mock

        from repro import cli

        captured = {}

        def fake_fn(args):
            captured.update(vars(args))
            return 0

        # patch the handler; main() resolves it from module globals when it
        # builds the parser, so flags flow exactly as shipped
        with mock.patch.object(cli, "_cmd_serve", fake_fn):
            assert cli.main(argv) == 0
        return captured

    def test_http_and_shard_flags(self):
        args = self._parse(["serve", "--http", "8080", "--shards", "4",
                            "--host", "0.0.0.0"])
        assert args["http"] == 8080
        assert args["shards"] == 4
        assert args["host"] == "0.0.0.0"

    def test_defaults_are_stdin_mode(self):
        args = self._parse(["serve"])
        assert args["http"] is None
        assert args["shards"] == 1
        assert args["batch_size"] == 128
        assert args["cache_size"] == 4096
        # operability knobs default off: no watch, no autoscale, no gating
        assert args["watch"] is None
        assert args["min_shards"] is None
        assert args["max_shards"] is None
        assert args["gate_margin"] is None

    def test_operability_flags(self):
        args = self._parse(["serve", "--http", "8080",
                            "--watch", "ckpt_dir", "--watch-interval", "0.5",
                            "--min-shards", "2", "--max-shards", "6",
                            "--gate-margin", "0.05"])
        assert args["watch"] == "ckpt_dir"
        assert args["watch_interval"] == 0.5
        assert args["min_shards"] == 2
        assert args["max_shards"] == 6
        assert args["gate_margin"] == 0.05

    def test_autoscale_config_from_flags(self):
        from argparse import Namespace

        from repro.cli import _autoscale_config

        assert _autoscale_config(Namespace()) is None
        cfg = _autoscale_config(Namespace(min_shards=2, max_shards=6, shards=1))
        assert (cfg.min_shards, cfg.max_shards) == (2, 6)
        # one-sided flags fill the other bound sensibly
        cfg = _autoscale_config(Namespace(min_shards=None, max_shards=4, shards=1))
        assert (cfg.min_shards, cfg.max_shards) == (1, 4)
        cfg = _autoscale_config(Namespace(min_shards=2, max_shards=None, shards=8))
        assert (cfg.min_shards, cfg.max_shards) == (2, 8)

    def test_watch_requires_http(self, capsys):
        assert main(["serve", "--watch", "ckpt_dir"]) == 2
        assert "--watch requires --http" in capsys.readouterr().err

    def test_gate_margin_requires_http(self, capsys):
        """Stdin mode serves the directive head only — a gating flag there
        must error loudly, not no-op silently."""
        assert main(["serve", "--gate-margin", "0.1"]) == 2
        assert "--gate-margin requires --http" in capsys.readouterr().err

    def test_canary_flags(self):
        args = self._parse(["serve", "--http", "8080",
                            "--canary", "ckpt_v2", "--canary-fraction", "0.25"])
        assert args["canary"] == "ckpt_v2"
        assert args["canary_fraction"] == 0.25
        # canary defaults off, at a 10% slice when enabled bare
        args = self._parse(["serve", "--http", "8080"])
        assert args["canary"] is None
        assert args["canary_fraction"] == 0.1

    def test_canary_requires_http(self, capsys):
        """Stdin mode has no multi-model advisor to split traffic over."""
        assert main(["serve", "--canary", "ckpt_v2"]) == 2
        assert "--canary requires --http" in capsys.readouterr().err
