"""Label-coherence tests over every generator family: the directive text,
clause labels, and family semantics must agree."""

import numpy as np
import pytest

from repro.clang import parse
from repro.clang.pragma import parse_pragma
from repro.corpus import POSITIVE_FAMILIES, NEGATIVE_FAMILIES
from repro.corpus.generators import (
    gen_minmax,
    gen_private_temp,
    gen_reduction_2d,
    gen_triangular,
    gen_unbalanced,
)
from repro.tokenize import text_tokens


def draws(gen, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [gen(rng) for _ in range(n)]


class TestDirectiveCoherence:
    @pytest.mark.parametrize("_, gen", POSITIVE_FAMILIES)
    def test_clause_variables_appear_in_code(self, _, gen):
        """Every variable referenced by a private/reduction clause must be a
        token of the snippet itself (a dangling clause would be a bug)."""
        for snip in draws(gen, 6):
            omp = parse_pragma(snip.directive)
            tokens = set(text_tokens(snip.code))
            for var in omp.private_vars:
                assert var in tokens, (snip.code, var)
            for _, var in omp.reduction_specs:
                assert var in tokens, (snip.code, var)

    def test_dynamic_schedule_only_on_unbalanced_families(self):
        for snip in draws(gen_unbalanced, 6, seed=1):
            sched = parse_pragma(snip.directive).schedule
            assert sched is not None and sched[0] == "dynamic"
        for snip in draws(gen_triangular, 6, seed=2):
            sched = parse_pragma(snip.directive).schedule
            assert sched is not None and sched[0] == "dynamic"

    def test_minmax_reductions_use_minmax_ops(self):
        for snip in draws(gen_minmax, 8, seed=3):
            specs = parse_pragma(snip.directive).reduction_specs
            assert len(specs) == 1
            assert specs[0][0] in ("min", "max")

    def test_private_temp_has_non_iter_private(self):
        for snip in draws(gen_private_temp, 6, seed=4):
            omp = parse_pragma(snip.directive)
            ast = parse(snip.code)
            # the private var is the temp, not the loop variable
            assert len(omp.private_vars) == 1

    def test_reduction_2d_has_both_clauses(self):
        for snip in draws(gen_reduction_2d, 6, seed=5):
            omp = parse_pragma(snip.directive)
            assert omp.has_private and omp.has_reduction


class TestFamilyMetadata:
    @pytest.mark.parametrize("_, gen", POSITIVE_FAMILIES + NEGATIVE_FAMILIES)
    def test_family_name_matches_function(self, _, gen):
        snip = gen(np.random.default_rng(9))
        base = gen.__name__.replace("gen_", "")
        assert snip.family == base or snip.family.startswith("unannotated"), (
            gen.__name__, snip.family)

    def test_weights_are_positive(self):
        for weight, _ in POSITIVE_FAMILIES + NEGATIVE_FAMILIES:
            assert weight > 0

    def test_no_duplicate_generators(self):
        fns = [g for _, g in POSITIVE_FAMILIES + NEGATIVE_FAMILIES]
        assert len(fns) == len(set(fns))
