"""Unit and property tests for the C lexer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang.lexer import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_keywords_recognized(self):
        assert kinds("for while if return") == [TokenKind.KEYWORD] * 4

    def test_identifiers(self):
        assert kinds("foo _bar baz123") == [TokenKind.IDENT] * 3

    def test_keyword_prefix_is_identifier(self):
        # 'fortran' starts with 'for' but is a plain identifier
        assert kinds("fortran") == [TokenKind.IDENT]

    def test_int_constants(self):
        assert kinds("0 42 0x1F 100u 7L 42UL") == [TokenKind.INT_CONST] * 6

    def test_float_constants(self):
        assert kinds("1.0 3.14 1e5 2.5e-3 1.0f .5") == [TokenKind.FLOAT_CONST] * 6

    def test_float_suffix_on_integer_literal(self):
        assert kinds("1f") == [TokenKind.FLOAT_CONST]

    def test_char_constant(self):
        assert values("'a' '\\n'") == ["'a'", "'\\n'"]
        assert kinds("'a'") == [TokenKind.CHAR_CONST]

    def test_string_constant(self):
        assert values('"hello world"') == ['"hello world"']
        assert kinds('"a" "b\\"c"') == [TokenKind.STRING] * 2

    def test_operator_maximal_munch(self):
        assert values("a <<= b >>= c ... d->e") == [
            "a", "<<=", "b", ">>=", "c", "...", "d", "->", "e",
        ]

    def test_increment_vs_plus(self):
        assert values("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_all_single_char_operators(self):
        src = "+ - * / % < > = ! & | ^ ~ ? : ; , . ( ) [ ] { }"
        assert all(k is TokenKind.OP for k in kinds(src))


class TestCommentsAndWhitespace:
    def test_line_comment_dropped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_dropped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_continuation(self):
        assert values("a\\\nb") == ["a", "b"]


class TestPreprocessor:
    def test_include_dropped(self):
        assert values('#include <stdio.h>\nint x;') == ["int", "x", ";"]

    def test_define_dropped(self):
        assert values("#define N 100\nN") == ["N"]

    def test_pragma_kept_as_token(self):
        toks = tokenize("#pragma omp parallel for\nfor(;;) ;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].value == "pragma omp parallel for"

    def test_pragma_with_continuation(self):
        toks = tokenize("#pragma omp parallel for \\\n private(i)\nx;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert "private(i)" in toks[0].value

    def test_keep_pragmas_false(self):
        toks = tokenize("#pragma omp parallel for\nx;", keep_pragmas=False)
        assert all(t.kind is not TokenKind.PRAGMA for t in toks)


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\n  @")
        assert exc.value.line == 2
        assert exc.value.col == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never closed')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'x")

    def test_stray_byte(self):
        with pytest.raises(LexError):
            tokenize("int x = $;")


class TestRealisticSnippets:
    def test_for_loop(self):
        src = "for (i = 0; i < n; i++) a[i] = b[i] * 2;"
        vals = values(src)
        assert vals[0] == "for"
        assert ";" in vals and "[" in vals

    def test_nested_subscripts(self):
        vals = values("A[i][j] = x->y.z;")
        assert vals.count("[") == 2
        assert "->" in vals and "." in vals


word = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}", fullmatch=True)


class TestProperties:
    @given(st.lists(word, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_word_stream_roundtrip(self, words):
        """Lexing space-joined words yields exactly those words back."""
        src = " ".join(words)
        assert values(src) == words

    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=50)
    def test_integer_literal_roundtrip(self, n):
        toks = tokenize(str(n))
        assert toks[0].kind is TokenKind.INT_CONST
        assert toks[0].value == str(n)

    @given(st.text(alphabet=" \t\n", max_size=30))
    @settings(max_examples=25)
    def test_whitespace_only_is_empty(self, ws):
        assert values(ws) == []

    @given(st.lists(word, min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_idempotent_relex(self, words):
        """Lexing the joined values of a lex is a fixed point."""
        first = values(" ".join(words))
        second = values(" ".join(first))
        assert first == second
