"""Tests for metrics and error analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import binary_metrics, confusion_matrix, error_rate_by_length


class TestConfusion:
    def test_counts(self):
        preds = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        assert confusion_matrix(preds, labels) == (2, 1, 1, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1]), np.array([1, 0]))


class TestBinaryMetrics:
    def test_perfect(self):
        labels = np.array([1, 0, 1, 0])
        m = binary_metrics(labels, labels)
        assert m.precision == m.recall == m.f1 == m.accuracy == 1.0

    def test_all_wrong(self):
        labels = np.array([1, 0, 1, 0])
        m = binary_metrics(1 - labels, labels)
        assert m.accuracy == 0.0
        assert m.f1 == 0.0

    def test_known_values(self):
        preds = np.array([1, 1, 1, 0, 0, 0])
        labels = np.array([1, 1, 0, 1, 0, 0])
        m = binary_metrics(preds, labels)
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(2 / 3)
        assert m.accuracy == pytest.approx(4 / 6)

    def test_zero_division_safe(self):
        m = binary_metrics(np.zeros(4), np.zeros(4))
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0
        assert m.accuracy == 1.0

    def test_as_row(self):
        m = binary_metrics(np.array([1, 0]), np.array([1, 0]))
        assert m.as_row() == (1.0, 1.0, 1.0, 1.0)

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_f1_is_harmonic_mean(self, pairs):
        preds = np.array([p for p, _ in pairs])
        labels = np.array([l for _, l in pairs])
        m = binary_metrics(preds, labels)
        if m.precision + m.recall > 0:
            expected = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert m.f1 == pytest.approx(expected)
        assert 0.0 <= m.accuracy <= 1.0
        assert m.tp + m.fp + m.fn + m.tn == len(pairs)


class TestErrorByLength:
    def test_bins_partition_and_rates(self):
        lengths = [3, 5, 15, 30, 60]
        preds = np.array([1, 0, 1, 1, 1])
        labels = np.array([0, 0, 1, 0, 1])  # errors at idx 0 and 3
        out = error_rate_by_length(lengths, preds, labels)
        assert out["<=10"]["errors"] == 1
        assert out["21-50"]["errors"] == 1
        assert out[">50"]["errors"] == 0
        assert sum(b["n"] for b in out.values()) == 5
        assert sum(b["share_of_errors"] for b in out.values()) == pytest.approx(1.0)

    def test_no_errors(self):
        out = error_rate_by_length([5, 15], np.array([1, 0]), np.array([1, 0]))
        assert all(b["errors"] == 0 for b in out.values())
