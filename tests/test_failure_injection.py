"""Failure-injection tests: corrupted inputs, truncated records, malformed
data at every layer's boundary."""

import pickle

import numpy as np
import pytest

from repro.clang import LexError, ParseError, parse
from repro.clang.pragma import PragmaError, parse_pragma
from repro.corpus import CorpusConfig, build_corpus, load_records, save_records
from repro.corpus.records import Record
from repro.data.encoding import EncodedSplit
from repro.models import PragFormer, PragFormerConfig
from repro.s2s import ComPar
from repro.tokenize import Vocab


class TestParserRobustness:
    @pytest.mark.parametrize("bad", [
        "for (i = 0; i < n; i++ {",       # missing paren
        "for (i = 0; i < n; i++) a[i = ;",  # broken expression
        "if (x > ) y = 1;",
        "int = 5;",
        "}{",
    ])
    def test_malformed_raises_parse_error(self, bad):
        with pytest.raises((ParseError, LexError)):
            parse(bad)

    def test_deeply_nested_parens_parse(self):
        # each paren level costs ~14 interpreter frames through the
        # precedence ladder; 30 levels is far beyond real code
        code = "x = " + "(" * 30 + "1" + ")" * 30 + ";"
        parse(code)

    def test_pathological_nesting_fails_loudly_not_silently(self):
        code = "x = " + "(" * 5000 + "1" + ")" * 5000 + ";"
        # the parser's explicit depth limit makes this a deterministic
        # ParseError on every platform, never a RecursionError
        with pytest.raises(ParseError, match="nesting depth"):
            parse(code)
        # the S2S driver treats it as a compile failure, not a crash
        assert ComPar().run(code).parse_failed

    def test_compar_survives_malformed_input(self):
        result = ComPar().run("for (i = 0; i < n; i++ {")
        assert result.parse_failed


class TestPragmaRobustness:
    @pytest.mark.parametrize("bad", [
        "#pragma omp parallel for reduction()",
        "#pragma omp parallel for schedule()",
        "#pragma omp",
    ])
    def test_malformed_pragmas_raise(self, bad):
        with pytest.raises(PragmaError):
            parse_pragma(bad)


class TestRecordStorage:
    def test_missing_ast_pickle_tolerated(self, tmp_path):
        corpus = build_corpus(CorpusConfig(n_records=5, seed=1))
        save_records(corpus.records, tmp_path)
        # delete a pickle: loading must still work (AST re-parsed lazily)
        (tmp_path / "record_000000" / "ast.pkl").unlink()
        loaded = load_records(tmp_path)
        assert len(loaded) == 5
        assert loaded[0].ast is not None  # re-parsed from code.c

    def test_empty_pragma_file_means_negative(self, tmp_path):
        rec = Record(0, "for (i = 0; i < n; i++) a[i] = i;", None, "generic", "x")
        save_records([rec], tmp_path)
        loaded = load_records(tmp_path)
        assert loaded[0].directive is None
        assert not loaded[0].has_omp

    def test_corrupted_pickle_raises_clearly(self, tmp_path):
        corpus = build_corpus(CorpusConfig(n_records=2, seed=1))
        save_records(corpus.records, tmp_path)
        (tmp_path / "record_000000" / "ast.pkl").write_bytes(b"not a pickle")
        with pytest.raises(pickle.UnpicklingError):
            load_records(tmp_path)


class TestModelBoundaries:
    def test_sequence_longer_than_max_len_rejected_by_encoder(self):
        from repro.nn import EncoderConfig, TransformerEncoder

        enc = TransformerEncoder(EncoderConfig(vocab_size=10, d_model=8,
                                               n_heads=2, n_layers=1,
                                               d_ff=8, max_len=4))
        with pytest.raises(ValueError):
            enc.forward(np.zeros((1, 5), dtype=np.int64))

    def test_prediction_on_empty_like_rows(self):
        cfg = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=16,
                               d_head_hidden=8, max_len=8)
        model = PragFormer(12, cfg)
        ids = np.full((2, 8), 0, dtype=np.int64)
        ids[:, 0] = 2  # CLS only
        mask = np.zeros((2, 8))
        mask[:, 0] = 1.0
        proba = model.predict_proba(EncodedSplit(ids, mask, np.zeros(2, dtype=np.int64)))
        assert proba.shape == (2, 2)
        assert np.isfinite(proba).all()

    def test_vocab_encode_empty(self):
        v = Vocab.build([["a"]])
        ids = v.encode([])
        assert len(ids) == 1  # just CLS

    def test_state_dict_wrong_shape_raises(self):
        from repro.nn import Linear

        l1 = Linear(3, 3, rng=0)
        state = l1.state_dict()
        state["W"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            Linear(3, 3, rng=1).load_state_dict(state)


class TestCorpusEdgeConfigs:
    def test_zero_records(self):
        corpus = build_corpus(CorpusConfig(n_records=0, seed=0))
        assert len(corpus) == 0

    def test_all_positive_fraction(self):
        corpus = build_corpus(CorpusConfig(n_records=40, seed=0,
                                           positive_fraction=1.0,
                                           include_excluded=False,
                                           label_noise=0.0))
        assert all(r.has_omp for r in corpus)

    def test_all_negative_fraction(self):
        corpus = build_corpus(CorpusConfig(n_records=40, seed=0,
                                           positive_fraction=0.0,
                                           include_excluded=False))
        assert all(not r.has_omp for r in corpus)

    def test_dedup_none_mode(self):
        corpus = build_corpus(CorpusConfig(n_records=50, seed=0, dedup="none"))
        assert len(corpus) == 50
        assert corpus.n_rejected_duplicates == 0
