int a = "unterminated;
for (i = 0; i < n; i++) a[i] = i;
x = @@;
while (k < n) { k++; }