int sum = 0;
for (p 