char *s = "no closing quote;
int x = 1;