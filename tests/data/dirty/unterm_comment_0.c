int x = 1; /* comment never ends
for (i = 0; i < n; i++) a[i] = i;