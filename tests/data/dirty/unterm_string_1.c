printf("%d, a[i]);
for (i = 0; i < n; i++) a[i] = 0;