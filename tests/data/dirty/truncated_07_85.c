int sum = 0;
for (p = head; p; p = p->next) sum +