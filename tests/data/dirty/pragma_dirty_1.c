#pragma omp
for (i = 0; i < n; i++) a[i] = i;