char c = 'x;
int y = 2;