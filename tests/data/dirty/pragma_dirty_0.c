#pragma omp parallel for reduction(
for (i = 0; i < n; i++) s += a[i];