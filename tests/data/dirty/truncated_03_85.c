for (i = 0; i < rows; i++)
  for (j = 0; j < cols; j++)
    m[i]