"""Flat parameter arena + FusedAdamW: aliasing, parity, and dtype purity.

The tentpole claims of the training hot-path overhaul are verified here:

* flattening a model into a :class:`ParameterArena` changes *nothing*
  observable — state dicts, checkpoints, and forwards are identical;
* :class:`FusedAdamW` steps are bit-identical to the legacy per-parameter
  :class:`AdamW` given the same gradients;
* whole training trajectories (``PragFormer.fit`` with clipping, dropout,
  length-bucketed batches) match between the two optimizers;
* one training step leaves no float64 anywhere in the hot state.
"""

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data.encoding import EncodedSplit
from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.nn import AdamW, FusedAdamW, ParameterArena, clip_grad_norm
from repro.nn.dtype import assert_compute_dtype, get_dtype, use_dtype
from repro.nn.layers import Linear
from repro.nn.module import Module


TINY = dict(d_model=16, n_heads=2, n_layers=2, d_ff=24, d_head_hidden=12,
            max_len=16, batch_size=8, seed=3)


class TwoLayer(Module):
    def __init__(self, rng=0):
        super().__init__()
        self.a = Linear(4, 6, rng=rng)
        self.b = Linear(6, 2, rng=rng + 1)


def _toy_split(n=32, length=10, vocab=24, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(4, vocab, size=(n, length)).astype(np.int32)
    ids[:, 0] = 2  # CLS
    mask = np.ones((n, length), dtype=np.float32)
    # ragged lengths so trim_batch and the bucketing actually engage
    for row in range(n):
        cut = int(rng.integers(length // 2, length + 1))
        ids[row, cut:] = 0
        mask[row, cut:] = 0.0
    labels = rng.integers(0, 2, size=n).astype(np.int64)
    return EncodedSplit(ids, mask, labels)


class TestParameterArena:
    def test_views_alias_flat_buffer(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        assert arena.size == model.num_parameters()
        model.a.W.data += 1.0  # layer-local in-place update ...
        start = arena.slices[0][1].start
        np.testing.assert_array_equal(  # ... lands in the flat buffer
            arena.data[start : start + model.a.W.data.size],
            model.a.W.data.reshape(-1))
        arena.data[...] = 0.0  # and whole-arena writes land in the layers
        assert (model.b.W.data == 0).all()

    def test_flatten_preserves_state_dict(self):
        model = TwoLayer()
        before = {k: v.copy() for k, v in model.state_dict().items()}
        ParameterArena(model)
        after = model.state_dict()
        assert before.keys() == after.keys()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_load_state_dict_writes_through_views(self):
        model, donor = TwoLayer(rng=0), TwoLayer(rng=7)
        arena = ParameterArena(model)
        model.load_state_dict(donor.state_dict())
        np.testing.assert_array_equal(model.a.W.data, donor.a.W.data)
        start = arena.slices[0][1].start
        np.testing.assert_array_equal(  # the arena saw the load
            arena.data[start : start + model.a.W.data.size],
            donor.a.W.data.reshape(-1))

    def test_decay_mask_matrices_only(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        for name, region, shape in arena.slices:
            expected = 1.0 if len(shape) > 1 else 0.0
            assert (arena.decay_mask[region] == expected).all(), name

    def test_zero_grad_and_clip(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        model.a.W.grad += 3.0
        model.b.b.grad += 4.0
        assert arena.grad_norm() > 0
        norm = arena.clip_grad_norm(1.0)
        assert norm > 1.0
        np.testing.assert_allclose(arena.grad_norm(), 1.0, rtol=1e-5)
        arena.zero_grad()
        assert (model.a.W.grad == 0).all() and (arena.grad == 0).all()

    def test_empty_model_rejected(self):
        class Bare(Module):
            pass

        with pytest.raises(ValueError):
            ParameterArena(Bare())


class TestFusedAdamWParity:
    def _twin_models(self):
        legacy, fused = TwoLayer(rng=11), TwoLayer(rng=11)
        fused.load_state_dict(legacy.state_dict())
        return legacy, fused

    def test_steps_bit_identical_to_legacy(self):
        """Same gradients in -> bit-identical parameters out, many steps."""
        legacy, fused = self._twin_models()
        opt_l = AdamW(legacy, lr=3e-3, weight_decay=0.02)
        opt_f = FusedAdamW(fused, lr=3e-3, weight_decay=0.02)
        rng = np.random.default_rng(0)
        for _ in range(25):
            opt_l.zero_grad()
            opt_f.zero_grad()
            for (_, pl), (_, pf) in zip(legacy.named_parameters(),
                                        fused.named_parameters()):
                g = rng.normal(size=pl.grad.shape).astype(get_dtype())
                pl.grad += g
                pf.grad += g
            opt_l.step()
            opt_f.step()
        for (name, pl), (_, pf) in zip(legacy.named_parameters(),
                                       fused.named_parameters()):
            np.testing.assert_array_equal(pl.data, pf.data, err_msg=name)

    def test_fit_trajectory_matches_legacy(self):
        """Full §4.3 recipe (clip + dropout + bucketing) under float64,
        where the only remaining difference — reduction order inside the
        clip norm — is far below the comparison tolerance."""
        with use_dtype(np.float64):
            split = _toy_split()
            val = _toy_split(n=16, seed=1)
            legacy = PragFormer(24, PragFormerConfig(fused_optimizer=False, **TINY))
            fused = PragFormer(24, PragFormerConfig(fused_optimizer=True, **TINY))
            hist_l = legacy.fit(split, val, epochs=3)
            hist_f = fused.fit(split, val, epochs=3)
            np.testing.assert_allclose(hist_l.train_loss, hist_f.train_loss,
                                       rtol=1e-9)
            np.testing.assert_allclose(hist_l.valid_loss, hist_f.valid_loss,
                                       rtol=1e-9)
            state_l = legacy.encoder.state_dict()
            state_f = fused.encoder.state_dict()
            for key in state_l:
                np.testing.assert_allclose(state_l[key], state_f[key],
                                           rtol=1e-7, atol=1e-10, err_msg=key)

    def test_fused_clip_matches_legacy_clip(self):
        legacy, fused = self._twin_models()
        opt_f = FusedAdamW(fused, lr=0.0, weight_decay=0.0)
        rng = np.random.default_rng(4)
        for (_, pl), (_, pf) in zip(legacy.named_parameters(),
                                    fused.named_parameters()):
            g = rng.normal(size=pl.grad.shape).astype(get_dtype()) * 5
            pl.grad += g
            pf.grad += g
        norm_l = clip_grad_norm(legacy.parameters(), 1.0)
        norm_f = opt_f.clip_grad_norm(1.0)
        assert norm_l == pytest.approx(norm_f, rel=1e-5)
        for (name, pl), (_, pf) in zip(legacy.named_parameters(),
                                       fused.named_parameters()):
            np.testing.assert_allclose(pl.grad, pf.grad, rtol=1e-5,
                                       err_msg=name)


class TestTrainStepDtypePurity:
    def test_no_float64_after_train_step(self):
        """Regression guard: one fit() epoch must leave parameters, grads,
        optimizer state, and prediction outputs in the compute dtype."""
        split = _toy_split()
        model = PragFormer(24, PragFormerConfig(**TINY))
        model.fit(split, epochs=1)
        for name, p in list(model.encoder.named_parameters()) + \
                list(model.head.named_parameters()):
            assert_compute_dtype(p.data, p.grad, context=name)
        opt = model._optimizer
        assert_compute_dtype(opt.arena.data, opt.arena.grad,
                             opt.arena.decay_mask, opt._m, opt._v, opt._tmp,
                             context="optimizer state")
        probs = model.predict_proba(split)
        assert_compute_dtype(probs, context="predict_proba")
        assert probs.dtype == get_dtype()
        loss, acc = model.evaluate(split)
        assert isinstance(loss, float) and isinstance(acc, float)

    def test_assert_compute_dtype_helper(self):
        assert_compute_dtype(np.zeros(3, dtype=get_dtype()),
                             np.zeros(3, dtype=np.int32), None)
        with pytest.raises(TypeError, match="float64"):
            assert_compute_dtype(np.zeros(3, dtype=np.float64))


class TestArenaSharedMemoryRoundTrip:
    """The DDP substrate: an arena must survive a trip through a
    ``shared_memory`` segment — map, mutate via view, remap — with every
    parameter byte preserved and every grad view still aliasing."""

    def _segment(self, nbytes, tag):
        from repro.train.ddp import DDP_NAME_PREFIX

        return shared_memory.SharedMemory(
            name=f"{DDP_NAME_PREFIX}-{os.getpid()}-arenatest-{tag}",
            create=True, size=max(1, nbytes))

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_round_trip_preserves_every_byte(self, seed):
        model = TwoLayer(rng=seed)
        arena = ParameterArena(model)
        baseline = {k: v.copy() for k, v in model.state_dict().items()}
        seg = self._segment(arena.data.nbytes, f"data{seed}")
        try:
            view = np.ndarray((arena.size,), arena.data.dtype, seg.buf)
            arena.rebind(data=view)
            # map: values carried over, parameter views alias the segment
            for key, expected in baseline.items():
                np.testing.assert_array_equal(model.state_dict()[key],
                                              expected, err_msg=key)
            assert np.shares_memory(model.a.W.data, view)
            # mutate via a *second* view over the same segment: the model
            # must see it (shared mapping, not a copy)
            other = np.ndarray((arena.size,), arena.data.dtype, seg.buf)
            other += 1.0
            np.testing.assert_array_equal(
                model.a.W.data.reshape(-1),
                baseline["a.W"].reshape(-1) + 1.0)
            # remap back to private memory: bytes preserved again
            arena.rebind(data=np.empty_like(view))
            view = other = None
        finally:
            seg.close()
            seg.unlink()
        for key, expected in baseline.items():
            np.testing.assert_array_equal(model.state_dict()[key],
                                          expected + 1.0, err_msg=key)
        assert not np.shares_memory(model.a.W.data, arena.grad)

    def test_grad_rebind_preserves_view_aliasing(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        model.a.W.grad += 2.5
        seg = self._segment(arena.grad.nbytes, "grad")
        try:
            view = np.ndarray((arena.size,), arena.grad.dtype, seg.buf)
            arena.rebind(grad=view)
            assert np.shares_memory(model.a.W.grad, view)
            assert float(model.a.W.grad[0, 0]) == 2.5  # carried over
            # layer-local accumulation lands in the shared buffer ...
            model.b.W.grad += 1.0
            region = dict((n, r) for n, r, _ in arena.slices)["b.W"]
            assert (view[region] == 1.0).all()
            # ... and whole-arena ops see the shared buffer
            arena.zero_grad()
            assert (model.a.W.grad == 0).all() and (view == 0).all()
            arena.rebind(grad=np.zeros_like(view))
            view = None
        finally:
            seg.close()
            seg.unlink()
        model.a.W.grad += 1.0  # still aliased after the return trip
        assert arena.grad_norm() > 0

    def test_rebind_rejects_wrong_shape_or_dtype(self):
        arena = ParameterArena(TwoLayer())
        with pytest.raises(ValueError, match="rebind"):
            arena.rebind(data=np.zeros(arena.size + 1, dtype=get_dtype()))
        with pytest.raises(ValueError, match="rebind"):
            arena.rebind(grad=np.zeros(arena.size, dtype=np.float64))


class TestFusedAdamWSerialization:
    """Regression (PR 9 fix): the optimizer's step count and moment
    buffers must serialize with the arena — restoring parameters alone
    makes a resumed run diverge from an uninterrupted one."""

    def _grads_for(self, step):
        return np.random.default_rng([42, step])

    def _drive(self, opt, steps, start=0):
        for step in range(start, start + steps):
            opt.zero_grad()
            opt.arena.grad += self._grads_for(step).normal(
                size=opt.arena.size).astype(get_dtype())
            opt.step()

    def test_resume_is_bit_identical(self):
        uninterrupted = FusedAdamW(TwoLayer(rng=1), lr=3e-3)
        self._drive(uninterrupted, 10)

        first = FusedAdamW(TwoLayer(rng=1), lr=3e-3)
        self._drive(first, 5)
        state = first.state_dict()
        # snapshot is decoupled from live buffers
        first.arena.data += 1.0
        assert not np.array_equal(state["data"], first.arena.data)

        resumed = FusedAdamW(TwoLayer(rng=2), lr=3e-3)  # cold weights
        resumed.load_state_dict(state)
        assert resumed.t == 5
        self._drive(resumed, 5, start=5)
        np.testing.assert_array_equal(uninterrupted.arena.data,
                                      resumed.arena.data)
        np.testing.assert_array_equal(uninterrupted._m, resumed._m)
        np.testing.assert_array_equal(uninterrupted._v, resumed._v)

    def test_resume_without_moments_diverges(self):
        """The failure mode the fix closes: params-only restore resets
        bias correction + momentum and the trajectories split."""
        uninterrupted = FusedAdamW(TwoLayer(rng=1), lr=3e-3)
        self._drive(uninterrupted, 10)

        first = FusedAdamW(TwoLayer(rng=1), lr=3e-3)
        self._drive(first, 5)
        state = first.state_dict()

        crippled = FusedAdamW(TwoLayer(rng=2), lr=3e-3)
        crippled.arena.data[...] = state["data"]  # params only
        self._drive(crippled, 5, start=5)
        assert not np.array_equal(uninterrupted.arena.data,
                                  crippled.arena.data)

    def test_load_validates_keys_and_shapes(self):
        opt = FusedAdamW(TwoLayer())
        state = opt.state_dict()
        with pytest.raises(KeyError, match="missing"):
            opt.load_state_dict({k: state[k] for k in ("t", "m")})
        bad = dict(state)
        bad["v"] = np.zeros(3, dtype=get_dtype())
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(bad)

    def test_load_writes_in_place(self):
        """In-place restore: parameter views (and any shared segment the
        arena lives in) must stay valid across a load."""
        model = TwoLayer()
        opt = FusedAdamW(model)
        state = opt.state_dict()
        data_buf, m_buf = opt.arena.data, opt._m
        opt.load_state_dict(state)
        assert opt.arena.data is data_buf and opt._m is m_buf
        assert np.shares_memory(model.a.W.data, opt.arena.data)


class TestBufferPool:
    def test_slot_reuse_and_growth(self):
        from repro.nn import BufferPool

        pool = BufferPool()
        a = pool.get("x", (4, 8), np.float32)
        b = pool.get("x", (4, 8), np.float32)
        assert a.base is b.base  # same backing buffer, reused
        smaller = pool.get("x", (2, 8), np.float32)
        assert smaller.base is b.base  # shrinking is a view, no realloc
        bigger = pool.get("x", (8, 8), np.float32)
        assert bigger.base is not b.base  # outgrew the slot -> fresh buffer
        other = pool.get("y", (4, 8), np.float32)
        assert other.base is not bigger.base  # slots never share storage

    def test_pooling_disabled_allocates_fresh(self):
        from repro.nn import BufferPool, pooling_disabled, pooling_enabled

        pool = BufferPool()
        assert pooling_enabled()
        with pooling_disabled():
            assert not pooling_enabled()
            a = pool.get("x", (4,), np.float32)
            b = pool.get("x", (4,), np.float32)
            assert a is not b and a.base is None  # plain np.empty each call
            assert len(pool) == 0  # nothing retained while disabled
        assert pooling_enabled()
