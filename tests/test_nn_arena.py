"""Flat parameter arena + FusedAdamW: aliasing, parity, and dtype purity.

The tentpole claims of the training hot-path overhaul are verified here:

* flattening a model into a :class:`ParameterArena` changes *nothing*
  observable — state dicts, checkpoints, and forwards are identical;
* :class:`FusedAdamW` steps are bit-identical to the legacy per-parameter
  :class:`AdamW` given the same gradients;
* whole training trajectories (``PragFormer.fit`` with clipping, dropout,
  length-bucketed batches) match between the two optimizers;
* one training step leaves no float64 anywhere in the hot state.
"""

import numpy as np
import pytest

from repro.data.encoding import EncodedSplit
from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.nn import AdamW, FusedAdamW, ParameterArena, clip_grad_norm
from repro.nn.dtype import assert_compute_dtype, get_dtype, use_dtype
from repro.nn.layers import Linear
from repro.nn.module import Module


TINY = dict(d_model=16, n_heads=2, n_layers=2, d_ff=24, d_head_hidden=12,
            max_len=16, batch_size=8, seed=3)


class TwoLayer(Module):
    def __init__(self, rng=0):
        super().__init__()
        self.a = Linear(4, 6, rng=rng)
        self.b = Linear(6, 2, rng=rng + 1)


def _toy_split(n=32, length=10, vocab=24, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(4, vocab, size=(n, length)).astype(np.int32)
    ids[:, 0] = 2  # CLS
    mask = np.ones((n, length), dtype=np.float32)
    # ragged lengths so trim_batch and the bucketing actually engage
    for row in range(n):
        cut = int(rng.integers(length // 2, length + 1))
        ids[row, cut:] = 0
        mask[row, cut:] = 0.0
    labels = rng.integers(0, 2, size=n).astype(np.int64)
    return EncodedSplit(ids, mask, labels)


class TestParameterArena:
    def test_views_alias_flat_buffer(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        assert arena.size == model.num_parameters()
        model.a.W.data += 1.0  # layer-local in-place update ...
        start = arena.slices[0][1].start
        np.testing.assert_array_equal(  # ... lands in the flat buffer
            arena.data[start : start + model.a.W.data.size],
            model.a.W.data.reshape(-1))
        arena.data[...] = 0.0  # and whole-arena writes land in the layers
        assert (model.b.W.data == 0).all()

    def test_flatten_preserves_state_dict(self):
        model = TwoLayer()
        before = {k: v.copy() for k, v in model.state_dict().items()}
        ParameterArena(model)
        after = model.state_dict()
        assert before.keys() == after.keys()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_load_state_dict_writes_through_views(self):
        model, donor = TwoLayer(rng=0), TwoLayer(rng=7)
        arena = ParameterArena(model)
        model.load_state_dict(donor.state_dict())
        np.testing.assert_array_equal(model.a.W.data, donor.a.W.data)
        start = arena.slices[0][1].start
        np.testing.assert_array_equal(  # the arena saw the load
            arena.data[start : start + model.a.W.data.size],
            donor.a.W.data.reshape(-1))

    def test_decay_mask_matrices_only(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        for name, region, shape in arena.slices:
            expected = 1.0 if len(shape) > 1 else 0.0
            assert (arena.decay_mask[region] == expected).all(), name

    def test_zero_grad_and_clip(self):
        model = TwoLayer()
        arena = ParameterArena(model)
        model.a.W.grad += 3.0
        model.b.b.grad += 4.0
        assert arena.grad_norm() > 0
        norm = arena.clip_grad_norm(1.0)
        assert norm > 1.0
        np.testing.assert_allclose(arena.grad_norm(), 1.0, rtol=1e-5)
        arena.zero_grad()
        assert (model.a.W.grad == 0).all() and (arena.grad == 0).all()

    def test_empty_model_rejected(self):
        class Bare(Module):
            pass

        with pytest.raises(ValueError):
            ParameterArena(Bare())


class TestFusedAdamWParity:
    def _twin_models(self):
        legacy, fused = TwoLayer(rng=11), TwoLayer(rng=11)
        fused.load_state_dict(legacy.state_dict())
        return legacy, fused

    def test_steps_bit_identical_to_legacy(self):
        """Same gradients in -> bit-identical parameters out, many steps."""
        legacy, fused = self._twin_models()
        opt_l = AdamW(legacy, lr=3e-3, weight_decay=0.02)
        opt_f = FusedAdamW(fused, lr=3e-3, weight_decay=0.02)
        rng = np.random.default_rng(0)
        for _ in range(25):
            opt_l.zero_grad()
            opt_f.zero_grad()
            for (_, pl), (_, pf) in zip(legacy.named_parameters(),
                                        fused.named_parameters()):
                g = rng.normal(size=pl.grad.shape).astype(get_dtype())
                pl.grad += g
                pf.grad += g
            opt_l.step()
            opt_f.step()
        for (name, pl), (_, pf) in zip(legacy.named_parameters(),
                                       fused.named_parameters()):
            np.testing.assert_array_equal(pl.data, pf.data, err_msg=name)

    def test_fit_trajectory_matches_legacy(self):
        """Full §4.3 recipe (clip + dropout + bucketing) under float64,
        where the only remaining difference — reduction order inside the
        clip norm — is far below the comparison tolerance."""
        with use_dtype(np.float64):
            split = _toy_split()
            val = _toy_split(n=16, seed=1)
            legacy = PragFormer(24, PragFormerConfig(fused_optimizer=False, **TINY))
            fused = PragFormer(24, PragFormerConfig(fused_optimizer=True, **TINY))
            hist_l = legacy.fit(split, val, epochs=3)
            hist_f = fused.fit(split, val, epochs=3)
            np.testing.assert_allclose(hist_l.train_loss, hist_f.train_loss,
                                       rtol=1e-9)
            np.testing.assert_allclose(hist_l.valid_loss, hist_f.valid_loss,
                                       rtol=1e-9)
            state_l = legacy.encoder.state_dict()
            state_f = fused.encoder.state_dict()
            for key in state_l:
                np.testing.assert_allclose(state_l[key], state_f[key],
                                           rtol=1e-7, atol=1e-10, err_msg=key)

    def test_fused_clip_matches_legacy_clip(self):
        legacy, fused = self._twin_models()
        opt_f = FusedAdamW(fused, lr=0.0, weight_decay=0.0)
        rng = np.random.default_rng(4)
        for (_, pl), (_, pf) in zip(legacy.named_parameters(),
                                    fused.named_parameters()):
            g = rng.normal(size=pl.grad.shape).astype(get_dtype()) * 5
            pl.grad += g
            pf.grad += g
        norm_l = clip_grad_norm(legacy.parameters(), 1.0)
        norm_f = opt_f.clip_grad_norm(1.0)
        assert norm_l == pytest.approx(norm_f, rel=1e-5)
        for (name, pl), (_, pf) in zip(legacy.named_parameters(),
                                       fused.named_parameters()):
            np.testing.assert_allclose(pl.grad, pf.grad, rtol=1e-5,
                                       err_msg=name)


class TestTrainStepDtypePurity:
    def test_no_float64_after_train_step(self):
        """Regression guard: one fit() epoch must leave parameters, grads,
        optimizer state, and prediction outputs in the compute dtype."""
        split = _toy_split()
        model = PragFormer(24, PragFormerConfig(**TINY))
        model.fit(split, epochs=1)
        for name, p in list(model.encoder.named_parameters()) + \
                list(model.head.named_parameters()):
            assert_compute_dtype(p.data, p.grad, context=name)
        opt = model._optimizer
        assert_compute_dtype(opt.arena.data, opt.arena.grad,
                             opt.arena.decay_mask, opt._m, opt._v, opt._tmp,
                             context="optimizer state")
        probs = model.predict_proba(split)
        assert_compute_dtype(probs, context="predict_proba")
        assert probs.dtype == get_dtype()
        loss, acc = model.evaluate(split)
        assert isinstance(loss, float) and isinstance(acc, float)

    def test_assert_compute_dtype_helper(self):
        assert_compute_dtype(np.zeros(3, dtype=get_dtype()),
                             np.zeros(3, dtype=np.int32), None)
        with pytest.raises(TypeError, match="float64"):
            assert_compute_dtype(np.zeros(3, dtype=np.float64))


class TestBufferPool:
    def test_slot_reuse_and_growth(self):
        from repro.nn import BufferPool

        pool = BufferPool()
        a = pool.get("x", (4, 8), np.float32)
        b = pool.get("x", (4, 8), np.float32)
        assert a.base is b.base  # same backing buffer, reused
        smaller = pool.get("x", (2, 8), np.float32)
        assert smaller.base is b.base  # shrinking is a view, no realloc
        bigger = pool.get("x", (8, 8), np.float32)
        assert bigger.base is not b.base  # outgrew the slot -> fresh buffer
        other = pool.get("y", (4, 8), np.float32)
        assert other.base is not bigger.base  # slots never share storage

    def test_pooling_disabled_allocates_fresh(self):
        from repro.nn import BufferPool, pooling_disabled, pooling_enabled

        pool = BufferPool()
        assert pooling_enabled()
        with pooling_disabled():
            assert not pooling_enabled()
            a = pool.get("x", (4,), np.float32)
            b = pool.get("x", (4,), np.float32)
            assert a is not b and a.base is None  # plain np.empty each call
            assert len(pool) == 0  # nothing retained while disabled
        assert pooling_enabled()
