"""Tests for the PolyBench-like and SPEC-OMP-like suites."""

import pytest

from repro.benchsuites import polybench_suite, specomp_suite
from repro.clang import For, parse, walk
from repro.clang.pragma import parse_pragma
from repro.s2s import ComPar


@pytest.fixture(scope="module")
def poly():
    return polybench_suite()


@pytest.fixture(scope="module")
def spec():
    return specomp_suite()


class TestPolybench:
    def test_paper_counts(self, poly):
        assert len(poly) == 147
        assert sum(r.has_omp for r in poly) == 64
        assert sum(not r.has_omp for r in poly) == 83

    def test_all_parse(self, poly):
        for rec in poly:
            ast = parse(rec.code)
            assert any(isinstance(n, For) for n in walk(ast)), rec.family

    def test_directives_valid(self, poly):
        for rec in poly:
            if rec.has_omp:
                assert parse_pragma(rec.directive).is_parallel_for

    def test_unique_uids(self, poly):
        uids = [r.uid for r in poly]
        assert len(uids) == len(set(uids))

    def test_macros_break_compar_on_positives(self, poly):
        """The PolyBench macros defeat the S2S parsers (Table 11)."""
        compar = ComPar()
        positives = [r for r in poly if r.has_omp][:10]
        failed = sum(compar.run(r.code).parse_failed for r in positives)
        assert failed >= 8

    def test_deterministic(self):
        a = polybench_suite()
        b = polybench_suite()
        assert [r.code for r in a] == [r.code for r in b]


class TestSpecOmp:
    def test_paper_counts(self, spec):
        assert len(spec) == 287
        assert sum(r.has_omp for r in spec) == 113
        assert sum(not r.has_omp for r in spec) == 174

    def test_all_parse(self, spec):
        for rec in spec:
            parse(rec.code)

    def test_production_traits_present(self, spec):
        text = "\n".join(r.code for r in spec)
        assert "register" in text
        assert "ssize_t" in text
        assert "->" in text

    def test_some_compar_parse_failures(self, spec):
        compar = ComPar()
        failed = sum(compar.run(r.code).parse_failed for r in spec[:40])
        assert failed > 0

    def test_deterministic(self):
        a = specomp_suite()
        b = specomp_suite()
        assert [r.code for r in a] == [r.code for r in b]

    def test_directives_valid(self, spec):
        for rec in spec:
            if rec.has_omp:
                assert parse_pragma(rec.directive).is_parallel_for
