"""Hot model reload: engine slot swaps, checkpoint reloads, the watcher.

The operability contract under test (see ``docs/operations.md``): a
reload swaps every head atomically behind the front door, in-flight
requests finish on the weights they started with, and a prediction cached
under the old model version is never served for the new one — the
version tag is part of every cache key, so stale entries *miss* instead
of needing an explicit flush.
"""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    CheckpointWatcher,
    EngineConfig,
    InferenceEngine,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
]

HEAD_NAMES = ("directive", "private", "reduction")


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)


def _registry(vocab, seed0):
    """Three tiny heads; different ``seed0`` gives different weights."""
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name, PragFormer(len(vocab), replace(TINY, seed=seed0 + k),
                                           rng=seed0 + k),
                          vocab, max_len=TINY.max_len)
    return registry


@pytest.fixture()
def checkpoints(vocab, tmp_path):
    """Two advisor checkpoints with distinct weights, on disk."""
    a, b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
    _registry(vocab, 0).save(a)
    _registry(vocab, 100).save(b)
    return a, b


class TestEngineSwapModel:
    def test_swap_changes_predictions_and_version(self, vocab):
        old = PragFormer(len(vocab), TINY, rng=1)
        new = PragFormer(len(vocab), TINY, rng=2)
        engine = InferenceEngine(old, vocab, max_len=TINY.max_len)
        assert engine.model_version == "0"
        before = engine.predict_proba(SNIPPETS)
        tag = engine.swap_model(new, vocab, TINY.max_len, version="canary")
        assert tag == "canary" and engine.model_version == "canary"
        after = engine.predict_proba(SNIPPETS)
        expected = InferenceEngine(new, vocab,
                                   max_len=TINY.max_len).predict_proba(SNIPPETS)
        np.testing.assert_allclose(after, expected, atol=1e-6)
        assert not np.allclose(before, after)

    def test_swap_version_defaults_to_counter(self, vocab):
        model = PragFormer(len(vocab), TINY, rng=1)
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
        assert engine.swap_model(model, vocab) == "swap-1"
        assert engine.swap_model(model, vocab) == "swap-2"

    def test_cached_prediction_misses_after_swap(self, vocab):
        """The eviction-correctness regression: a digest cached under the
        old version must MISS after the swap — no stale predictions."""
        model = PragFormer(len(vocab), TINY, rng=1)
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
        engine.predict_proba(SNIPPETS)      # populate the LRU
        engine.predict_proba(SNIPPETS)      # provably cached
        assert engine.stats.cache_hits == len(SNIPPETS)
        engine.swap_model(PragFormer(len(vocab), TINY, rng=2), vocab,
                          TINY.max_len)
        engine.predict_proba(SNIPPETS)      # same snippets, new version
        assert engine.stats.cache_hits == len(SNIPPETS)  # zero new hits
        assert engine.stats.cache_misses == 2 * len(SNIPPETS)

    def test_encode_memo_is_version_keyed(self, vocab):
        """A vocabulary change on swap must re-encode — the memo key
        carries the version tag, so old rows cannot leak through."""
        small = Vocab.build([text_tokens(SNIPPETS[0])], min_freq=1)
        model = PragFormer(len(vocab), TINY, rng=1)
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
        before = engine.encode(SNIPPETS[0])
        engine.swap_model(PragFormer(len(small), TINY, rng=2), small,
                          TINY.max_len)
        after = engine.encode(SNIPPETS[0])
        assert engine.stats.tokenized == 2  # re-encoded, not memoized
        assert before.shape != after.shape or not np.array_equal(before, after)

    def test_async_submit_snapshots_slot(self, vocab):
        """Futures submitted before a swap resolve on the old weights."""
        old = PragFormer(len(vocab), TINY, rng=1)
        new = PragFormer(len(vocab), TINY, rng=2)
        expected_old = InferenceEngine(old, vocab,
                                       max_len=TINY.max_len).predict_proba(SNIPPETS)
        # a long flush window holds the batch open across the swap
        with InferenceEngine(old, vocab, max_len=TINY.max_len,
                             config=EngineConfig(flush_interval=0.2)) as engine:
            futures = [engine.submit(code) for code in SNIPPETS]
            engine.swap_model(new, vocab, TINY.max_len)
            got = np.vstack([f.result(timeout=30) for f in futures])
        np.testing.assert_allclose(got, expected_old, atol=1e-6)


class TestMultiModelReload:
    def test_reload_swaps_all_heads(self, vocab, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine, \
                MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh_b:
            expected = fresh_b.advise_full_many(SNIPPETS)
            version = engine.reload(b)
            assert version == f"v1:{b.name}"
            assert engine.model_version == version
            got = engine.advise_full_many(SNIPPETS)
            for e, g in zip(expected, got):
                np.testing.assert_allclose(g.directive.probability,
                                           e.directive.probability, atol=1e-6)
                for name in e.clauses:
                    np.testing.assert_allclose(g.clauses[name].probability,
                                               e.clauses[name].probability,
                                               atol=1e-6)

    def test_no_stale_cache_across_reload(self, vocab, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            engine.advise_full_many(SNIPPETS)
            engine.advise_full_many(SNIPPETS)  # cached under version "0"
            hits_before = engine.stats()["combined"]["cache_hits"]
            assert hits_before == 3 * len(SNIPPETS)
            engine.reload(b)
            engine.advise_full_many(SNIPPETS)  # must all miss
            assert engine.stats()["combined"]["cache_hits"] == hits_before

    def test_reload_updates_registry_and_stats(self, vocab, checkpoints):
        a, b = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            old_models = {n: engine.registry.get(n).model for n in HEAD_NAMES}
            engine.reload(b)
            stats = engine.stats()
            assert stats["model_version"] == f"v1:{b.name}"
            assert stats["reloads"] == 1
            assert engine.registry.names() == list(HEAD_NAMES)
            for name in HEAD_NAMES:
                assert engine.registry.get(name).model is not old_models[name]
                assert engine.registry.get(name).model is engine.engines[name].model

    def test_missing_checkpoint_leaves_old_weights(self, vocab, checkpoints,
                                                   tmp_path):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            before = engine.advise_full(SNIPPETS[0])
            with pytest.raises(FileNotFoundError):
                engine.reload(tmp_path / "nope")
            assert engine.model_version == "0"
            assert engine.advise_full(SNIPPETS[0]) == before

    def test_incomplete_checkpoint_rejected(self, vocab, tmp_path,
                                            checkpoints):
        """A checkpoint missing a served head must fail whole — no head
        swapped, old weights keep serving."""
        a, _ = checkpoints
        partial = ModelRegistry()
        partial.register("directive", PragFormer(len(vocab), TINY, rng=7),
                         vocab, max_len=TINY.max_len)
        partial.save(tmp_path / "partial")
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            with pytest.raises(ValueError, match="lacks served heads"):
                engine.reload(tmp_path / "partial")
            assert engine.model_version == "0"

    def test_reload_under_concurrent_load(self, vocab, checkpoints):
        """The acceptance gate: swap a checkpoint while requests hammer
        the engine — zero failed requests, and every post-reload verdict
        comes from the new weights."""
        a, b = checkpoints
        engine = MultiModelEngine(ModelRegistry.from_checkpoint(a))
        errors: list = []
        served = [0]
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    full = engine.advise_full_many(SNIPPETS)
                    assert len(full) == len(SNIPPETS)
                    served[0] += len(full)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            engine.reload(b)
            stop.set()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            assert served[0] > 0
            with MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh:
                expected = fresh.advise_full(SNIPPETS[0])
            got = engine.advise_full(SNIPPETS[0])
            np.testing.assert_allclose(got.directive.probability,
                                       expected.directive.probability,
                                       atol=1e-6)
        finally:
            stop.set()
            engine.close()


class TestCheckpointWatcher:
    def test_poll_reloads_on_manifest_change(self, vocab, checkpoints):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            watcher = CheckpointWatcher(engine, a, interval=0.05)
            assert watcher.poll_once() is False  # nothing changed yet
            _registry(vocab, 50).save(a)         # new checkpoint lands
            assert watcher.poll_once() is True
            assert watcher.reloads == 1 and watcher.last_error is None
            assert engine.model_version == f"v1:{a.name}"

    def test_broken_checkpoint_recorded_not_fatal(self, vocab, checkpoints):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            watcher = CheckpointWatcher(engine, a, interval=0.05)
            before = engine.advise_full(SNIPPETS[0])
            (a / "advisor.json").write_text("{not json")
            assert watcher.poll_once() is True
            assert watcher.reloads == 0
            assert watcher.last_error is not None
            # old weights keep serving, and the broken file is not retried
            assert engine.advise_full(SNIPPETS[0]) == before
            assert watcher.poll_once() is False

    def test_watch_thread_end_to_end(self, vocab, checkpoints):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            with CheckpointWatcher(engine, a, interval=0.05) as watcher:
                _registry(vocab, 60).save(a)
                for _ in range(200):  # up to ~10s for the poll to fire
                    if watcher.reloads:
                        break
                    threading.Event().wait(0.05)
                assert watcher.reloads >= 1
                assert engine.model_version.startswith("v1:")
            watcher.stop()  # idempotent

    def test_rejects_bad_interval(self, vocab, checkpoints):
        a, _ = checkpoints
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            with pytest.raises(ValueError):
                CheckpointWatcher(engine, a, interval=0.0)

    def test_baseline_mtime_catches_rollout_during_load(self, vocab,
                                                        checkpoints):
        """The CLI captures the manifest mtime BEFORE the (slow) advisor
        load; a checkpoint written in that window must be reloaded by the
        first poll, not absorbed into the watcher's baseline."""
        from repro.serve import checkpoint_mtime

        a, _ = checkpoints
        baseline = checkpoint_mtime(a)
        assert baseline is not None
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            _registry(vocab, 70).save(a)  # rollout lands "during load"
            watcher = CheckpointWatcher(engine, a, interval=0.05,
                                        baseline_mtime=baseline)
            assert watcher.poll_once() is True
            assert watcher.reloads == 1
            assert engine.model_version == f"v1:{a.name}"

    def test_baseline_none_reloads_checkpoint_created_during_load(
            self, vocab, checkpoints, tmp_path):
        """Empty watch dir at probe time (baseline None): a checkpoint
        appearing before the first poll must be picked up."""
        a, _ = checkpoints
        late = tmp_path / "late_ckpt"
        with MultiModelEngine(ModelRegistry.from_checkpoint(a)) as engine:
            watcher = CheckpointWatcher(engine, late, interval=0.05,
                                        baseline_mtime=None)
            assert watcher.poll_once() is False  # still nothing there
            _registry(vocab, 80).save(late)
            assert watcher.poll_once() is True
            assert engine.model_version == f"v1:{late.name}"


class TestShardedReload:
    def _factory(self, path):
        import functools

        return functools.partial(_sharded_worker, str(path))

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_broadcast_reload(self, checkpoints, n_shards):
        a, b = checkpoints
        with ShardedEngine(self._factory(a), n_shards=n_shards) as sharded, \
                MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh:
            expected = fresh.advise_full_many(SNIPPETS)
            version = sharded.reload(b)
            assert version == f"v1:{b.name}"
            got = sharded.advise_full_many(SNIPPETS)
            for e, g in zip(expected, got):
                np.testing.assert_allclose(g.directive.probability,
                                           e.directive.probability, atol=1e-6)
            stats = sharded.stats()
            assert stats["model_version"] == version

    def test_reload_unsupported_engine_raises(self, vocab):
        model = PragFormer(len(vocab), TINY, rng=1)

        def factory():
            return InferenceEngine(model, vocab, max_len=TINY.max_len)

        with ShardedEngine(factory, n_shards=1) as sharded:
            with pytest.raises(RuntimeError, match="reload"):
                sharded.reload("anywhere")

    def test_version_tag_consistent_across_grown_workers(self, checkpoints):
        """Workers the autoscaler spawns after several reloads must report
        the same parent-issued model_version as their siblings — the tag
        is the operator's fleet-wide rollout check."""
        from repro.serve import AutoscaleConfig

        a, b = checkpoints
        cfg = AutoscaleConfig(min_shards=1, max_shards=2,
                              high_watermark=0.01, low_watermark=0.0,
                              window=2, cooldown_s=0.0)
        with ShardedEngine(self._factory(a), n_shards=1,
                           autoscale=cfg) as sharded:
            assert sharded.reload(a) == f"v1:{a.name}"
            version = sharded.reload(b)
            assert version == f"v2:{b.name}"
            _grow_under_burst(sharded, target=2)
            snapshots = sharded.stats()["shards"]
            assert len(snapshots) == 2
            assert [s["model_version"] for s in snapshots] == [version] * 2

    def test_failed_reload_does_not_poison_grown_workers(self, checkpoints,
                                                         tmp_path):
        """A failed broadcast must revert the replay spec: a worker grown
        afterwards starts on the factory weights and serves, instead of
        dying on the bad checkpoint at startup."""
        from repro.serve import AutoscaleConfig

        a, _ = checkpoints
        cfg = AutoscaleConfig(min_shards=1, max_shards=2,
                              high_watermark=0.01, low_watermark=0.0,
                              window=2, cooldown_s=0.0)
        with ShardedEngine(self._factory(a), n_shards=1,
                           autoscale=cfg) as sharded:
            with pytest.raises(RuntimeError):
                sharded.reload(tmp_path / "never_written")
            assert sharded._reload_spec is None  # reverted, not remembered
            _grow_under_burst(sharded, target=2)
            # every shard — including the grown one — serves
            full = sharded.advise_full_many(SNIPPETS)
            assert len(full) == len(SNIPPETS)
            assert all(f.directive is not None for f in full)


def _grow_under_burst(sharded, target, n_threads=4, timeout=45.0):
    """Hammer ``sharded`` with concurrent bulk calls until it has grown to
    ``target`` active shards (asserts it does within ``timeout``)."""
    import time

    stop = threading.Event()
    errors: list = []

    def client():
        while not stop.is_set():
            try:
                sharded.advise_many(SNIPPETS)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)
                return

    threads = [threading.Thread(target=client) for _ in range(n_threads)]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    while sharded.n_shards < target and time.monotonic() < deadline:
        time.sleep(0.05)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors
    assert sharded.n_shards == target, "fleet failed to grow under burst"


def _sharded_worker(path):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path))
