"""Tests for identifier replacement, representations, and vocabulary."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import parse
from repro.tokenize import (
    CLS,
    MASK,
    PAD,
    Representation,
    UNK,
    Vocab,
    build_replacement_map,
    rename_directive,
    replace_identifiers_in_code,
    represent,
    text_tokens,
    tokenize_representation,
)


class TestReplacement:
    def test_table6_example(self):
        """The exact example from Table 6."""
        code = "for (i = 0; i < len; i++) a[i] = i;"
        replaced = replace_identifiers_in_code(code)
        toks = text_tokens(replaced)
        assert "var0" in toks
        assert "var1" in toks
        assert "arr0" in toks
        assert "i" not in toks and "len" not in toks and "a" not in toks

    def test_numbering_follows_first_appearance(self):
        mapping = build_replacement_map(parse("for (i = 0; i < n; i++) a[i] = b[i];"))
        assert mapping["i"] == "var0"
        assert mapping["n"] == "var1"
        assert mapping["a"] == "arr0"
        assert mapping["b"] == "arr1"

    def test_functions_get_func_names(self):
        mapping = build_replacement_map(parse("for (i = 0; i < n; i++) y[i] = calc(x[i]);"))
        assert mapping["calc"] == "func0"

    def test_stdlib_names_kept(self):
        code = 'for (i = 0; i < n; i++) fprintf(stderr, "%d", x[i]);'
        replaced = replace_identifiers_in_code(code)
        assert "fprintf" in replaced
        assert "stderr" in replaced
        assert "x" not in text_tokens(replaced)

    def test_math_functions_kept(self):
        replaced = replace_identifiers_in_code("for (i = 0; i < n; i++) y[i] = sqrt(x[i]);")
        assert "sqrt" in replaced

    def test_replacement_is_consistent(self):
        """Same identifier maps to the same canonical name everywhere."""
        code = "for (i = 0; i < n; i++) { a[i] = i; a[i] = a[i] * i; }"
        replaced = replace_identifiers_in_code(code)
        toks = text_tokens(replaced)
        assert toks.count("arr0") == 3
        # i appears: init, cond, incr, subscript x3, rhs x2
        assert toks.count("var0") >= 6

    def test_replaced_code_reparses(self):
        code = "double f(double v) { return v * v; }\nfor (i = 0; i < n; i++) b[i] = f(a[i]);"
        replaced = replace_identifiers_in_code(code)
        parse(replaced)  # must not raise

    def test_array_classification_beats_var(self):
        # name used both as scalar read and subscripted -> arr
        mapping = build_replacement_map(parse("x = a; y = a[3];"))
        assert mapping["a"].startswith("arr")

    def test_rename_directive_private(self):
        mapping = {"j": "var1", "s": "var2"}
        out = rename_directive("#pragma omp parallel for private(j) reduction(+:s)", mapping)
        assert "private(var1)" in out
        assert "reduction(+:var2)" in out

    def test_rename_directive_keeps_schedule(self):
        out = rename_directive("#pragma omp parallel for schedule(dynamic,4)", {})
        assert "schedule(dynamic, 4)" in out


class TestRepresentations:
    CODE = "for (i = 0; i < len; i++) a[i] = i;"

    def test_text_is_identity(self):
        assert represent(self.CODE, Representation.TEXT) == self.CODE

    def test_ast_matches_paper_format(self):
        ast_text = represent(self.CODE, Representation.AST)
        assert ast_text.startswith("For:")
        assert "Assignment: =" in ast_text
        assert "ID: i" in ast_text
        assert "Constant: int, 0" in ast_text
        assert "BinaryOp: <" in ast_text
        assert "UnaryOp: p++" in ast_text
        assert "ArrayRef:" in ast_text

    def test_replaced_ast(self):
        r_ast = represent(self.CODE, Representation.R_AST)
        assert "ID: var0" in r_ast
        assert "ID: arr0" in r_ast
        assert "ID: i" not in r_ast

    def test_replaced_text(self):
        r_text = represent(self.CODE, Representation.R_TEXT)
        toks = text_tokens(r_text)
        assert "var0" in toks and "arr0" in toks

    def test_tokenize_text_uses_lexer(self):
        toks = tokenize_representation(self.CODE, Representation.TEXT)
        assert toks[:2] == ["for", "("]
        assert "a" in toks and "[" in toks

    def test_tokenize_ast_splits_whitespace(self):
        toks = tokenize_representation(self.CODE, Representation.AST)
        assert "For:" in toks
        assert "ID:" in toks

    def test_pragma_never_leaks_into_representation(self):
        code = "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;"
        for rep in Representation:
            toks = tokenize_representation(code, rep)
            assert "pragma" not in toks and "omp" not in toks

    def test_ast_longer_than_text(self):
        """Table 7: AST representations average more tokens than text."""
        text_len = len(tokenize_representation(self.CODE, Representation.TEXT))
        ast_len = len(tokenize_representation(self.CODE, Representation.AST))
        assert ast_len >= text_len - 5  # AST adds structural labels


class TestVocab:
    def test_specials_present(self):
        v = Vocab.build([["a", "b"]])
        for tok in (PAD, UNK, CLS, MASK):
            assert tok in v

    def test_ids_stable_and_distinct(self):
        v = Vocab.build([["x", "y", "x"]])
        assert v.pad_id != v.unk_id != v.cls_id != v.mask_id
        assert v.token_to_id("x") != v.token_to_id("y")

    def test_oov_maps_to_unk(self):
        v = Vocab.build([["known"]])
        assert v.token_to_id("unknown_token") == v.unk_id

    def test_encode_prepends_cls_and_truncates(self):
        v = Vocab.build([["a", "b", "c"]])
        ids = v.encode(["a", "b", "c", "a"], max_len=3)
        assert len(ids) == 3
        assert ids[0] == v.cls_id

    def test_decode_inverts_encode_for_known(self):
        v = Vocab.build([["for", "(", "i", ")"]])
        toks = ["for", "(", "i", ")"]
        ids = v.encode(toks, add_cls=False)
        assert v.decode(ids) == toks

    def test_min_freq_filters(self):
        v = Vocab.build([["common"] * 5 + ["rare"]], min_freq=2)
        assert "common" in v
        assert "rare" not in v

    def test_max_size_keeps_most_frequent(self):
        v = Vocab.build([["a"] * 3 + ["b"] * 2 + ["c"]], max_size=2)
        assert "a" in v and "b" in v and "c" not in v

    def test_oov_types_count(self):
        v = Vocab.build([["a", "b"]])
        assert v.oov_types([["a", "z", "w"], ["z"]]) == 2

    def test_deterministic_construction(self):
        streams = [["b", "a", "b"], ["c", "a"]]
        v1, v2 = Vocab.build(streams), Vocab.build(streams)
        assert v1._itos == v2._itos

    @given(st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_encode_never_exceeds_vocab(self, tokens):
        v = Vocab.build([["x", "y"]])
        ids = v.encode(tokens)
        assert (np.asarray(ids) < len(v)).all()
        assert (np.asarray(ids) >= 0).all()
