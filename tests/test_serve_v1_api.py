"""The unified v1 advice API: AdviceRequest/AdviceResult everywhere.

Three contracts:

* **parity** — the legacy ``advise*`` sprawl and the v1 surface answer
  bit-identically, field by field: the old methods are thin shims now
  and must never drift from ``advise_v1``;
* **context** — ``model_version`` / ``arm`` / ``recovered`` /
  ``degraded`` ride first-class on every result (engine, fleet, HTTP),
  including the shared-memory transport where workers only ever see
  pre-encoded rows;
* **wire** — ``/v1/*`` endpoints serve the new schema,
  ``schema_version`` appears in ``/stats``, and the legacy aliases keep
  answering (the v1 body is a strict superset of the legacy body).
"""

import json
import threading
import urllib.error
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    SCHEMA_VERSION,
    AdviceRequest,
    AdviceResult,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
    make_server,
)
from repro.serve.engine import source_digest
from repro.tokenize import Vocab, robust_text_tokens, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    "while (k < n) { total += buf[k]; k++; }",
]

#: lexes only through error recovery (stray ``@#$`` emits ERROR_TOKEN)
DIRTY = "for (i = 0; i < n; i++) { a[i] = @#$ b[i]; }"

HEAD_NAMES = ("directive", "private", "reduction")


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in SNIPPETS]
                       + [robust_text_tokens(DIRTY)], min_freq=1)


def _registry(vocab, seed0=0):
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name,
                          PragFormer(len(vocab), replace(TINY, seed=seed0 + k),
                                     rng=seed0 + k),
                          vocab, max_len=TINY.max_len)
    return registry


@pytest.fixture()
def engine(vocab):
    with MultiModelEngine(_registry(vocab)) as engine:
        yield engine


class TestAdviceRequest:
    def test_needs_exactly_one_input_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            AdviceRequest()
        with pytest.raises(ValueError, match="exactly one"):
            AdviceRequest(code="x", ids=np.zeros(4, dtype=np.int32),
                          digest=b"d")

    def test_ids_require_digest(self):
        with pytest.raises(ValueError, match="digest"):
            AdviceRequest(ids=np.zeros(4, dtype=np.int32))

    def test_of_coerces_bare_strings(self):
        req = AdviceRequest.of("int x;")
        assert req.code == "int x;" and req.id is None
        same = AdviceRequest(code="y", id="r1")
        assert AdviceRequest.of(same) is same
        with pytest.raises(TypeError):
            AdviceRequest.of(42)


class TestEngineParity:
    """The legacy shims and advise_v1 must answer identically."""

    def test_v1_dict_is_strict_superset_of_legacy(self, engine):
        for code in SNIPPETS:
            legacy = engine.advise_full(code).as_dict()
            v1 = engine.advise_v1([code])[0].as_dict()
            for key, value in legacy.items():
                assert v1[key] == value, key
            assert set(v1) - set(legacy) == {"recovered", "model_version",
                                             "arm"}

    def test_single_and_bulk_shims_match_v1(self, engine):
        results = engine.advise_v1(SNIPPETS)
        advices = engine.advise_many(SNIPPETS)
        fulls = engine.advise_full_many(SNIPPETS)
        for code, res, adv, full in zip(SNIPPETS, results, advices, fulls):
            assert res.verdict == adv.needs_directive
            assert res.probability == pytest.approx(adv.probability)
            assert res.clauses == full.clauses
            assert engine.advise(code).probability == pytest.approx(
                res.probability)

    def test_encoded_requests_match_code_requests(self, engine, vocab):
        rows = [vocab.encode(robust_text_tokens(code), max_len=TINY.max_len)
                for code in SNIPPETS]
        digests = [source_digest(code) for code in SNIPPETS]
        by_code = engine.advise_v1(SNIPPETS)
        by_ids = engine.advise_v1(
            [AdviceRequest(ids=row, digest=digest)
             for row, digest in zip(rows, digests)])
        for a, b in zip(by_code, by_ids):
            assert a.probability == pytest.approx(b.probability)
            assert a.verdict == b.verdict

    def test_mixed_input_forms_rejected(self, engine):
        row = np.zeros(TINY.max_len, dtype=np.int32)
        with pytest.raises(ValueError, match="mix"):
            engine.advise_v1([AdviceRequest(code=SNIPPETS[0]),
                              AdviceRequest(ids=row, digest=b"d")])

    def test_shims_are_marked_deprecated(self):
        for name in ("advise", "advise_many", "advise_full",
                     "advise_full_many", "advise_many_encoded",
                     "advise_full_many_encoded"):
            doc = getattr(MultiModelEngine, name).__doc__
            assert "deprecated" in doc, name


class TestOperationalContext:
    def test_id_is_echoed(self, engine):
        results = engine.advise_v1([AdviceRequest(code=SNIPPETS[0], id="r7")])
        assert results[0].id == "r7"
        assert results[0].as_dict()["id"] == "r7"
        anonymous = engine.advise_v1(SNIPPETS)[0]
        assert "id" not in anonymous.as_dict()

    def test_recovered_rides_on_the_result(self, engine):
        clean, dirty = engine.advise_v1([SNIPPETS[0], DIRTY])
        assert clean.recovered is False
        assert dirty.recovered is True

    def test_model_version_tracks_reload(self, engine, vocab, tmp_path):
        assert engine.advise_v1(SNIPPETS)[0].model_version == "0"
        ckpt = tmp_path / "ckpt"
        _registry(vocab, 50).save(ckpt)
        version = engine.reload(ckpt)
        assert engine.advise_v1(SNIPPETS)[0].model_version == version

    def test_canary_arm_is_stamped(self, engine, vocab, tmp_path):
        ckpt = tmp_path / "ckpt_canary"
        _registry(vocab, 70).save(ckpt)
        version = engine.start_canary(ckpt, 1.0)  # whole digest space
        for res in engine.advise_v1(SNIPPETS):
            assert res.arm == "canary"
            assert res.model_version == version
        engine.rollback()
        for res in engine.advise_v1(SNIPPETS):
            assert res.arm == "primary"


class TestShardedV1:
    @pytest.fixture()
    def checkpoints(self, vocab, tmp_path):
        a, b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
        _registry(vocab, 0).save(a)
        _registry(vocab, 100).save(b)
        return a, b

    def _fleet(self, path, n_shards=2):
        import functools

        return ShardedEngine(
            functools.partial(_build_multi, str(path)), n_shards=n_shards)

    def test_fleet_parity_with_legacy_bulk(self, checkpoints):
        a, _ = checkpoints
        with self._fleet(a) as sharded:
            fulls = sharded.advise_full_many(SNIPPETS)
            results = sharded.advise_v1(SNIPPETS)
            for full, res in zip(fulls, results):
                assert res.probability == pytest.approx(
                    full.directive.probability)
                assert res.verdict == full.directive.needs_directive
                assert res.arm == "primary"

    def test_fleet_recovered_over_shm_transport(self, checkpoints):
        """Workers on the shm transport only see pre-encoded rows; the
        router must still stamp ``recovered`` for dirty snippets."""
        a, _ = checkpoints
        with self._fleet(a) as sharded:
            clean, dirty = sharded.advise_v1([SNIPPETS[0], DIRTY])
            assert clean.recovered is False
            assert dirty.recovered is True

    def test_fleet_canary_arm_and_version(self, checkpoints):
        a, b = checkpoints
        with self._fleet(a) as sharded:
            version = sharded.start_canary(b, 1.0)
            for res in sharded.advise_v1(SNIPPETS):
                assert res.arm == "canary"
                assert res.model_version == version
            promoted = sharded.promote()
            for res in sharded.advise_v1(SNIPPETS):
                assert res.arm == "primary"
                assert res.model_version == promoted

    def test_fleet_rejects_encoded_requests(self, checkpoints):
        a, _ = checkpoints
        with self._fleet(a) as sharded:
            row = np.zeros(TINY.max_len, dtype=np.int32)
            with pytest.raises(ValueError, match="encoding"):
                sharded.advise_v1([AdviceRequest(ids=row, digest=b"d")])


def _build_multi(path):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path))


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(url, payload):
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


@pytest.fixture(scope="module")
def server_url(vocab):
    advisor = MultiModelEngine(_registry(vocab))
    server = make_server(advisor, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    advisor.close()
    thread.join(timeout=5)


class TestHTTPv1:
    def test_v1_advise_answers_v1_schema(self, server_url):
        status, body = _post(server_url + "/v1/advise",
                             {"code": SNIPPETS[0], "id": "req-1"})
        assert status == 200
        for key in ("needs_directive", "p_directive", "clauses",
                    "recommended_clauses", "degraded", "recovered",
                    "model_version", "arm"):
            assert key in body, key
        assert body["arm"] == "primary"
        assert body["id"] == "req-1"

    def test_legacy_advise_keeps_legacy_shape(self, server_url):
        status, body = _post(server_url + "/advise", {"code": SNIPPETS[0]})
        assert status == 200
        assert "model_version" not in body
        v1 = _post(server_url + "/v1/advise", {"code": SNIPPETS[0]})[1]
        assert v1["p_directive"] == body["p_directive"]

    def test_batch_answers_v1_schema_on_both_spellings(self, server_url):
        for prefix in ("", "/v1"):
            status, body = _post(server_url + prefix + "/advise/batch",
                                 {"codes": SNIPPETS[:2]})
            assert status == 200
            for result in body["results"]:
                assert "model_version" in result
                assert "arm" in result
            assert [r["id"] for r in body["results"]] == [0, 1]

    def test_stats_reports_schema_version(self, server_url):
        status, body = _get(server_url + "/stats")
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        status, v1_body = _get(server_url + "/v1/stats")
        assert status == 200
        assert v1_body["schema_version"] == SCHEMA_VERSION

    def test_v1_healthz_alias(self, server_url):
        status, body = _get(server_url + "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_v1_canary_lifecycle_routes(self, server_url):
        """/v1/canary* reach the same handlers as the legacy paths —
        with no canary active promote/rollback answer 409."""
        for endpoint in ("/v1/canary/promote", "/v1/canary/rollback"):
            req = urllib.request.Request(server_url + endpoint, data=b"",
                                         method="POST")
            try:
                urllib.request.urlopen(req, timeout=10)
                raise AssertionError("expected 409")
            except urllib.error.HTTPError as exc:
                assert exc.code == 409

    def test_unknown_v1_path_is_404(self, server_url):
        req = urllib.request.Request(server_url + "/v1/nope", data=b"{}",
                                     method="POST")
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
