"""Tests for shared utilities."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import Timer, ensure_rng, format_table, spawn_rngs


class TestRng:
    def test_none_is_deterministic(self):
        a = ensure_rng(None).integers(0, 1000, 5)
        b = ensure_rng(None).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independent_children(self):
        children = spawn_rngs(0, 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [c.random() for c in spawn_rngs(7, 4)]
        b = [c.random() for c in spawn_rngs(7, 4)]
        assert a == b

    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=25)
    def test_spawn_count(self, seed, n):
        assert len(spawn_rngs(seed, n)) == n


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "-+-" in lines[1]

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]], floatfmt=".3f")
        assert "0.123" in out
        assert "0.1235" not in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_laps_accumulate(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()
