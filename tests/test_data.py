"""Tests for dataset splits (Table 5) and encoding."""

import numpy as np
import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.data import (
    DEFAULT_MAX_LEN,
    TokenCache,
    encode_dataset,
    make_clause_dataset,
    make_directive_dataset,
)
from repro.tokenize import Representation
from repro.tokenize.stats import representation_stats


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig(n_records=500, seed=13))


@pytest.fixture(scope="module")
def directive_splits(corpus):
    return make_directive_dataset(corpus, rng=0)


class TestDirectiveDataset:
    def test_ratios(self, corpus, directive_splits):
        sizes = directive_splits.sizes()
        total = sum(sizes.values())
        assert total == len(corpus)
        assert abs(sizes["train"] / total - 0.8) < 0.02
        assert abs(sizes["validation"] / total - 0.1) < 0.02

    def test_stratification(self, directive_splits):
        fracs = directive_splits.label_fractions()
        assert abs(fracs["train"] - fracs["test"]) < 0.05
        assert abs(fracs["train"] - fracs["validation"]) < 0.05

    def test_no_overlap_between_splits(self, directive_splits):
        ids = lambda split: {e.record.uid for e in split}
        assert not (ids(directive_splits.train) & ids(directive_splits.test))
        assert not (ids(directive_splits.train) & ids(directive_splits.validation))
        assert not (ids(directive_splits.validation) & ids(directive_splits.test))

    def test_labels_match_directives(self, directive_splits):
        for ex in directive_splits.train[:100]:
            assert ex.label == int(ex.record.has_omp)

    def test_deterministic(self, corpus):
        s1 = make_directive_dataset(corpus, rng=5)
        s2 = make_directive_dataset(corpus, rng=5)
        assert [e.record.uid for e in s1.train] == [e.record.uid for e in s2.train]


class TestClauseDataset:
    def test_only_positive_records(self, corpus):
        splits = make_clause_dataset(corpus, "private", rng=0)
        for ex in splits.train + splits.validation + splits.test:
            assert ex.record.has_omp

    def test_balanced_labels(self, corpus):
        splits = make_clause_dataset(corpus, "private", balance=True, rng=0)
        all_ex = splits.train + splits.validation + splits.test
        frac = sum(e.label for e in all_ex) / len(all_ex)
        assert abs(frac - 0.5) < 0.02

    def test_unbalanced_keeps_all_positives(self, corpus):
        splits = make_clause_dataset(corpus, "reduction", balance=False, rng=0)
        total = sum(splits.sizes().values())
        assert total == len(corpus.positives)

    def test_reduction_labels(self, corpus):
        splits = make_clause_dataset(corpus, "reduction", rng=0)
        for ex in splits.train[:50]:
            assert ex.label == int(ex.record.omp.has_reduction)

    def test_invalid_clause_raises(self, corpus):
        with pytest.raises(ValueError):
            make_clause_dataset(corpus, "nowait")


class TestEncoding:
    def test_shapes_and_padding(self, directive_splits):
        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=64)
        assert enc.train.ids.shape == (len(directive_splits.train), 64)
        assert enc.train.mask.shape == enc.train.ids.shape
        # mask is 1 exactly where ids are not PAD
        pad = enc.vocab.pad_id
        assert ((enc.train.ids != pad) == enc.train.mask.astype(bool)).all()

    def test_cls_first(self, directive_splits):
        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=32)
        assert (enc.train.ids[:, 0] == enc.vocab.cls_id).all()

    def test_default_max_len_is_110(self):
        assert DEFAULT_MAX_LEN == 110

    def test_vocab_built_on_train_only(self, directive_splits):
        enc = encode_dataset(directive_splits, Representation.TEXT)
        train_types = set()
        cache = TokenCache()
        for ex in directive_splits.train:
            train_types.update(cache.tokens(ex.record, Representation.TEXT))
        # every train type is in vocab (min_freq=1)
        assert all(t in enc.vocab for t in train_types)

    def test_labels_preserved(self, directive_splits):
        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=16)
        expected = np.array([e.label for e in directive_splits.test])
        assert (enc.test.labels == expected).all()

    def test_token_cache_reuse(self, directive_splits):
        cache = TokenCache()
        rec = directive_splits.train[0].record
        t1 = cache.tokens(rec, Representation.TEXT)
        t2 = cache.tokens(rec, Representation.TEXT)
        assert t1 is t2

    def test_ids_are_int32_end_to_end(self, directive_splits):
        """int32 ids from Vocab.encode through every encoded split."""
        from repro.data.encoding import ID_DTYPE, encode_batch

        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=32)
        for split in (enc.train, enc.validation, enc.test):
            assert split.ids.dtype == ID_DTYPE
            assert split.mask.dtype == np.float32
        row = enc.vocab.encode(["int", "i", ";"], max_len=16)
        assert row.dtype == ID_DTYPE
        batch = encode_batch([["int", "i", ";"]], enc.vocab, 16)
        assert batch.ids.dtype == ID_DTYPE

    def test_int32_roundtrip_through_persistence(self, directive_splits, tmp_path):
        """Encode -> train-free predict -> save_advisor -> reload -> same
        predictions on the same int32 ids."""
        from repro.models import PragFormer
        from repro.models.persistence import load_advisor, save_advisor
        from repro.models.pragformer import PragFormerConfig

        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=24)
        model = PragFormer(len(enc.vocab), PragFormerConfig(
            d_model=16, n_heads=2, n_layers=1, d_ff=24, d_head_hidden=8,
            max_len=24))
        before = model.predict_proba(enc.test)
        save_advisor({"directive": (model, enc.vocab, 24)}, tmp_path / "ckpt")
        reloaded, vocab2, max_len = load_advisor(tmp_path / "ckpt")["directive"]
        assert max_len == 24
        assert vocab2.encode(["int"]).dtype == np.int32
        after = reloaded.predict_proba(enc.test)
        np.testing.assert_allclose(before, after, atol=1e-6)

    def test_length_order_cached(self, directive_splits):
        enc = encode_dataset(directive_splits, Representation.TEXT, max_len=32)
        order1 = enc.train.length_order()
        order2 = enc.train.length_order()
        assert order1 is order2  # computed once, cached on the split
        lengths = enc.train.mask.sum(axis=1)
        assert (np.diff(lengths[order1]) >= 0).all()


class TestTable7Stats:
    @pytest.fixture(scope="class")
    def stats(self, directive_splits):
        cache = TokenCache()
        return {
            rep: representation_stats(directive_splits, rep, cache)
            for rep in Representation
        }

    def test_replacement_shrinks_vocab(self, stats):
        """Table 7: replaced representations have far smaller vocabularies."""
        assert stats[Representation.R_TEXT]["train_vocab_size"] < stats[Representation.TEXT]["train_vocab_size"]
        assert stats[Representation.R_AST]["train_vocab_size"] < stats[Representation.AST]["train_vocab_size"]

    def test_replacement_reduces_oov(self, stats):
        assert stats[Representation.R_TEXT]["oov_types"] <= stats[Representation.TEXT]["oov_types"]

    def test_ast_longer_than_text(self, stats):
        """Table 7: AST serialization adds structural tokens."""
        assert stats[Representation.AST]["avg_length"] > stats[Representation.TEXT]["avg_length"]

    def test_all_positive(self, stats):
        for rep_stats in stats.values():
            assert rep_stats["train_vocab_size"] > 0
            assert rep_stats["avg_length"] > 0
