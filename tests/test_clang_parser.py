"""Unit and property tests for the C parser and unparser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Call,
    Cast,
    Compound,
    Decl,
    DoWhile,
    For,
    FuncDef,
    Identifier,
    If,
    ParseError,
    StructRef,
    TernaryOp,
    UnaryOp,
    While,
    parse,
    parse_expression,
    unparse,
    walk,
)
from repro.clang.nodes import DeclList, ExprStmt, Switch


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "-"
        assert isinstance(expr.right, Identifier) and expr.right.name == "c"

    def test_assignment_right_associative(self):
        expr = parse_expression("a = b = c")
        assert isinstance(expr, Assignment)
        assert isinstance(expr.rvalue, Assignment)

    def test_compound_assignment(self):
        expr = parse_expression("sum += a[i]")
        assert isinstance(expr, Assignment) and expr.op == "+="
        assert isinstance(expr.rvalue, ArrayRef)

    def test_ternary(self):
        expr = parse_expression("a > b ? a : b")
        assert isinstance(expr, TernaryOp)

    def test_logical_precedence(self):
        expr = parse_expression("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_relational_vs_shift(self):
        expr = parse_expression("a << 2 < b")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_unary_prefix(self):
        expr = parse_expression("-x + !y")
        assert expr.left.op == "-" and expr.right.op == "!"

    def test_prefix_and_postfix_increment(self):
        pre = parse_expression("++i")
        post = parse_expression("i++")
        assert isinstance(pre, UnaryOp) and pre.op == "++"
        assert isinstance(post, UnaryOp) and post.op == "p++"

    def test_nested_array_ref(self):
        expr = parse_expression("A[i][j]")
        assert isinstance(expr, ArrayRef)
        assert isinstance(expr.array, ArrayRef)

    def test_function_call_args(self):
        expr = parse_expression("f(a, b + 1, g(c))")
        assert isinstance(expr, Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], Call)

    def test_struct_refs(self):
        dot = parse_expression("p.x")
        arrow = parse_expression("p->x")
        assert isinstance(dot, StructRef) and dot.op == "."
        assert isinstance(arrow, StructRef) and arrow.op == "->"

    def test_chained_struct_array(self):
        expr = parse_expression("image->colormap[i].opacity")
        assert isinstance(expr, StructRef) and expr.field_name == "opacity"
        assert isinstance(expr.obj, ArrayRef)

    def test_cast(self):
        expr = parse_expression("(double) x")
        assert isinstance(expr, Cast) and expr.to_type == "double"

    def test_cast_of_typedef_name(self):
        expr = parse_expression("(size_t) n")
        assert isinstance(expr, Cast) and expr.to_type == "size_t"

    def test_parenthesized_not_cast(self):
        expr = parse_expression("(a) + b")
        assert isinstance(expr, BinaryOp) and expr.op == "+"

    def test_sizeof_expr(self):
        expr = parse_expression("sizeof(x)")
        assert isinstance(expr, UnaryOp) and expr.op == "sizeof"

    def test_sizeof_type(self):
        expr = parse_expression("sizeof(double)")
        assert isinstance(expr, UnaryOp) and expr.op == "sizeof"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")


class TestStatements:
    def test_simple_for(self):
        ast = parse("for (i = 0; i < n; i++) a[i] = i;")
        loop = ast.stmts[0]
        assert isinstance(loop, For)
        assert isinstance(loop.body, ExprStmt)

    def test_for_with_declaration_init(self):
        ast = parse("for (int i = 0; i < n; ++i) { s += a[i]; }")
        loop = ast.stmts[0]
        assert isinstance(loop.init, Decl)
        assert loop.init.name == "i"

    def test_for_empty_header(self):
        loop = parse("for (;;) break;").stmts[0]
        assert loop.init is None and loop.cond is None and loop.nxt is None

    def test_while_and_dowhile(self):
        assert isinstance(parse("while (x) x--;").stmts[0], While)
        assert isinstance(parse("do x--; while (x);").stmts[0], DoWhile)

    def test_if_else(self):
        node = parse("if (a > b) x = a; else x = b;").stmts[0]
        assert isinstance(node, If)
        assert node.iffalse is not None

    def test_dangling_else_binds_inner(self):
        node = parse("if (a) if (b) x = 1; else x = 2;").stmts[0]
        assert node.iffalse is None
        assert isinstance(node.iftrue, If)
        assert node.iftrue.iffalse is not None

    def test_switch(self):
        node = parse("switch (x) { case 1: y = 1; break; default: y = 0; }").stmts[0]
        assert isinstance(node, Switch)
        assert len(node.body.stmts) == 2

    def test_declaration_with_qualifiers(self):
        decl = parse("static const unsigned long x = 5;").stmts[0]
        assert decl.quals == ["static", "const"]
        assert decl.base_type == "unsigned long"

    def test_register_declaration(self):
        decl = parse("register int r = 0;").stmts[0]
        assert "register" in decl.quals

    def test_pointer_declaration(self):
        decl = parse("double *p;").stmts[0]
        assert decl.ptr_depth == 1

    def test_array_declaration(self):
        decl = parse("double a[100][200];").stmts[0]
        assert len(decl.array_dims) == 2

    def test_multi_declarator(self):
        node = parse("int i, j, k;").stmts[0]
        assert isinstance(node, DeclList)
        assert [d.name for d in node.decls] == ["i", "j", "k"]

    def test_typedef_name_declaration(self):
        decl = parse("size_t n = 10;").stmts[0]
        assert isinstance(decl, Decl)
        assert decl.base_type == "size_t"

    def test_struct_variable(self):
        decl = parse("struct point p;").stmts[0]
        assert decl.base_type == "struct point"

    def test_initializer_list(self):
        decl = parse("int a[3] = {1, 2, 3};").stmts[0]
        assert decl.init is not None


class TestPragmas:
    def test_pragma_attaches_to_for(self):
        ast = parse("#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;")
        loop = ast.stmts[0]
        assert isinstance(loop, For)
        assert loop.pragma is not None
        assert "parallel for" in loop.pragma.text

    def test_pragma_with_clauses(self):
        src = "#pragma omp parallel for private(j) reduction(+:s)\nfor (i=0;i<n;i++) s += i;"
        loop = parse(src).stmts[0]
        assert "private(j)" in loop.pragma.text

    def test_unattached_pragma_preserved(self):
        ast = parse("#pragma omp barrier\nx = 1;")
        assert isinstance(ast.stmts[0], Compound)


class TestFunctionDefs:
    def test_simple_funcdef(self):
        ast = parse("void f(int a, double b) { return; }")
        func = ast.stmts[0]
        assert isinstance(func, FuncDef)
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]

    def test_funcdef_pointer_params(self):
        func = parse("double dot(double *x, double *y, int n) { return 0; }").stmts[0]
        assert func.params[0].ptr_depth == 1

    def test_funcdef_array_param(self):
        func = parse("void f(int a[10]) { }").stmts[0]
        assert len(func.params[0].array_dims) == 1

    def test_void_param_list(self):
        func = parse("int f(void) { return 1; }").stmts[0]
        assert func.params == []

    def test_funcdef_followed_by_loop(self):
        src = "int sq(int x) { return x * x; }\nfor (i = 0; i < n; i++) a[i] = sq(i);"
        ast = parse(src)
        assert isinstance(ast.stmts[0], FuncDef)
        assert isinstance(ast.stmts[1], For)


class TestPaperExamples:
    """The exact snippets from the paper's tables must parse."""

    def test_table1_example1(self):
        src = (
            "for (i=0;i<=N;i++)\n  A[i] = i;\n"
            "for (i=0;i<=N;i++)\n  B[i] = B[i]*2;\n"
        )
        ast = parse(src)
        assert len(ast.stmts) == 2

    def test_table1_example2(self):
        ast = parse("for (i=0;i<=N;i++)\n  if (MoreCalc(i))\n    Calc(i);")
        loop = ast.stmts[0]
        assert isinstance(loop.body, If)

    def test_table12_example2_io(self):
        src = (
            'for (i = 0; i < n; i++) {\n'
            '  fprintf(stderr, "%0.2lf ", x[i]);\n'
            '  if ((i % 20) == 0)\n    fprintf(stderr, " \\n");}'
        )
        ast = parse(src)
        calls = [n for n in walk(ast) if isinstance(n, Call)]
        assert len(calls) == 2

    def test_table12_example3_magick(self):
        src = (
            "for (i = 0; i < (( ssize_t) image->colors); i++)\n"
            "  image->colormap[i].opacity = (IndexPacket) i;"
        )
        ast = parse(src)
        casts = [n for n in walk(ast) if isinstance(n, Cast)]
        assert {c.to_type for c in casts} == {"ssize_t", "IndexPacket"}

    def test_table12_example4_maxgrid(self):
        src = (
            "for (i = 0; i < maxgrid; i++)\n"
            "  for (j = 0; j < maxgrid; j++){\n"
            "    sum_tang[i][j] = ( int) ((i + 1) * (j + 1));\n"
            "    mean[i][j] = ((( int) i) - j) / maxgrid;\n"
            "    path[i][j] = ((( int) i) * (j - 1)) / maxgrid; }"
        )
        ast = parse(src)
        inner = ast.stmts[0].body
        assert isinstance(inner, For)
        assert len(inner.body.stmts) == 3


class TestUnparseRoundtrip:
    CASES = [
        "for (i = 0; i < n; i++) a[i] = b[i] * 2;",
        "for (int i = 0; i < n; ++i) { s += a[i] * b[i]; }",
        "if (a > b) x = a; else x = b;",
        "while (n > 0) { n = n / 2; count++; }",
        "do { x--; } while (x > 0);",
        "double y = (double) (a + b) / 2.0;",
        "int a[3] = {1, 2, 3};",
        "p->next = q.prev;",
        "x = f(g(a), b[i], c + 1);",
        "#pragma omp parallel for private(j)\nfor (i = 0; i < n; i++) a[i] = j;",
        "switch (x) { case 1: y = 1; break; default: y = 0; }",
        "void f(int n, double *a) { for (int i = 0; i < n; i++) a[i] = 0; }",
        "register int r = 0;",
        "x = a > b ? a : b;",
        "s = sizeof(double);",
    ]

    @pytest.mark.parametrize("src", CASES)
    def test_parse_unparse_parse_fixed_point(self, src):
        """unparse(parse(x)) must itself parse to the same unparsed text."""
        first = unparse(parse(src))
        second = unparse(parse(first))
        assert first == second


# -- property-based expression round-trips ---------------------------------

names = st.sampled_from(["a", "b", "c", "i", "j", "n", "sum", "arr"])
ints = st.integers(min_value=0, max_value=999).map(str)


@st.composite
def expressions(draw, depth=0):
    if depth > 3:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(names)
    if choice == 1:
        return draw(ints)
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "&&"]))
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == 3:
        base = draw(names)
        sub = draw(expressions(depth=depth + 1))
        return f"{base}[{sub}]"
    func = draw(names)
    arg = draw(expressions(depth=depth + 1))
    return f"{func}({arg})"


class TestExpressionProperties:
    @given(expressions())
    @settings(max_examples=100, deadline=None)
    def test_unparse_is_fixed_point(self, src):
        tree = parse_expression(src)
        text = unparse(ExprStmt(tree))
        again = unparse(parse(text))
        assert text == again

    @given(expressions())
    @settings(max_examples=50, deadline=None)
    def test_walk_visits_all_identifiers(self, src):
        tree = parse_expression(src)
        idents = {n.name for n in walk(tree) if isinstance(n, Identifier)}
        # every name token in the source must be visited
        for name in ["a", "b", "c", "i", "j", "n", "sum", "arr"]:
            if f"{name}" in src.replace("(", " ").replace(")", " "):
                tokens = src.replace("(", " ").replace(")", " ").replace("[", " ").replace("]", " ").split()
                if name in tokens:
                    assert name in idents
