"""Tests for AST DFS serialization and unparse edge cases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import parse, unparse, walk
from repro.clang.nodes import ExprStmt, Pragma
from repro.clang.serialize import ast_to_dfs_text


class TestDfsText:
    def test_paper_table2_format(self):
        """Table 2's AST representation for Table 1 example 1's first loop."""
        text = ast_to_dfs_text(parse("for (i=0;i<=N;i++)\n  A[i] = i;"))
        expected_prefix = ("For: Assignment: = ID: i Constant: int, 0 "
                           "BinaryOp: <= ID: i ID: N UnaryOp: p++ ID: i "
                           "Assignment: = ArrayRef: ID: A ID: i ID: i")
        assert text == expected_prefix

    def test_if_and_funccall_labels(self):
        """Table 2 example 2: If / FuncCall / ExprList labels."""
        text = ast_to_dfs_text(parse("for (i=0;i<=N;i++)\n  if (MoreCalc(i))\n    Calc(i);"))
        assert "If:" in text
        assert "FuncCall:" in text
        assert "ExprList:" in text
        assert "ID: MoreCalc" in text

    def test_pragma_never_serialized(self):
        text = ast_to_dfs_text(parse(
            "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;"))
        assert "Pragma" not in text
        assert "pragma" not in text

    def test_exprstmt_transparent(self):
        text = ast_to_dfs_text(parse("x = 1;"))
        assert text.startswith("Assignment: =")
        assert "ExprStmt" not in text

    def test_node_count_matches_label_count(self):
        """Every non-pragma, non-ExprStmt node contributes one label."""
        ast = parse("for (i = 0; i < n; i++) { t = a[i]; b[i] = t * 2; }")
        labels = ast_to_dfs_text(ast).split()
        # count label heads: tokens ending with ':' are node heads except
        # type annotations; instead count nodes directly
        nodes = [n for n in walk(ast)
                 if not isinstance(n, (Pragma, ExprStmt))
                 and type(n).__name__ != "Compound" or n is not ast]
        assert len(ast_to_dfs_text(ast)) > 0
        assert len(labels) > 10

    def test_decl_label_includes_type(self):
        text = ast_to_dfs_text(parse("static const double x = 1.0;"))
        assert "Decl: static const double x" in text


class TestUnparseEdgeCases:
    def test_empty_statement(self):
        assert unparse(parse("for (i = 0; i < n; i++);")) .endswith(";")

    def test_goto_and_label(self):
        src = "again:\nx = x - 1;\nif (x > 0) goto again;"
        out = unparse(parse(src))
        assert "goto again;" in out
        assert "again:" in out

    def test_nested_ternary(self):
        out = unparse(parse("x = a ? b : c ? d : e;"))
        again = unparse(parse(out))
        assert out == again

    def test_decllist_preserves_inits(self):
        out = unparse(parse("int i = 0, j = 1, k;"))
        assert "i = 0" in out and "j = 1" in out and "k" in out

    def test_pragma_on_loop_preserved(self):
        src = "#pragma omp parallel for reduction(+:s)\nfor (i = 0; i < n; i++) s += a[i];"
        out = unparse(parse(src))
        assert "#pragma omp parallel for reduction(+:s)" in out

    def test_do_while_roundtrip(self):
        out = unparse(parse("do { x = x / 2; } while (x > 1);"))
        assert unparse(parse(out)) == out

    def test_multidim_initializer(self):
        out = unparse(parse("double m[2][2];"))
        assert "[2][2]" in out


snippet_sources = st.sampled_from([
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1] * 2;",
    "while (x > 0) { x--; total += x; }",
    "if (a > b) { m = a; } else { m = b; }",
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) g[i][j] = 0;",
    "int f(int x) { return x * x; }",
    "s = 0; for (i = 0; i < n; i++) s += v[i];",
])


class TestProperties:
    @given(snippet_sources)
    @settings(max_examples=20, deadline=None)
    def test_dfs_stable_under_reformat(self, src):
        """DFS text is whitespace-insensitive: reformatting doesn't change it."""
        import re

        reformatted = re.sub(r"\s+", " ", src)
        assert ast_to_dfs_text(parse(src)) == ast_to_dfs_text(parse(reformatted))

    @given(snippet_sources)
    @settings(max_examples=20, deadline=None)
    def test_unparse_preserves_dfs(self, src):
        """unparse then reparse yields an identical DFS serialization."""
        ast = parse(src)
        again = parse(unparse(ast))
        assert ast_to_dfs_text(ast) == ast_to_dfs_text(again)
