"""Tests for whole-model persistence, the schedule-clause dataset (future
work §6), and LR warmup wiring."""

import numpy as np
import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.data import encode_dataset, make_clause_dataset, make_directive_dataset
from repro.data.encoding import EncodedSplit
from repro.models import (
    PragFormer,
    PragFormerConfig,
    load_pragformer,
    save_pragformer,
)
from repro.tokenize import Representation

TINY_CFG = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                            d_head_hidden=16, max_len=48, batch_size=16, seed=0)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig(n_records=220, seed=31))


@pytest.fixture(scope="module")
def trained(corpus):
    splits = make_directive_dataset(corpus, rng=0)
    enc = encode_dataset(splits, Representation.TEXT, max_len=48, min_freq=2)
    model = PragFormer(len(enc.vocab), TINY_CFG)
    model.fit(enc.train, enc.validation, epochs=2)
    return model, enc


class TestPersistence:
    def test_roundtrip_predictions_identical(self, trained, tmp_path):
        model, enc = trained
        path = str(tmp_path / "model.npz")
        save_pragformer(model, enc.vocab, path)
        loaded, vocab = load_pragformer(path)
        assert len(vocab) == len(enc.vocab)
        p_orig = model.predict_proba(enc.test)
        p_loaded = loaded.predict_proba(enc.test)
        np.testing.assert_allclose(p_orig, p_loaded, atol=1e-6)

    def test_vocab_mapping_preserved(self, trained, tmp_path):
        model, enc = trained
        path = str(tmp_path / "model.npz")
        save_pragformer(model, enc.vocab, path)
        _, vocab = load_pragformer(path)
        for token in ("for", "(", ";"):
            assert vocab.token_to_id(token) == enc.vocab.token_to_id(token)

    def test_config_preserved(self, trained, tmp_path):
        model, enc = trained
        path = str(tmp_path / "model.npz")
        save_pragformer(model, enc.vocab, path)
        loaded, _ = load_pragformer(path)
        assert loaded.config == model.config

    def test_version_check(self, trained, tmp_path):
        import json

        model, enc = trained
        path = str(tmp_path / "model.npz")
        save_pragformer(model, enc.vocab, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["__meta__"]).decode())
        meta["format_version"] = 999
        data["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8).copy()
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_pragformer(path)


class TestScheduleClause:
    def test_schedule_dynamic_dataset(self, corpus):
        splits = make_clause_dataset(corpus, "schedule_dynamic", balance=False, rng=0)
        all_ex = splits.train + splits.validation + splits.test
        assert len(all_ex) == len(corpus.positives)
        # labels match the directives
        for ex in all_ex[:80]:
            sched = ex.record.omp.schedule
            expected = int(sched is not None and sched[0] == "dynamic")
            assert ex.label == expected

    def test_dynamic_positives_exist_and_are_minority(self, corpus):
        splits = make_clause_dataset(corpus, "schedule_dynamic", balance=False, rng=0)
        all_ex = splits.train + splits.validation + splits.test
        n_pos = sum(e.label for e in all_ex)
        assert 0 < n_pos < len(all_ex) / 2

    def test_balanced_variant(self, corpus):
        splits = make_clause_dataset(corpus, "schedule_dynamic", balance=True, rng=0)
        all_ex = splits.train + splits.validation + splits.test
        frac = sum(e.label for e in all_ex) / max(1, len(all_ex))
        assert abs(frac - 0.5) < 0.1


class TestWarmup:
    def test_warmup_config_trains(self):
        cfg = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=16,
                               d_head_hidden=8, max_len=16, batch_size=8,
                               warmup_frac=0.2, seed=0)
        model = PragFormer(12, cfg)
        gen = np.random.default_rng(0)
        ids = gen.integers(4, 12, size=(32, 16)).astype(np.int64)
        ids[:, 0] = 2
        labels = (ids[:, 1] > 7).astype(np.int64)
        split = EncodedSplit(ids, np.ones((32, 16)), labels)
        history = model.fit(split, epochs=3)
        assert len(history.train_loss) == 3
        # the optimizer's lr was driven by the schedule (ends at peak)
        assert model._optimizer.lr == pytest.approx(cfg.lr)
