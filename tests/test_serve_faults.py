"""Fault-tolerance tests: the chaos harness driving worker supervision,
request deadlines, degraded verdicts, and HTTP admission control.

Every scenario here is deterministic — :class:`repro.serve.ChaosConfig`
schedules worker kill / hang / drop / malformed / slow faults at fixed
serving-call indices — and every assertion is about the same contract:
**every submitted request gets an answer** (real advice, a degraded
verdict, or an explicit 4xx/5xx), zero hangs, zero lost replies, and the
fleet heals itself within the restart budget.  This file is also the CI
``chaos-smoke`` stage (``scripts/check.sh --chaos``).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    AdmissionConfig,
    AutoscaleConfig,
    ChaosConfig,
    CheckpointWatcher,
    EngineConfig,
    InferenceEngine,
    ShardedEngine,
    SupervisorConfig,
    make_server,
    shard_of,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    'for (i = 0; i < n; i++) printf("%d", a[i]);',
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
    "for (p = head; p; p = p->next) count++;",
    "for (i = 0; i < rows; i++) out[i] = dot(m[i], v, cols);",
]

# fast supervision knobs shared by the recovery tests: tight heartbeats,
# near-instant backoff, short request deadlines — chaos in seconds, not
# the production half-minute
FAST = dict(request_timeout_s=2.0, heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.4, restart_backoff_s=0.01,
            restart_backoff_max_s=0.05)


def code_on_shard(shard, n_shards):
    """A snippet that provably routes to ``shard`` at ``n_shards``."""
    for i in range(10000):
        code = f"for (i = 0; i < n; i++) a[i] = b[i] * {i};"
        if shard_of(code, n_shards) == shard:
            return code
    raise AssertionError("no snippet found for shard")


@pytest.fixture(scope="module")
def model_and_vocab():
    vocab = Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)
    return PragFormer(len(vocab), TINY), vocab


@pytest.fixture(scope="module")
def factory(model_and_vocab):
    model, vocab = model_and_vocab

    def build():
        return InferenceEngine(model, vocab, max_len=TINY.max_len,
                               config=EngineConfig(max_batch_size=8))

    return build


def wait_until(predicate, timeout=15.0, interval=0.05):
    """Poll ``predicate`` until truthy; fail loudly on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


class TestChaosConfig:
    def test_seeded_is_deterministic_and_partitions(self):
        a = ChaosConfig.seeded(7, n_calls=20, kills=2, hangs=1, drops=1)
        b = ChaosConfig.seeded(7, n_calls=20, kills=2, hangs=1, drops=1)
        assert a == b
        picked = a.kill_at + a.hang_at + a.drop_at
        assert len(picked) == 4 and len(set(picked)) == 4
        assert all(0 <= i < 20 for i in picked)
        assert ChaosConfig.seeded(8, n_calls=20, kills=2) != ChaosConfig.seeded(
            7, n_calls=20, kills=2)

    def test_seeded_rejects_overfull_schedule(self):
        with pytest.raises(ValueError, match="cannot place"):
            ChaosConfig.seeded(0, n_calls=2, kills=2, hangs=1)

    def test_fault_precedence_kill_beats_slow(self):
        chaos = ChaosConfig(kill_at=(3,), slow_at=(3, 5))
        assert chaos.fault_at(3) == "kill"
        assert chaos.fault_at(5) == "slow"
        assert chaos.fault_at(4) is None

    def test_applies_to_slots(self):
        assert ChaosConfig(kill_at=(0,)).applies_to(2)
        scoped = ChaosConfig(kill_at=(0,), slots=(1,))
        assert scoped.applies_to(1) and not scoped.applies_to(0)


class TestWorkerFaults:
    def test_killed_worker_requests_are_retried_not_lost(self, factory):
        """A worker killed mid-trace: its sub-batch lands on a healthy
        shard and the answers are real — then the supervisor respawns the
        slot and the fleet returns to full strength."""
        expected = factory().predict_proba(SNIPPETS)
        chaos = ChaosConfig(kill_at=(0,), slots=(1,))
        with ShardedEngine(factory, n_shards=4, chaos=chaos,
                           supervisor=SupervisorConfig(**FAST)) as sharded:
            got = sharded.predict_proba(SNIPPETS)
            np.testing.assert_allclose(got, expected, atol=1e-5)
            sup = sharded.stats()["supervisor"]
            assert sup["faults"] >= 1 and sup["retries"] >= 1
            assert sup["degraded_answers"] == 0
            wait_until(lambda: sharded.stats()["supervisor"]["restarts"] >= 1)
            wait_until(lambda: all(w.is_alive()
                                   for w in sharded._workers[:4]))
            # the healed fleet serves without new faults
            faults_before = sharded.stats()["supervisor"]["faults"]
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)
            assert sharded.stats()["supervisor"]["faults"] == faults_before

    def test_hung_worker_deadline_then_supervisor_recovers_it(self, factory):
        """A wedged worker (stuck forward pass): the caller's deadline
        fires, the retry answers for real, and the heartbeat terminates +
        respawns the hung process."""
        code = code_on_shard(0, 2)
        expected = factory().advise_many([code])[0]
        chaos = ChaosConfig(hang_at=(0,), slots=(0,), hang_s=3600.0)
        cfg = SupervisorConfig(**{**FAST, "request_timeout_s": 1.0})
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=cfg) as sharded:
            got = sharded.advise_many([code])[0]
            assert not got.degraded
            assert got.probability == pytest.approx(expected.probability,
                                                    abs=1e-5)
            sup = sharded.stats()["supervisor"]
            assert sup["deadline_exceeded"] >= 1
            wait_until(lambda: sharded.stats()["supervisor"]["restarts"] >= 1)
            wait_until(lambda: all(w.is_alive()
                                   for w in sharded._workers[:2]))

    def test_lost_reply_is_answered_not_hung(self, factory):
        """A worker that consumes a request and never replies — the bug
        class that used to hang ``_scatter_call`` forever — now costs one
        deadline and the retry answers for real."""
        code = code_on_shard(1, 2)
        expected = factory().advise_many([code])[0]
        chaos = ChaosConfig(drop_at=(0,), slots=(1,))
        cfg = SupervisorConfig(**{**FAST, "request_timeout_s": 1.0})
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=cfg) as sharded:
            start = time.monotonic()
            got = sharded.advise_many([code])[0]
            assert time.monotonic() - start < 10.0  # bounded, not forever
            assert not got.degraded
            assert got.probability == pytest.approx(expected.probability,
                                                    abs=1e-5)
            sup = sharded.stats()["supervisor"]
            assert sup["deadline_exceeded"] >= 1
            # the dropping worker stays alive and healthy afterwards
            assert sharded._workers[1].is_alive()

    def test_malformed_reply_is_a_fault_not_an_answer(self, factory):
        """A garbled IPC payload must never be scattered into results."""
        code = code_on_shard(0, 2)
        expected = factory().advise_many([code])[0]
        chaos = ChaosConfig(malformed_at=(0,), slots=(0,))
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=SupervisorConfig(**FAST)) as sharded:
            got = sharded.advise_many([code])[0]
            assert not isinstance(got, str) and not got.degraded
            assert got.probability == pytest.approx(expected.probability,
                                                    abs=1e-5)
            assert sharded.stats()["supervisor"]["faults"] >= 1

    def test_slow_reply_within_deadline_is_not_a_fault(self, factory):
        chaos = ChaosConfig(slow_at=(0,), slots=(0,), slow_s=0.2)
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=SupervisorConfig(**FAST)) as sharded:
            sharded.predict_proba(SNIPPETS)
            sup = sharded.stats()["supervisor"]
            assert sup["faults"] == 0 and sup["deadline_exceeded"] == 0
            assert sup["degraded_answers"] == 0

    def test_crash_loop_degrades_to_fallback_instead_of_flapping(
            self, factory):
        """``rearm=True`` models a crash-looping checkpoint: every respawn
        dies again on its first serving call.  The restart budget must
        exhaust, mark the slot degraded (fallback warmed), and traffic
        must keep getting real answers — never an exception, never an
        unbounded respawn storm."""
        code = code_on_shard(0, 2)
        expected = factory().advise_many([code])[0]
        chaos = ChaosConfig(kill_at=(0,), slots=(0,), rearm=True)
        # budget 0: the first revive of a crashed slot already marks it
        # degraded, so the test observes the degrade path deterministically
        # (a successful heartbeat legitimately resets the budget, which
        # with a larger budget would race against the next crash)
        cfg = SupervisorConfig(request_timeout_s=1.0,
                               heartbeat_interval_s=0.2,
                               heartbeat_timeout_s=0.4,
                               restart_backoff_s=0.01,
                               restart_backoff_max_s=0.05,
                               restart_budget=0)
        stop = threading.Event()
        answers, errors = [], []
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=cfg) as sharded:
            def hammer():  # keeps re-crashing the re-armed slot
                while not stop.is_set():
                    try:
                        answers.append(sharded.advise_many([code])[0])
                    except Exception as exc:  # noqa: BLE001 — assert below
                        errors.append(exc)
                        return

            t = threading.Thread(target=hammer)
            t.start()
            try:
                # poll the flag directly: a heartbeat that lands between
                # crashes may clear it again, but every revive re-sets it
                wait_until(lambda: sharded._slot_degraded[0],
                           timeout=20.0, interval=0.002)
            finally:
                stop.set()
                t.join(timeout=20.0)
            assert not errors, errors
            sup = sharded.stats()["supervisor"]
            assert sup["restarts"] >= 1
            assert sup["faults"] >= 1
            # traffic kept flowing with REAL answers throughout: the
            # healthy shard / fallback covered for the crash-looping slot
            assert answers
            assert all(not a.degraded for a in answers)
            assert all(a.probability == pytest.approx(expected.probability,
                                                      abs=1e-5)
                       for a in answers)

    def test_stats_survive_a_dead_shard(self, factory):
        """/stats must diagnose a broken fleet, not die with it."""
        chaos = ChaosConfig(kill_at=(0,), slots=(0,))
        cfg = SupervisorConfig(**{**FAST, "heartbeat_interval_s": 0})
        with ShardedEngine(factory, n_shards=2, chaos=chaos,
                           supervisor=cfg) as sharded:
            sharded.predict_proba(SNIPPETS)  # kills slot 0, answers anyway
            stats = sharded.stats()
            assert len(stats["shards"]) == 2
            assert any("error" in s for s in stats["shards"])
            assert isinstance(stats["combined"], dict)
            assert stats["supervisor"]["faults"] >= 1


class TestLifecycleUnderFaults:
    def test_close_tolerates_dead_workers(self, factory):
        """close() on a half-dead fleet: reap without raising, bounded
        joins, queues released, idempotent."""
        expected = factory().predict_proba(SNIPPETS)
        chaos = ChaosConfig(kill_at=(0,), slots=(0, 1))
        cfg = SupervisorConfig(**{**FAST, "request_timeout_s": 2.0,
                                  "heartbeat_interval_s": 0})
        sharded = ShardedEngine(factory, n_shards=2, chaos=chaos,
                                supervisor=cfg)
        got = sharded.predict_proba(SNIPPETS)  # both workers die serving it
        np.testing.assert_allclose(got, expected, atol=1e-5)  # fallback
        assert sharded.stats()["supervisor"]["fallback_answers"] == len(
            SNIPPETS)
        start = time.monotonic()
        sharded.close(timeout=5.0)
        assert time.monotonic() - start < 10.0
        sharded.close()  # idempotent on an already-broken fleet

    def test_autoscaler_shrink_with_inflight_request(self, factory):
        """A request in flight on the retiring slot must be answered —
        shrink retires the slot FIFO behind it — and the supervisor must
        not resurrect a slot the autoscaler retired."""
        code1 = code_on_shard(1, 2)
        code0 = code_on_shard(0, 2)
        expected = factory().advise_many([code1])[0]
        # slot 1's first serving call takes ~1s; the construction-time
        # cooldown (0.3s) guarantees the shrink decision fires while that
        # call is still in flight on the slot being retired
        chaos = ChaosConfig(slow_at=(0,), slots=(1,), slow_s=1.0)
        auto = AutoscaleConfig(min_shards=1, max_shards=2, window=1,
                               cooldown_s=0.3, low_watermark=0.75,
                               high_watermark=10.0)
        sup = SupervisorConfig(**{**FAST, "request_timeout_s": 10.0})
        results = []
        with ShardedEngine(factory, n_shards=2, autoscale=auto, chaos=chaos,
                           supervisor=sup) as sharded:
            t = threading.Thread(target=lambda: results.append(
                sharded.advise_many([code1])[0]))
            t.start()
            time.sleep(0.1)  # the slow call is now in flight on slot 1
            deadline = time.monotonic() + 10.0
            while sharded.n_shards == 2 and time.monotonic() < deadline:
                sharded.advise_many([code0])
                time.sleep(0.02)
            t.join(timeout=15.0)
            assert not t.is_alive()
            assert sharded.n_shards == 1
            assert results and not results[0].degraded
            assert results[0].probability == pytest.approx(
                expected.probability, abs=1e-5)
            time.sleep(0.3)  # several supervisor ticks
            assert sharded.n_shards == 1  # retired slot stays retired


class TestRingFaults:
    """The PR-6 fault contract replayed on the shared-memory data plane:
    torn frames, a worker dying while it holds a ring slot, and a full
    ring backed up behind a wedged worker must all end in the degraded-
    answer path (real retry > in-process fallback > neutral verdict) —
    never a hang, never a garbage verdict, never a leaked segment (the
    ``no_ring_leaks`` fixture re-checks after each test)."""

    def test_torn_ring_frame_is_detected_and_retried(self, factory):
        """Chaos ``malformed`` on the rings commits a frame with a bad
        CRC — a torn write.  The parent must detect it by checksum,
        count a fault, and retry elsewhere; the writer stays healthy."""
        code = code_on_shard(0, 2)
        expected = factory().advise_many([code])[0]
        chaos = ChaosConfig(malformed_at=(0,), slots=(0,))
        with ShardedEngine(factory, n_shards=2, chaos=chaos, ipc="shm",
                           supervisor=SupervisorConfig(**FAST)) as sharded:
            got = sharded.advise_many([code])[0]
            assert not got.degraded
            assert got.probability == pytest.approx(expected.probability,
                                                    abs=1e-5)
            stats = sharded.stats()
            assert stats["ipc"]["active"] == "shm"
            assert stats["ipc"]["ring_sends"] >= 1
            assert stats["supervisor"]["faults"] >= 1
            assert sharded._workers[0].is_alive()  # torn write != dead

    def test_worker_killed_holding_a_ring_slot(self, factory):
        """The kill fires after the worker consumed the request frame
        and before any reply commit.  The retry answers for real, and
        the respawned slot gets *fresh* rings — the dead worker's cursor
        state is abandoned, never reused."""
        expected = factory().predict_proba(SNIPPETS)
        chaos = ChaosConfig(kill_at=(0,), slots=(1,))
        with ShardedEngine(factory, n_shards=4, chaos=chaos, ipc="shm",
                           supervisor=SupervisorConfig(**FAST)) as sharded:
            rings_before = len(sharded._all_rings)
            got = sharded.predict_proba(SNIPPETS)
            np.testing.assert_allclose(got, expected, atol=1e-5)
            assert sharded.stats()["supervisor"]["degraded_answers"] == 0
            wait_until(lambda: sharded.stats()["supervisor"]["restarts"] >= 1)
            wait_until(lambda: all(w.is_alive()
                                   for w in sharded._workers[:4]))
            assert len(sharded._all_rings) > rings_before  # fresh pair
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)

    def test_deadline_on_a_full_ring_never_hangs(self, factory):
        """Every worker wedges on its first serving call; with 1-slot
        rings the next frames fill the rings for good and later sends
        must overflow to the queues — and every caller must still be
        answered within its deadline budget, never hang."""
        chaos = ChaosConfig(hang_at=(0,), hang_s=3600.0)
        cfg = SupervisorConfig(**{**FAST, "request_timeout_s": 0.5,
                                  "heartbeat_interval_s": 0})  # stay wedged
        start = time.monotonic()
        with ShardedEngine(factory, n_shards=2, chaos=chaos, ipc="shm",
                           ring_slots=1,
                           supervisor=cfg) as sharded:
            answers = [sharded.advise_many(SNIPPETS) for _ in range(3)]
            stats = sharded.stats()
        assert time.monotonic() - start < 30.0  # bounded, not forever
        for batch in answers:
            assert len(batch) == len(SNIPPETS)
            assert all(a is not None for a in batch)
        # the wedged fleet was served by the in-process fallback (real
        # advice) and/or neutral degraded verdicts — never silence
        sup = stats["supervisor"]
        assert sup["deadline_exceeded"] >= 1
        assert sup["fallback_answers"] + sup["degraded_answers"] > 0
        assert stats["ipc"]["ring_overflows"] >= 1


class TestWatcherResilience:
    def test_watcher_survives_poll_exceptions(self, tmp_path):
        """A transient unreadable checkpoint dir must log-and-retry, not
        kill the watcher thread."""

        class Advisor:
            def reload(self, path):
                return "v1"

        watcher = CheckpointWatcher(Advisor(), tmp_path, interval=0.01)
        calls = {"n": 0}

        def flaky_poll():
            calls["n"] += 1
            raise OSError("transient: checkpoint dir mid-rewrite")

        watcher.poll_once = flaky_poll
        with watcher:
            wait_until(lambda: calls["n"] >= 3, timeout=5.0)
            assert watcher._thread.is_alive()
            assert watcher.poll_errors >= 3
            assert "transient" in watcher.last_error
        assert watcher.poll_errors == calls["n"]


# -- HTTP admission control -----------------------------------------------


class _StubAdvice:
    def as_dict(self):
        return {"needs_directive": False, "p_directive": 0.5, "clauses": {},
                "recommended_clauses": [], "degraded": False}


class _GatedAdvisor:
    """Blocks advise calls until released — holds a request in flight."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def advise_full_many(self, codes):
        self.entered.set()
        assert self.release.wait(10)
        return [_StubAdvice() for _ in codes]

    def stats(self):
        return {}


class _FlakyAdvisor:
    def __init__(self):
        self.fail = True

    def advise_full_many(self, codes):
        if self.fail:
            raise RuntimeError("fleet rebuilding")
        return [_StubAdvice() for _ in codes]

    def stats(self):
        return {}


def _serve(advisor, admission):
    server = make_server(advisor, port=0, admission=admission)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


def _post(url, payload):
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestAdmissionControl:
    def test_overload_sheds_with_429_and_retry_after(self):
        advisor = _GatedAdvisor()
        server, thread, url = _serve(
            advisor, AdmissionConfig(max_inflight=1, retry_after_s=2.0))
        try:
            first = []
            t = threading.Thread(target=lambda: first.append(
                _post(url + "/advise", {"code": "for(;;);"})))
            t.start()
            assert advisor.entered.wait(5)  # slot taken, inference blocked
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url + "/advise", {"code": "for(;;);"})
            assert err.value.code == 429
            assert err.value.headers.get("Retry-After") == "2"
            assert "shed" in json.loads(err.value.read())["error"]
            advisor.release.set()
            t.join(timeout=10)
            assert first and first[0][0] == 200  # admitted request finished
            assert server.counters()["shed"] == 1
        finally:
            advisor.release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_circuit_breaker_opens_and_half_open_recovers(self):
        advisor = _FlakyAdvisor()
        server, thread, url = _serve(
            advisor, AdmissionConfig(breaker_threshold=2,
                                     breaker_cooldown_s=0.3))
        try:
            for _ in range(2):  # consecutive failures open the breaker
                with pytest.raises(urllib.error.HTTPError) as err:
                    _post(url + "/advise", {"code": "for(;;);"})
                assert err.value.code == 500
            advisor.fail = False  # fleet is fixed, but the breaker is open
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url + "/advise", {"code": "for(;;);"})
            assert err.value.code == 503
            assert "breaker" in json.loads(err.value.read())["error"]
            time.sleep(0.35)  # cooldown: half-open probe closes the breaker
            assert _post(url + "/advise", {"code": "for(;;);"})[0] == 200
            assert _post(url + "/advise", {"code": "for(;;);"})[0] == 200
            assert server.counters()["breaker_rejected"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_batch_snippet_cap_rejected_400(self):
        advisor = _FlakyAdvisor()
        advisor.fail = False
        server, thread, url = _serve(
            advisor, AdmissionConfig(max_batch_snippets=2))
        try:
            ok = _post(url + "/advise/batch", {"codes": ["a;", "b;"]})
            assert ok[0] == 200
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url + "/advise/batch", {"codes": ["a;", "b;", "c;"]})
            assert err.value.code == 400
            assert "cap" in json.loads(err.value.read())["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_stats_exposes_admission_state(self):
        advisor = _FlakyAdvisor()
        advisor.fail = False
        server, thread, url = _serve(advisor, AdmissionConfig(max_inflight=7))
        try:
            with urllib.request.urlopen(url + "/stats", timeout=10) as resp:
                body = json.loads(resp.read().decode("utf-8"))
            admission = body["admission"]
            assert admission["max_inflight"] == 7
            assert admission["inflight"] == 0
            assert admission["breaker_open"] is False
            assert "shed" in body["http"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_admission_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_body_bytes=0)


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(request_timeout_s=0)
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_timeout_s=0)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_backoff_max_s=0.01,
                             restart_backoff_s=0.1)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_budget=-1)

    def test_backoff_doubles_and_caps(self):
        cfg = SupervisorConfig(restart_backoff_s=0.1,
                               restart_backoff_max_s=1.0)
        assert cfg.backoff(0) == pytest.approx(0.1)
        assert cfg.backoff(1) == pytest.approx(0.2)
        assert cfg.backoff(2) == pytest.approx(0.4)
        assert cfg.backoff(10) == pytest.approx(1.0)  # capped


class TestChaosSmoke:
    def test_seeded_kill_and_hang_every_request_answered(self, factory):
        """The acceptance scenario: 4 shards, a seeded kill and hang in
        the trace — every request answered (answered fraction = 1.0),
        zero hangs, zero lost replies, fleet back to full strength."""
        expected = factory().predict_proba(SNIPPETS)
        chaos = ChaosConfig.seeded(42, n_calls=4, kills=1, hangs=1,
                                   slots=(1, 3), hang_s=3600.0)
        cfg = SupervisorConfig(**{**FAST, "request_timeout_s": 1.0})
        answered = 0
        rounds = 8
        with ShardedEngine(factory, n_shards=4, chaos=chaos,
                           supervisor=cfg) as sharded:
            for _ in range(rounds):
                got = sharded.predict_proba(SNIPPETS)  # must never raise
                assert got.shape == (len(SNIPPETS), 2)
                assert np.isfinite(got).all()
                answered += len(SNIPPETS)
            assert answered == rounds * len(SNIPPETS)  # fraction = 1.0
            sup = sharded.stats()["supervisor"]
            assert sup["faults"] >= 1
            wait_until(lambda: sharded.stats()["supervisor"]["restarts"] >= 1)
            wait_until(lambda: all(w.is_alive()
                                   for w in sharded._workers[:4]))
            # healed: a full round serves clean
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)
