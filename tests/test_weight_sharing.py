"""One-copy weights for the shard fleet: segment swap, drain, cleanup.

The contract under test (see ``docs/architecture.md``, memory topology):
a sharded rollout publishes the checkpoint blob into **one** parent-owned
shared segment and workers map it read-only — reload and canary
promotion become "map the new segment, flip the slot pointer", the
retired segment is unlinked immediately (POSIX drain semantics free it
when the last mapping closes), and ``close()`` unlinks every segment the
engine ever created even when workers died holding a mapping.  Verdicts
must be bit-identical to per-worker eager loading — sharing is a memory
optimization, never a numerics change.
"""

import functools
import glob
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.persistence import WEIGHTS_NAME_PREFIX
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    EngineConfig,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
    SupervisorConfig,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
]

HEAD_NAMES = ("directive", "private", "reduction")

FAST = dict(request_timeout_s=2.0, heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.4, restart_backoff_s=0.01,
            restart_backoff_max_s=0.05)


def _segments():
    return set(glob.glob(f"/dev/shm/{WEIGHTS_NAME_PREFIX}-*"))


def wait_until(predicate, timeout=15.0, interval=0.05):
    """Poll ``predicate`` until truthy; fail loudly on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)


def _registry(vocab, seed0):
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name,
                          PragFormer(len(vocab), replace(TINY, seed=seed0 + k),
                                     rng=seed0 + k),
                          vocab, max_len=TINY.max_len)
    return registry


@pytest.fixture()
def checkpoints(vocab, tmp_path):
    a, b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
    _registry(vocab, 0).save(a)
    _registry(vocab, 100).save(b)
    return a, b


def _build_multi(path, config):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path),
                            config=config)


def _fleet(path, n_shards=2, share=True, supervisor=None):
    return ShardedEngine(
        functools.partial(_build_multi, str(path),
                          EngineConfig(max_batch_size=8)),
        n_shards=n_shards, share_weights=share, supervisor=supervisor)


def _probs(advisor, codes=SNIPPETS):
    return [full.directive.probability
            for full in advisor.advise_full_many(codes)]


class TestReloadSegmentSwap:
    def test_reload_publishes_one_segment_fleet_wide(self, checkpoints):
        a, b = checkpoints
        before = _segments()
        with _fleet(a) as sharded, \
                MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh:
            expected = _probs(fresh)
            sharded.reload(b)
            weights = sharded.stats()["weights"]
            assert weights["mode"] == "shared"
            assert weights["sharing"] is True
            assert weights["canary_segment"] is None
            name = weights["primary_segment"]
            assert name is not None and name.startswith(WEIGHTS_NAME_PREFIX)
            assert f"/dev/shm/{name}" in _segments() - before
            # one segment for the whole fleet, not one per shard
            assert len(_segments() - before) == 1
            np.testing.assert_allclose(_probs(sharded), expected, atol=1e-6)
        assert _segments() <= before

    def test_second_reload_retires_first_segment(self, checkpoints):
        a, b = checkpoints
        before = _segments()
        with _fleet(a) as sharded:
            sharded.reload(b)
            first = sharded.stats()["weights"]["primary_segment"]
            sharded.reload(a)
            weights = sharded.stats()["weights"]
            assert weights["primary_segment"] != first
            assert weights["segments_created"] == 2
            # the retired segment is unlinked as soon as it is superseded
            assert len(_segments() - before) == 1
        assert _segments() <= before

    def test_failed_reload_retires_its_segment(self, checkpoints, tmp_path):
        a, _ = checkpoints
        before = _segments()
        with _fleet(a) as sharded:
            with pytest.raises(RuntimeError):
                sharded.reload(tmp_path / "nonexistent_ckpt")
            assert _segments() <= before
            # the fleet still serves the original weights
            assert len(_probs(sharded)) == len(SNIPPETS)

    def test_no_sharing_mode_is_bit_identical(self, checkpoints):
        """--no-shared-weights parity: both modes must produce the same
        verdicts after the same reload — sharing is invisible to
        callers."""
        a, b = checkpoints
        before = _segments()
        with _fleet(a, share=True) as shared_fleet, \
                _fleet(a, share=False) as private_fleet:
            shared_fleet.reload(b)
            private_fleet.reload(b)
            assert private_fleet.stats()["weights"]["mode"] == "private"
            assert (private_fleet.stats()["weights"]["primary_segment"]
                    is None)
            np.testing.assert_allclose(_probs(shared_fleet),
                                       _probs(private_fleet), atol=0)
        assert _segments() <= before


class TestCanarySegmentFlip:
    def test_promote_flips_canary_segment_to_primary(self, checkpoints):
        a, b = checkpoints
        before = _segments()
        with _fleet(a) as sharded, \
                MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh:
            expected = _probs(fresh)
            sharded.start_canary(b, 0.5)
            weights = sharded.stats()["weights"]
            canary_seg = weights["canary_segment"]
            assert canary_seg is not None
            sharded.promote()
            weights = sharded.stats()["weights"]
            # promotion is a pointer flip: the canary segment *is* the
            # new primary, no new segment was created
            assert weights["primary_segment"] == canary_seg
            assert weights["canary_segment"] is None
            assert len(_segments() - before) == 1
            np.testing.assert_allclose(_probs(sharded), expected, atol=1e-6)
        assert _segments() <= before

    def test_rollback_unlinks_canary_segment(self, checkpoints):
        a, b = checkpoints
        before = _segments()
        with _fleet(a) as sharded:
            sharded.start_canary(b, 0.5)
            assert len(_segments() - before) == 1
            sharded.rollback()
            assert _segments() <= before
            assert sharded.stats()["weights"]["canary_segment"] is None
        assert _segments() <= before


class TestCleanupAndReplay:
    def test_close_unlinks_segments_with_dead_worker(self, checkpoints):
        """Satellite contract: a worker killed while holding a weight
        mapping must not leak the segment past close() — the parent owns
        every segment it created."""
        a, b = checkpoints
        before = _segments()
        sharded = _fleet(a, supervisor=SupervisorConfig(**FAST))
        try:
            sharded.reload(b)
            assert len(_segments() - before) == 1
            sharded._workers[0].kill()
        finally:
            sharded.close()
        assert _segments() <= before

    def test_respawned_worker_replays_reload_from_segment(self, checkpoints):
        """A supervisor respawn after a reload must serve the *reloaded*
        weights: the replay spec carries the segment name and the new
        worker maps it at spawn (the segment stays linked while
        current)."""
        a, b = checkpoints
        with _fleet(a, supervisor=SupervisorConfig(**FAST)) as sharded, \
                MultiModelEngine(ModelRegistry.from_checkpoint(b)) as fresh:
            expected = _probs(fresh)
            version = sharded.reload(b)
            sharded._workers[0].kill()
            wait_until(
                lambda: sharded.stats()["supervisor"]["restarts"] >= 1)
            wait_until(lambda: all(w.is_alive()
                                   for w in sharded._workers[:2]))
            np.testing.assert_allclose(_probs(sharded), expected, atol=1e-6)
            stats = sharded.stats()
            assert stats["model_version"] == version
