"""Determinism layer for the shared-memory data-parallel trainer.

The headline contract of ``repro.train.ddp``: N-worker training is
**bit-identical** to single-process training on the same seed — the same
per-step loss trajectory, the same final arena bytes, the same optimizer
moments.  That only holds because the gradient arithmetic is defined over
a fixed micro-shard grid independent of the worker count, so this file
sweeps the places where that construction could silently break:

* worker counts 1 vs {2, 3, 4}, with and without dropout reseeding in play;
* uneven batch remainders and batches smaller than the shard grid;
* repeat runs (same seed → same bytes; different seed → different bytes);
* a worker dying mid-step: a clean :class:`WorkerDied`, no ``/dev/shm``
  leak, and an arena frozen exactly at the last *completed* step;
* checkpoint/resume through ``FusedAdamW.state_dict`` — a resumed run is
  bit-identical to an uninterrupted one (and provably diverges when the
  moments are dropped, the regression this PR fixes);
* the model-level wiring (``MLMPretrainer.fit`` / ``PragFormer.fit`` with
  ``n_workers=``, the ``repro train --workers`` flag).
"""

import glob

import numpy as np
import pytest

from repro.data.encoding import EncodedSplit
from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.models.pretrain import MLMConfig, MLMPretrainer
from repro.nn import EncoderConfig, FusedAdamW, cross_entropy
from repro.nn.dtype import get_dtype
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tokenize.vocab import Vocab
from repro.train import (
    DDP_NAME_PREFIX,
    DDPConfig,
    DataParallelTrainer,
    WorkerDied,
    reseed_stochastic,
    shard_bounds,
    shard_rng,
)


def _ddp_segments():
    return sorted(glob.glob(f"/dev/shm/{DDP_NAME_PREFIX}-*"))


class _Toy(Module):
    """Linear-dropout-linear classifier: small, but stochastic in train
    mode, so the per-shard reseeding is actually load-bearing."""

    def __init__(self, rng=7):
        super().__init__()
        self.l1 = Linear(6, 16, rng=rng)
        self.drop = Dropout(0.25, rng=rng + 1)
        self.l2 = Linear(16, 3, rng=rng + 2)

    def forward(self, x):
        return self.l2.forward(self.drop.forward(self.l1.forward(x)))

    def backward(self, d):
        return self.l1.backward(self.drop.backward(self.l2.backward(d)))


def _toy_data(n=37, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6)).astype(get_dtype())
    y = rng.integers(0, 3, size=n).astype(np.int64)
    return X, y


def _make_shard_backward(model, X, y):
    """The canonical shard closure: reseed → forward → *sum*-reduced
    backward → (loss total, example count)."""
    ftype = get_dtype().type

    def shard_backward(sel, key):
        model.train()
        reseed_stochastic((model,), key)
        logits = model.forward(X[sel])
        loss, dlogits = cross_entropy(logits, y[sel])
        model.backward(dlogits * ftype(len(sel)))
        return float(loss) * len(sel), float(len(sel))

    return shard_backward


def _batches(n, bs):
    order = np.arange(n)
    return [order[s:s + bs] for s in range(0, n, bs)]


def _run(n_workers, *, n=37, bs=8, epochs=2, grad_shards=8, seed=5,
         grad_clip=1.0, model_rng=7):
    """One full training run; returns everything the parity tests compare."""
    X, y = _toy_data(n=n)
    model = _Toy(rng=model_rng)
    opt = FusedAdamW(model, lr=1e-2)
    cfg = DDPConfig(n_workers=n_workers, grad_shards=grad_shards, seed=seed)
    with DataParallelTrainer(opt, _make_shard_backward(model, X, y),
                             n_examples=n, config=cfg,
                             grad_clip=grad_clip) as trainer:
        epoch_losses = [trainer.run_epoch(_batches(n, bs), epoch=e)
                        for e in range(epochs)]
        step_losses = list(trainer.step_losses)
        counters = {k: (list(v) if isinstance(v, list) else v)
                    for k, v in trainer.counters.items()}
    return {
        "epoch_losses": epoch_losses,
        "step_losses": step_losses,
        "arena": opt.arena.data.copy(),
        "opt": opt.state_dict(),
        "counters": counters,
        "model_state": model.state_dict(),
    }


def _assert_bit_identical(a, b):
    assert a["step_losses"] == b["step_losses"]
    assert a["epoch_losses"] == b["epoch_losses"]
    np.testing.assert_array_equal(a["arena"], b["arena"])
    for key in ("t", "m", "v", "data"):
        np.testing.assert_array_equal(a["opt"][key], b["opt"][key],
                                      err_msg=f"optimizer {key}")
    for key in a["model_state"]:
        np.testing.assert_array_equal(a["model_state"][key],
                                      b["model_state"][key], err_msg=key)


class TestShardBounds:
    """The fixed micro-shard grid the whole determinism story rests on."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8, 9])
    def test_partition_exhaustive_and_balanced(self, shards):
        for n in range(0, 40):
            covered = []
            sizes = []
            for s in range(shards):
                lo, hi = shard_bounds(n, shards, s)
                assert 0 <= lo <= hi <= n
                covered.extend(range(lo, hi))
                sizes.append(hi - lo)
            # contiguous, exhaustive, in order — a partition of range(n)
            assert covered == list(range(n))
            # near-uniform: sizes differ by at most one
            assert max(sizes) - min(sizes) <= 1

    def test_batches_smaller_than_grid_leave_empty_shards(self):
        sizes = [shard_bounds(3, 8, s) for s in range(8)]
        assert sum(hi - lo for lo, hi in sizes) == 3
        assert sum(1 for lo, hi in sizes if hi == lo) == 5

    def test_shard_rng_streams_are_keyed_and_salted(self):
        a = shard_rng((5, 0, 1)).random(4)
        b = shard_rng((5, 0, 1)).random(4)
        np.testing.assert_array_equal(a, b)  # same key → same stream
        assert not np.array_equal(a, shard_rng((5, 0, 2)).random(4))
        assert not np.array_equal(a, shard_rng((5, 0, 1), salt=1).random(4))


class TestParity:
    """1-vs-N bit identity: the tentpole acceptance criterion."""

    @pytest.mark.parametrize("n_workers", [2, 3, 4])
    def test_n_workers_bit_identical_to_single_process(self, n_workers):
        _assert_bit_identical(_run(1), _run(n_workers))

    @pytest.mark.parametrize("grad_shards", [5, 6])
    def test_parity_holds_on_other_shard_grids(self, grad_shards):
        _assert_bit_identical(_run(1, grad_shards=grad_shards),
                              _run(2, grad_shards=grad_shards))

    def test_remainder_batches(self):
        """n=21, bs=8 → batches of 8, 8, 5: the uneven tail must shard the
        same way at every worker count."""
        _assert_bit_identical(_run(1, n=21), _run(2, n=21))
        _assert_bit_identical(_run(1, n=21), _run(4, n=21))

    def test_batch_smaller_than_shard_grid(self):
        """bs=3 with 8 shards: five shards per batch are empty, and the
        empty rows must contribute exact zeros to the reduction."""
        _assert_bit_identical(_run(1, n=10, bs=3), _run(3, n=10, bs=3))

    def test_different_grad_shards_is_a_different_trajectory(self):
        """Negative control: the grid *is* the arithmetic — changing it
        changes the floats (shard-local dropout keys, reduction layout),
        which is exactly why it is pinned independent of n_workers."""
        assert _run(1, grad_shards=8)["step_losses"] != \
            _run(1, grad_shards=5)["step_losses"]


class TestSeededDeterminism:
    def test_repeat_runs_bit_identical(self):
        _assert_bit_identical(_run(2), _run(2))
        _assert_bit_identical(_run(3), _run(3))

    def test_different_seed_differs(self):
        """Negative control: if the seed doesn't move the trajectory, the
        parity assertions above are vacuous."""
        assert _run(2, seed=5)["step_losses"] != \
            _run(2, seed=6)["step_losses"]


class TestCounters:
    def test_reduce_and_example_accounting(self):
        result = _run(2, n=32, bs=8, epochs=2)
        counters = result["counters"]
        assert counters["steps"] == 8  # 4 batches x 2 epochs
        assert counters["reduce_ops"] == counters["steps"]  # ONE sum per step
        arena_bytes = result["arena"].nbytes
        assert counters["grad_bytes_reduced"] == \
            counters["steps"] * 8 * arena_bytes
        assert counters["examples"] == 64
        # balanced batches shard evenly: perfect 2x counter speedup
        assert counters["per_rank_examples"] == [32, 32]
        speedup = counters["examples"] / max(counters["per_rank_examples"])
        assert speedup == 2.0

    def test_single_process_counters(self):
        counters = _run(1, n=32, bs=8, epochs=1)["counters"]
        assert counters["per_rank_examples"] == [32]
        assert counters["reduce_ops"] == 4


class TestWorkerDeath:
    def test_death_mid_step_raises_cleanly_and_unlinks(self):
        X, y = _toy_data(n=16)
        model = _Toy()
        opt = FusedAdamW(model, lr=1e-2)
        cfg = DDPConfig(n_workers=2, seed=5, die_at_step=1,
                        barrier_timeout_s=20.0)
        before = _ddp_segments()
        trainer = DataParallelTrainer(opt, _make_shard_backward(model, X, y),
                                      n_examples=16, config=cfg)
        with pytest.raises(WorkerDied, match="died mid-step"):
            trainer.run_epoch(_batches(16, 8))
        # every segment unlinked on the failure path
        assert _ddp_segments() == before
        # step 0 completed, the dying step 1 was never applied
        assert opt.t == 1
        trainer.close()  # idempotent after the failure cleanup

    def test_arena_untorn_at_last_completed_step(self):
        """After a crash at step 1, params/moments must equal a clean run
        truncated to 1 step — no partial update leaked into the arena."""
        X, y = _toy_data(n=16)
        reference = _Toy()
        ref_opt = FusedAdamW(reference, lr=1e-2)
        with DataParallelTrainer(
                ref_opt, _make_shard_backward(reference, X, y),
                n_examples=16, config=DDPConfig(n_workers=1, seed=5)) as ref:
            ref.run_epoch([np.arange(8)])  # exactly one step

        crashed = _Toy()
        opt = FusedAdamW(crashed, lr=1e-2)
        cfg = DDPConfig(n_workers=2, seed=5, die_at_step=1,
                        barrier_timeout_s=20.0)
        trainer = DataParallelTrainer(opt, _make_shard_backward(crashed, X, y),
                                      n_examples=16, config=cfg)
        with pytest.raises(WorkerDied):
            trainer.run_epoch(_batches(16, 8))
        np.testing.assert_array_equal(opt.arena.data, ref_opt.arena.data)
        np.testing.assert_array_equal(opt._m, ref_opt._m)
        np.testing.assert_array_equal(opt._v, ref_opt._v)
        # the model stays usable on private memory after the abort
        crashed.eval()
        out = crashed.forward(X[:4])
        assert out.shape == (4, 3) and np.isfinite(out).all()


class TestResume:
    """FusedAdamW.state_dict carries t + moments + arena bytes, so a
    resumed DDP run is bit-identical to an uninterrupted one."""

    def _half_runs(self, load_moments):
        X, y = _toy_data(n=32)
        batches = _batches(32, 8)

        uninterrupted = _Toy()
        opt_u = FusedAdamW(uninterrupted, lr=1e-2)
        with DataParallelTrainer(
                opt_u, _make_shard_backward(uninterrupted, X, y),
                n_examples=32, config=DDPConfig(n_workers=2, seed=9),
                grad_clip=1.0) as trainer:
            trainer.run_epoch(batches, epoch=0)
            trainer.run_epoch(batches, epoch=1)
            losses_u = list(trainer.step_losses)

        first = _Toy()
        opt_a = FusedAdamW(first, lr=1e-2)
        with DataParallelTrainer(
                opt_a, _make_shard_backward(first, X, y),
                n_examples=32, config=DDPConfig(n_workers=2, seed=9),
                grad_clip=1.0) as trainer:
            trainer.run_epoch(batches, epoch=0)
            losses_a = list(trainer.step_losses)
            checkpoint = opt_a.state_dict()

        resumed = _Toy(rng=99)  # cold weights: everything comes from state
        opt_b = FusedAdamW(resumed, lr=1e-2)
        if load_moments:
            opt_b.load_state_dict(checkpoint)
        else:
            # the pre-fix failure mode: params restored, moments dropped
            opt_b.arena.data[...] = checkpoint["data"]
        with DataParallelTrainer(
                opt_b, _make_shard_backward(resumed, X, y),
                n_examples=32, config=DDPConfig(n_workers=2, seed=9),
                grad_clip=1.0) as trainer:
            trainer.run_epoch(batches, epoch=1)
            losses_b = losses_a + list(trainer.step_losses)
        return losses_u, losses_b, opt_u, opt_b

    def test_resumed_run_matches_uninterrupted(self):
        losses_u, losses_b, opt_u, opt_b = self._half_runs(load_moments=True)
        assert losses_u == losses_b
        np.testing.assert_array_equal(opt_u.arena.data, opt_b.arena.data)
        np.testing.assert_array_equal(opt_u._m, opt_b._m)
        np.testing.assert_array_equal(opt_u._v, opt_b._v)
        assert opt_u.t == opt_b.t

    def test_resume_without_moments_diverges(self):
        """Negative control — and the regression this PR fixes: restoring
        arena bytes alone resets bias correction and momentum, so the
        trajectory provably departs from the uninterrupted run."""
        losses_u, losses_b, *_ = self._half_runs(load_moments=False)
        assert losses_u != losses_b


class TestValidationAndLifecycle:
    def test_bad_configs_rejected(self):
        X, y = _toy_data(n=8)
        model = _Toy()
        opt = FusedAdamW(model)
        sb = _make_shard_backward(model, X, y)
        with pytest.raises(ValueError, match="n_workers"):
            DataParallelTrainer(opt, sb, n_examples=8,
                                config=DDPConfig(n_workers=0))
        with pytest.raises(ValueError, match="grad_shards"):
            DataParallelTrainer(opt, sb, n_examples=8,
                                config=DDPConfig(n_workers=4, grad_shards=2))

    def test_run_after_close_rejected(self):
        X, y = _toy_data(n=8)
        model = _Toy()
        trainer = DataParallelTrainer(FusedAdamW(model),
                                      _make_shard_backward(model, X, y),
                                      n_examples=8)
        trainer.close()
        with pytest.raises(RuntimeError, match="closed"):
            trainer.run_epoch([np.arange(4)])
        trainer.close()  # idempotent

    def test_oversized_epoch_rejected(self):
        X, y = _toy_data(n=8)
        model = _Toy()
        with DataParallelTrainer(FusedAdamW(model),
                                 _make_shard_backward(model, X, y),
                                 n_examples=4) as trainer:
            with pytest.raises(ValueError, match="sized"):
                trainer.run_epoch([np.arange(8)])

    def test_empty_epoch_is_a_noop(self):
        X, y = _toy_data(n=8)
        model = _Toy()
        with DataParallelTrainer(FusedAdamW(model),
                                 _make_shard_backward(model, X, y),
                                 n_examples=8) as trainer:
            assert trainer.run_epoch([]) == 0.0
            assert trainer.counters["steps"] == 0

    def test_close_releases_segments_and_model_survives(self):
        X, y = _toy_data(n=8)
        model = _Toy()
        opt = FusedAdamW(model)
        before = _ddp_segments()
        trainer = DataParallelTrainer(opt, _make_shard_backward(model, X, y),
                                      n_examples=8,
                                      config=DDPConfig(n_workers=2))
        assert len(_ddp_segments()) == len(before) + 3
        trainer.run_epoch([np.arange(8)])
        expected = opt.arena.data.copy()
        trainer.close()
        assert _ddp_segments() == before
        # arena moved back to private memory with identical bytes
        np.testing.assert_array_equal(opt.arena.data, expected)
        model.eval()
        assert np.isfinite(model.forward(X[:2])).all()


class TestModelWiring:
    """`n_workers=` through the real training loops."""

    def _mlm_setup(self):
        vocab = Vocab.build([[f"t{i}" for i in range(20)]], min_freq=1)
        rng = np.random.default_rng(3)
        n, length = 23, 12
        ids = rng.integers(4, len(vocab), size=(n, length)).astype(np.int32)
        ids[:, 0] = vocab.cls_id
        mask = np.ones((n, length), dtype=np.float32)
        mask[5:, 9:] = 0.0
        cfg = EncoderConfig(vocab_size=len(vocab), d_model=16, n_heads=2,
                            n_layers=1, d_ff=32, max_len=length, dropout=0.1)
        return vocab, cfg, ids, mask

    def test_mlm_pretrainer_parity(self):
        vocab, cfg, ids, mask = self._mlm_setup()

        def run(n_workers):
            pre = MLMPretrainer(cfg, vocab, MLMConfig(batch_size=8), rng=11)
            losses = pre.fit(ids, mask, epochs=2, n_workers=n_workers)
            return losses, pre.ddp_stats, pre.encoder.state_dict()

        losses_1, stats_1, enc_1 = run(1)
        losses_2, stats_2, enc_2 = run(2)
        assert losses_1 == losses_2
        assert stats_1["step_losses"] == stats_2["step_losses"]
        assert stats_1["counters"]["reduce_ops"] == \
            stats_1["counters"]["steps"]
        for key in enc_1:
            np.testing.assert_array_equal(enc_1[key], enc_2[key], err_msg=key)

    def _split(self, n=23, length=12, vocab=20, seed=3):
        rng = np.random.default_rng(seed)
        ids = rng.integers(4, vocab, size=(n, length)).astype(np.int32)
        ids[:, 0] = 2
        mask = np.ones((n, length), dtype=np.float32)
        mask[5:, 9:] = 0.0
        labels = rng.integers(0, 2, size=n).astype(np.int64)
        return EncodedSplit(ids, mask, labels)

    def test_pragformer_parity_with_validation_and_warmup(self):
        cfg = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                               d_head_hidden=8, max_len=12, batch_size=8,
                               warmup_frac=0.1)

        def run(n_workers):
            model = PragFormer(20, cfg, rng=5)
            history = model.fit(self._split(), self._split(seed=4), epochs=2,
                                n_workers=n_workers)
            return history, model.encoder.state_dict(), model.head.state_dict()

        hist_1, enc_1, head_1 = run(1)
        hist_2, enc_2, head_2 = run(2)
        assert hist_1.train_loss == hist_2.train_loss
        assert hist_1.valid_loss == hist_2.valid_loss
        assert hist_1.valid_accuracy == hist_2.valid_accuracy
        for key in enc_1:
            np.testing.assert_array_equal(enc_1[key], enc_2[key], err_msg=key)
        for key in head_1:
            np.testing.assert_array_equal(head_1[key], head_2[key],
                                          err_msg=key)

    def test_pragformer_ddp_requires_fused_optimizer(self):
        cfg = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                               d_head_hidden=8, max_len=12, batch_size=8,
                               fused_optimizer=False)
        model = PragFormer(20, cfg, rng=5)
        with pytest.raises(ValueError, match="fused_optimizer"):
            model.fit(self._split(), epochs=1, n_workers=2)

    def test_cli_train_accepts_workers_flag(self):
        from unittest import mock

        from repro import cli

        captured = {}

        def fake_fn(args):
            captured.update(vars(args))
            return 0

        with mock.patch.object(cli, "_cmd_train", fake_fn):
            assert cli.main(["train", "--workers", "2"]) == 0
        assert captured["workers"] == 2
        captured.clear()
        with mock.patch.object(cli, "_cmd_train", fake_fn):
            assert cli.main(["train"]) == 0
        assert captured["workers"] == 0  # legacy loop by default
