"""The bench-regression gate: committed reports pass, regressions fail.

``scripts/bench_gate.py`` is CI's guard that the committed ``BENCH_*``
reports never regress on ratio/counter metrics.  Three properties matter:
the committed reports are green (otherwise CI is red at head), a doctored
regression *fails* (otherwise the gate is decorative), and a silently
missing metric fails too (otherwise deleting a bench section greens the
pipeline).  Wall-times must stay ungated — the bench host is a single
noisy core.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "scripts" / "bench_gate.py")
bench_gate = importlib.util.module_from_spec(spec)
# registered before exec: @dataclass resolves its module via sys.modules
sys.modules["bench_gate"] = bench_gate
spec.loader.exec_module(bench_gate)


@pytest.fixture(scope="module")
def committed():
    """The committed reports, loaded once."""
    return {
        key: json.loads(path.read_text())
        for key, path in bench_gate.DEFAULT_REPORTS.items()
    }


class TestCommittedReportsPass:
    def test_all_gates_green(self, committed):
        failures = bench_gate.check_gates(committed)
        assert not failures, failures

    def test_cli_exit_zero_on_committed(self, capsys):
        assert bench_gate.main([]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "gates green" in out

    def test_every_gate_metric_is_ratio_or_counter(self):
        """No gate may reference a wall-time: the bench host is a single
        noisy core, so only dimensionless ratios and invariant counters
        are stable enough to gate (everything *_s / *_per_s / *_ms is
        report-only by policy)."""
        for gate in bench_gate.GATES:
            leaf = gate.path.rsplit(".", 1)[-1]
            if "speedup" in leaf:  # a speedup is a ratio, whatever its unit
                continue
            assert not leaf.endswith(("_s", "_ms", "_per_s")), (
                f"gate on wall-clock metric: {gate.describe()}")


class TestDoctoredRegressionsFail:
    @pytest.mark.parametrize("path, bad_value", [
        ("engine_trace.speedup_vs_sequential", 0.5),
        ("clause_gating.verdict_mismatches", 3),
        ("reload_under_load.failed_requests", 2),
        ("reload_under_load.stale_predictions_after_swap", 1),
        ("canary_rollout.failed_requests", 7),
        ("canary_rollout.canary_arm_errors", 1),
        ("canary_rollout.stale_after_promote", 4),
        ("fault_injection.lost_requests", 64),
        ("fault_injection.answered_fraction", 0.9),
        ("fault_injection.restarts", 0),
        ("fault_injection.p99_vs_deadline", 20.0),
        ("fault_injection.admission.unanswered", 3),
        ("fault_injection.admission.shed_429", 0),
        ("ipc.parity_mismatches", 12),
        ("ipc.shm_vs_queue_2shards", 0.2),
        ("ipc.shm_2shard_scaling", 0.1),
        ("ipc.crossover_shards", 4),
        ("weight_sharing.sublinearity_ratio_8", 1.0),   # one copy per shard
        ("weight_sharing.sharing_factor_8", 1.0),       # pages not shared
        ("weight_sharing.reload_parity_mismatches", 5),
        ("weight_sharing.stale_hits_after_swap", 2),
        ("weight_sharing.canary_flip.stale_after_promote", 3),
        ("weight_sharing.leaked_segments_after_faults", 1),
    ])
    def test_doctored_serving_metric_fails(self, committed, path, bad_value):
        doctored = copy.deepcopy(committed)
        node = doctored["serving"]
        *parents, leaf = path.split(".")
        for part in parents:
            node = node[part]
        node[leaf] = bad_value
        failures = bench_gate.check_gates(doctored)
        assert any(path in failure for failure in failures), (
            f"doctoring {path}={bad_value} must fail the gate")

    @pytest.mark.parametrize("path, bad_value", [
        ("ddp.parity_mismatches", 1),       # bit-identity broken
        ("ddp.reduce_ops_per_step", 8),     # per-shard reduces crept back
        ("ddp.workers_2.counter_speedup", 1.0),  # work split collapsed
    ])
    def test_doctored_ddp_metric_fails(self, committed, path, bad_value):
        doctored = copy.deepcopy(committed)
        node = doctored["training"]
        *parents, leaf = path.split(".")
        for part in parents:
            node = node[part]
        node[leaf] = bad_value
        failures = bench_gate.check_gates(doctored)
        assert any(path in failure for failure in failures), (
            f"doctoring {path}={bad_value} must fail the gate")

    def test_doctored_training_speedup_fails(self, committed):
        doctored = copy.deepcopy(committed)
        doctored["training"]["pretrain"]["speedup_steps_per_s"] = 1.1
        failures = bench_gate.check_gates(doctored)
        assert any("pretrain.speedup_steps_per_s" in f for f in failures)

    def test_missing_section_fails(self, committed):
        """Deleting a bench section must not green the gate."""
        doctored = copy.deepcopy(committed)
        del doctored["serving"]["canary_rollout"]
        failures = bench_gate.check_gates(doctored)
        assert any("canary_rollout" in f and "missing" in f
                   for f in failures)

    def test_missing_report_fails(self, committed):
        failures = bench_gate.check_gates({"serving": committed["serving"]})
        assert any("training" in f and "not loaded" in f for f in failures)

    def test_cli_exit_nonzero_on_doctored_file(self, committed, tmp_path,
                                               capsys):
        doctored = copy.deepcopy(committed["serving"])
        doctored["reload_under_load"]["failed_requests"] = 9
        bad = tmp_path / "BENCH_serving.json"
        bad.write_text(json.dumps(doctored))
        assert bench_gate.main(["--serving", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "failed_requests" in out


class TestLookup:
    def test_dotted_paths(self):
        report = {"a": {"b": {"c": 3}}, "x": 1}
        assert bench_gate.lookup(report, "a.b.c") == 3
        assert bench_gate.lookup(report, "x") == 1
        assert bench_gate.lookup(report, "a.nope") is None
        assert bench_gate.lookup(report, "a.b.c.d") is None
