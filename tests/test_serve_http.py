"""Round-trip tests for the stdlib HTTP advisor front-end."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import ModelRegistry, MultiModelEngine, make_server
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
]


@pytest.fixture(scope="module")
def server_url():
    vocab = Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)
    registry = ModelRegistry()
    for name in ("directive", "private", "reduction"):
        registry.register(name, PragFormer(len(vocab), TINY), vocab,
                          max_len=TINY.max_len)
    advisor = MultiModelEngine(registry)
    server = make_server(advisor, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    advisor.close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(url, payload):
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz_lists_heads(self, server_url):
        status, body = _get(server_url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["heads"] == ["directive", "private", "reduction"]

    def test_advise_single(self, server_url):
        status, body = _post(server_url + "/advise", {"code": SNIPPETS[0]})
        assert status == 200
        assert isinstance(body["needs_directive"], bool)
        assert 0.0 <= body["p_directive"] <= 1.0
        assert set(body["clauses"]) == {"private", "reduction"}
        for clause in body["clauses"].values():
            assert 0.0 <= clause["probability"] <= 1.0
            assert isinstance(clause["suggested"], bool)

    def test_advise_batch_codes_form(self, server_url):
        status, body = _post(server_url + "/advise/batch",
                             {"codes": SNIPPETS})
        assert status == 200
        assert [r["id"] for r in body["results"]] == [0, 1, 2]
        single = _post(server_url + "/advise", {"code": SNIPPETS[1]})[1]
        assert body["results"][1]["p_directive"] == single["p_directive"]

    def test_advise_batch_requests_form(self, server_url):
        status, body = _post(server_url + "/advise/batch", {"requests": [
            {"id": "loop-a", "code": SNIPPETS[0]},
            {"id": "loop-b", "code": SNIPPETS[2]},
        ]})
        assert status == 200
        assert [r["id"] for r in body["results"]] == ["loop-a", "loop-b"]

    def test_stats_reports_cache_and_batch_metrics(self, server_url):
        # repeat a snippet so the prediction LRU provably hits
        _post(server_url + "/advise", {"code": SNIPPETS[0]})
        _post(server_url + "/advise", {"code": SNIPPETS[0]})
        status, body = _get(server_url + "/stats")
        assert status == 200
        assert body["http"]["advise"] >= 2
        combined = body["engine"]["combined"]
        assert combined["requests"] > 0
        assert combined["cache_hits"] > 0
        assert combined["batches"] > 0
        assert sum(combined["batch_size_hist"].values()) == combined["batches"]


class TestConcurrentMicroBatching:
    def test_concurrent_advise_coalesces_into_shared_batches(self):
        """N handler threads hitting POST /advise simultaneously must ride
        the engines' async submit() queues and share forward passes —
        the pre-overhaul behaviour was one batch-of-1 forward per request.
        """
        from repro.serve import EngineConfig

        n_clients = 8
        codes = [f"for (i = 0; i < n; i++) a{k}[i] = b{k}[i] * {k};"
                 for k in range(n_clients)]
        vocab = Vocab.build([text_tokens(code) for code in codes], min_freq=1)
        registry = ModelRegistry()
        for name in ("directive", "private"):
            registry.register(name, PragFormer(len(vocab), TINY), vocab,
                              max_len=TINY.max_len)
        # a generous flush window so requests posted together provably land
        # in one micro-batch (cache disabled: every request must hit the
        # model for the batch accounting to be observable)
        advisor = MultiModelEngine(registry, config=EngineConfig(
            flush_interval=0.25, cache_capacity=0))
        server = make_server(advisor, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}/advise"
        barrier = threading.Barrier(n_clients)
        results, errors = [None] * n_clients, []

        def client(i):
            try:
                barrier.wait(timeout=10)
                results[i] = _post(url, {"code": codes[i]})
            except Exception as exc:  # noqa: BLE001 — surface in main thread
                errors.append(exc)

        try:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            for status, body in results:
                assert status == 200
                assert set(body["clauses"]) == {"private"}
            stats = advisor.stats()["heads"]["directive"]
            assert stats["requests"] == n_clients
            # coalesced: strictly fewer forward batches than requests, and
            # at least one batch carried multiple snippets (histogram keys
            # are batch_hist_bucket labels: "1", "2", "3-4", ...)
            assert stats["batches"] < n_clients
            assert any(size != "1" and count > 0
                       for size, count in stats["batch_size_hist"].items())
        finally:
            server.shutdown()
            server.server_close()
            advisor.close()
            thread.join(timeout=5)


class TestReloadEndpoint:
    """POST /reload: hot checkpoint swap through the HTTP front door."""

    @pytest.fixture()
    def reload_setup(self, tmp_path):
        vocab = Vocab.build([text_tokens(code) for code in SNIPPETS],
                            min_freq=1)

        def registry(seed0):
            reg = ModelRegistry()
            for k, name in enumerate(("directive", "private")):
                reg.register(name, PragFormer(len(vocab), TINY, rng=seed0 + k),
                             vocab, max_len=TINY.max_len)
            return reg

        ckpt_a, ckpt_b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
        registry(0).save(ckpt_a)
        registry(50).save(ckpt_b)
        advisor = MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_a))
        server = make_server(advisor, port=0, reload_dir=str(ckpt_a))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", advisor, ckpt_b
        server.shutdown()
        server.server_close()
        advisor.close()
        thread.join(timeout=5)

    def test_reload_with_explicit_path(self, reload_setup):
        url, advisor, ckpt_b = reload_setup
        before = _post(url + "/advise", {"code": SNIPPETS[0]})[1]
        status, body = _post(url + "/reload", {"path": str(ckpt_b)})
        assert status == 200
        assert body["status"] == "reloaded"
        assert body["model_version"] == f"v1:{ckpt_b.name}"
        after = _post(url + "/advise", {"code": SNIPPETS[0]})[1]
        assert after["p_directive"] != before["p_directive"]
        # /stats must reflect the swap so operators can verify it happened
        stats = _get(url + "/stats")[1]
        assert stats["engine"]["model_version"] == body["model_version"]
        assert stats["engine"]["reloads"] == 1
        assert stats["http"]["reload"] == 1

    def test_reload_empty_body_uses_server_default(self, reload_setup):
        url, advisor, _ = reload_setup
        req = urllib.request.Request(url + "/reload", method="POST")
        with urllib.request.urlopen(req, timeout=10) as resp:
            body = json.loads(resp.read().decode("utf-8"))
        assert body["status"] == "reloaded"
        assert body["model_version"].endswith("ckpt_a")

    def test_reload_bad_checkpoint_500_keeps_serving(self, reload_setup):
        url, advisor, _ = reload_setup
        version = advisor.model_version
        req = urllib.request.Request(
            url + "/reload",
            data=json.dumps({"path": "/nonexistent/ckpt"}).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 500
        assert advisor.model_version == version
        assert _post(url + "/advise", {"code": SNIPPETS[0]})[0] == 200

    def test_reload_unsupported_advisor_501(self):
        class Plain:
            """Advisor without a reload surface."""

            def advise_full_many(self, codes):
                raise NotImplementedError

            def stats(self):
                return {}

        server = make_server(Plain(), port=0, reload_dir="somewhere")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            req = urllib.request.Request(f"http://{host}:{port}/reload",
                                         method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 501
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_reload_no_path_no_default_400(self, tmp_path):
        vocab = Vocab.build([text_tokens(SNIPPETS[0])], min_freq=1)
        registry = ModelRegistry()
        registry.register("directive", PragFormer(len(vocab), TINY), vocab,
                          max_len=TINY.max_len)
        advisor = MultiModelEngine(registry)
        server = make_server(advisor, port=0)  # no reload_dir
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            req = urllib.request.Request(f"http://{host}:{port}/reload",
                                         method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
            advisor.close()
            thread.join(timeout=5)


class TestErrorHandling:
    def _post_error(self, url, data):
        req = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        return err.value.code, json.loads(err.value.read().decode("utf-8"))

    def test_unknown_path_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server_url + "/nope", timeout=10)
        assert err.value.code == 404

    def test_invalid_json_400(self, server_url):
        code, body = self._post_error(server_url + "/advise", b"not json")
        assert code == 400
        assert "invalid JSON" in body["error"]

    def test_missing_code_field_400(self, server_url):
        code, body = self._post_error(server_url + "/advise",
                                      json.dumps({"snippet": "x"}).encode())
        assert code == 400
        assert "code" in body["error"]

    def test_bad_batch_structure_400(self, server_url):
        """Body-structure problems still reject the whole batch."""
        code, _ = self._post_error(server_url + "/advise/batch",
                                   json.dumps({"codes": "x"}).encode())
        assert code == 400
        code, _ = self._post_error(server_url + "/advise/batch",
                                   json.dumps({"requests": ["x"]}).encode())
        assert code == 400

    def test_empty_code_rejected_on_advise(self, server_url):
        code, _ = self._post_error(server_url + "/advise",
                                   json.dumps({"code": "  "}).encode())
        assert code == 400

    def test_batch_reports_bad_items_per_item(self, server_url):
        """One dirty snippet gets an {"id","error"} entry; the rest of
        the batch is still answered — a 200, not a batch-wide 400."""
        status, body = _post(server_url + "/advise/batch", {"requests": [
            {"id": "ok", "code": "for (i = 0; i < n; i++) a[i] = i;"},
            {"id": "empty", "code": " "},
            {"id": "notstr", "code": 7},
        ]})
        assert status == 200
        results = body["results"]
        assert [r["id"] for r in results] == ["ok", "empty", "notstr"]
        assert "p_directive" in results[0] and "error" not in results[0]
        assert "error" in results[1] and "error" in results[2]
        # codes form: non-strings and empties also answer per item
        status, body = _post(server_url + "/advise/batch",
                             {"codes": [1, "int x = 1;"]})
        assert status == 200
        assert "error" in body["results"][0]
        assert "p_directive" in body["results"][1]

    def test_non_utf8_body_handled(self, server_url):
        """Bad bytes inside a JSON string are replaced and served; bad
        bytes that corrupt the framing answer a structured 400.  Both
        tick the invalid_body admission counter."""
        import urllib.request

        # \xff inside the string value: replace-decode keeps valid JSON
        dirty = b'{"code": "int x = 1; // \xff\xfe"}'
        req = urllib.request.Request(
            server_url + "/advise", data=dirty,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.status == 200
        # \xff replacing the opening brace: not salvageable
        code, body = self._post_error(server_url + "/advise",
                                      b'\xff"code": "int x = 1;"}')
        assert code == 400
        assert "UTF-8" in body["error"]
        with urllib.request.urlopen(server_url + "/stats",
                                    timeout=10) as resp:
            stats = json.loads(resp.read().decode("utf-8"))
        assert stats["admission"]["invalid_body"] >= 2

    def test_oversized_body_413_closes_connection(self, server_url):
        """The 413 path answers from the Content-Length header alone and
        must tell the client the connection is done (the unread body would
        otherwise be parsed as the next request)."""
        import http.client

        from repro.serve.http_api import MAX_BODY_BYTES

        host, port = server_url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/advise")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 413
            body = json.loads(resp.read().decode("utf-8"))
            assert "exceeds" in body["error"]
            assert resp.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_healthz_unhealthy_when_workers_dead(self):
        """A sharded advisor whose workers all crashed must fail the
        liveness probe, not answer 200 with an empty head list."""
        from repro.serve import ShardedEngine

        def crashing_factory():
            raise RuntimeError("no model for you")

        advisor = ShardedEngine(crashing_factory, n_shards=2)
        server = make_server(advisor, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{host}:{port}/healthz",
                                       timeout=30)
            assert err.value.code == 503
            body = json.loads(err.value.read().decode("utf-8"))
            assert body["status"] == "unhealthy"
        finally:
            server.shutdown()
            server.server_close()
            advisor.close()
            thread.join(timeout=5)

    def test_server_survives_errors(self, server_url):
        status, _ = _post(server_url + "/advise", {"code": SNIPPETS[0]})
        assert status == 200


class TestCanaryEndpoints:
    """POST /canary + /canary/promote + /canary/rollback lifecycle."""

    @pytest.fixture()
    def canary_setup(self, tmp_path):
        vocab = Vocab.build([text_tokens(code) for code in SNIPPETS],
                            min_freq=1)

        def registry(seed0):
            reg = ModelRegistry()
            for k, name in enumerate(("directive", "private")):
                reg.register(name, PragFormer(len(vocab), TINY, rng=seed0 + k),
                             vocab, max_len=TINY.max_len)
            return reg

        ckpt_a, ckpt_b = tmp_path / "ckpt_a", tmp_path / "ckpt_b"
        registry(0).save(ckpt_a)
        registry(50).save(ckpt_b)
        advisor = MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_a))
        server = make_server(advisor, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", advisor, ckpt_b
        server.shutdown()
        server.server_close()
        advisor.close()
        thread.join(timeout=5)

    def _post_status(self, url, payload=None):
        """POST returning (status, body) without raising on 4xx/5xx."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        req = urllib.request.Request(url, data=body)
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8"))

    def test_full_lifecycle_start_stats_promote(self, canary_setup):
        url, advisor, ckpt_b = canary_setup
        status, body = self._post_status(
            url + "/canary", {"path": str(ckpt_b), "fraction": 0.5})
        assert status == 200
        assert body["status"] == "canary-started"
        assert body["fraction"] == 0.5
        version = body["version"]
        # per-arm counters are live in /stats while the rollout runs
        self._post_status(url + "/advise", {"code": SNIPPETS[0]})
        stats = _get(url + "/stats")[1]
        assert stats["engine"]["canary"]["version"] == version
        assert set(stats["engine"]["canary"]["arms"]) == {"primary", "canary"}
        status, body = self._post_status(url + "/canary/promote")
        assert status == 200
        assert body == {"status": "promoted", "model_version": version}
        stats = _get(url + "/stats")[1]
        assert stats["engine"]["model_version"] == version
        assert stats["engine"]["canary"] is None
        assert stats["engine"]["last_canary"]["outcome"] == "promoted"
        assert stats["http"]["canary"] == 1
        assert stats["http"]["canary_promote"] == 1

    def test_rollback_and_conflict_statuses(self, canary_setup):
        url, advisor, ckpt_b = canary_setup
        # finishing with no canary active is a 409, not a 500
        assert self._post_status(url + "/canary/promote")[0] == 409
        assert self._post_status(url + "/canary/rollback")[0] == 409
        assert self._post_status(
            url + "/canary", {"path": str(ckpt_b)})[0] == 200
        # a second rollout while one is active is a 409 too
        assert self._post_status(
            url + "/canary", {"path": str(ckpt_b)})[0] == 409
        status, body = self._post_status(url + "/canary/rollback")
        assert status == 200 and body == {"status": "rolled-back"}
        assert _get(url + "/stats")[1]["engine"]["model_version"] == "0"

    def test_bad_requests(self, canary_setup):
        url, advisor, ckpt_b = canary_setup
        # missing path, bad fraction, bad checkpoint
        assert self._post_status(url + "/canary", {})[0] == 400
        assert self._post_status(
            url + "/canary", {"path": str(ckpt_b), "fraction": 0})[0] == 400
        assert self._post_status(
            url + "/canary", {"path": str(ckpt_b), "fraction": "lots"})[0] == 400
        status, body = self._post_status(
            url + "/canary", {"path": str(ckpt_b / "nope")})
        assert status == 500
        # primary untouched after the failed start
        assert _get(url + "/healthz")[0] == 200
        assert _get(url + "/stats")[1]["engine"]["canary"] is None

    def test_advisor_without_canary_surface_501(self):
        class Plain:
            def advise_full_many(self, codes):
                raise NotImplementedError

            def stats(self):
                return {}

        server = make_server(Plain(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            assert self._post_status(
                url + "/canary", {"path": "x"})[0] == 501
            assert self._post_status(url + "/canary/promote")[0] == 501
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
