"""Tests for the future-work extensions: directive generation, the hybrid
model+S2S advisor, and attention introspection."""

import pytest

from repro.clang.pragma import parse_pragma
from repro.explain import attention_by_token_class, cls_attention
from repro.models import DirectiveGenerator, HybridAdvisor, PragFormerConfig
from repro.pipeline import ScaleConfig
from repro.pipeline.context import get_context

TINY = ScaleConfig(
    name="tiny-ext",
    corpus_records=260,
    epochs=3,
    mlm_epochs=1,
    pragformer=PragFormerConfig(d_model=32, n_heads=2, n_layers=1, d_ff=64,
                                d_head_hidden=32, batch_size=32, seed=0),
)


@pytest.fixture(scope="module")
def ctx():
    return get_context(TINY)


@pytest.fixture(scope="module")
def generator(ctx):
    enc = ctx.encoded()
    return DirectiveGenerator(
        ctx.pragformer, enc.vocab,
        private_model=ctx.clause_model("private"),
        private_vocab=ctx.clause_encoded("private").vocab,
        reduction_model=ctx.clause_model("reduction"),
        reduction_vocab=ctx.clause_encoded("reduction").vocab,
        max_len=TINY.pragformer.max_len,
    )


class TestDirectiveGenerator:
    def test_generated_directive_parses(self, generator):
        out = generator.generate("for (i = 0; i < n; i++) s += a[i] * b[i];")
        if out.directive is not None:
            omp = parse_pragma(out.directive)
            assert omp.is_parallel_for

    def test_reduction_variable_filled_from_analysis(self, generator):
        out = generator.generate("for (i = 0; i < n; i++) acc += vals[i];")
        assert out.reduction_specs == (("+", "acc"),)
        if out.directive and out.p_reduction and out.p_reduction > 0.5:
            assert "reduction(+:acc)" in out.directive

    def test_private_variables_from_analysis(self, generator):
        code = ("for (i = 0; i < n; i++)\n"
                "  for (j = 0; j < m; j++)\n"
                "    c[i][j] = a[i][j] + b[i][j];")
        out = generator.generate(code)
        assert "j" in out.private_vars

    def test_negative_prediction_returns_none(self, generator):
        # I/O loop: the directive model should say no
        out = generator.generate(
            'for (i = 0; i < n; i++) fprintf(stderr, "%d", x[i]);')
        if out.p_directive <= 0.5:
            assert out.directive is None

    def test_probability_fields_populated(self, generator):
        out = generator.generate("for (i = 0; i < n; i++) y[i] = x[i];")
        assert 0.0 <= out.p_directive <= 1.0


class TestHybridAdvisor:
    def test_agreement_never_exceeds_either_positive_set(self, ctx):
        enc = ctx.encoded()
        codes = [e.record.code for e in ctx.directive_splits.test]
        hybrid = HybridAdvisor(ctx.pragformer, ctx.compar)
        agree = hybrid.predict(enc.test, codes, policy="agreement")
        model_pos = ctx.pragformer.predict(enc.test)
        s2s_pos, _ = ctx.compar.predict_directive(codes)
        assert (agree <= model_pos).all()
        assert (agree <= s2s_pos).all()

    def test_agreement_tradeoff_structure(self, ctx):
        enc = ctx.encoded()
        codes = [e.record.code for e in ctx.directive_splits.test]
        hybrid = HybridAdvisor(ctx.pragformer, ctx.compar)
        table = hybrid.precision_recall_tradeoff(enc.test, codes)
        assert set(table) == {"pragformer", "compar", "agreement", "model_veto"}
        # agreement costs recall relative to both components (subset of each)
        assert table["agreement"]["recall"] <= table["pragformer"]["recall"] + 1e-9
        assert table["agreement"]["recall"] <= table["compar"]["recall"] + 1e-9
        # when agreement produces any positives, its precision is competitive
        # with the weaker component (§2.1's verification argument); at tiny
        # scale the intersection may be empty, which is fine
        if table["agreement"]["precision"] > 0:
            assert table["agreement"]["precision"] >= min(
                table["pragformer"]["precision"], table["compar"]["precision"]) - 0.05

    def test_unknown_policy_raises(self, ctx):
        enc = ctx.encoded()
        codes = [e.record.code for e in ctx.directive_splits.test]
        hybrid = HybridAdvisor(ctx.pragformer, ctx.compar)
        with pytest.raises(ValueError):
            hybrid.predict(enc.test, codes, policy="bogus")

    def test_misaligned_inputs_raise(self, ctx):
        enc = ctx.encoded()
        hybrid = HybridAdvisor(ctx.pragformer, ctx.compar)
        with pytest.raises(ValueError):
            hybrid.predict(enc.test, ["one code"], policy="agreement")


class TestAttention:
    def test_cls_attention_covers_tokens(self, ctx):
        enc = ctx.encoded()
        pairs = cls_attention(ctx.pragformer, enc.vocab,
                              "for (i = 0; i < n; i++) a[i] = i;",
                              max_len=TINY.pragformer.max_len)
        tokens = [t for t, _ in pairs]
        assert tokens[0] == "for"
        assert all(att >= 0 for _, att in pairs)
        assert sum(att for _, att in pairs) <= 1.0 + 1e-6

    def test_attention_by_class_keys(self, ctx):
        enc = ctx.encoded()
        codes = [e.record.code for e in ctx.directive_splits.test[:8]]
        by_class = attention_by_token_class(ctx.pragformer, enc.vocab, codes,
                                            max_len=TINY.pragformer.max_len)
        assert "identifier" in by_class
        assert all(v >= 0 for v in by_class.values())
