"""Tests for AdamW, gradient clipping, schedules, and Module plumbing."""

import numpy as np
import pytest

from repro.nn import AdamW, Linear, Module, Parameter, WarmupSchedule, clip_grad_norm
from repro.nn.layers import Dropout


class Quadratic(Module):
    """f(w) = ||w - target||^2, for optimizer convergence tests."""

    def __init__(self, target):
        super().__init__()
        self.w = Parameter(np.zeros_like(target))
        self.target = target

    def loss_and_grad(self):
        diff = self.w.data - self.target
        self.w.grad[...] = 2 * diff
        return float((diff * diff).sum())


class TestAdamW:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        model = Quadratic(target)
        opt = AdamW(model, lr=0.1, weight_decay=0.0)
        for _ in range(300):
            opt.zero_grad()
            model.loss_and_grad()
            opt.step()
        np.testing.assert_allclose(model.w.data, target, atol=1e-3)

    def test_weight_decay_shrinks_matrices_only(self):
        layer = Linear(3, 3, rng=0)
        opt = AdamW(layer, lr=0.0, weight_decay=0.1)
        w_before = layer.W.data.copy()
        b_before = layer.b.data.copy()
        opt.step()
        # lr=0 means the Adam step is zero, but decay uses lr too -> no change
        np.testing.assert_array_equal(layer.W.data, w_before)
        opt2 = AdamW(layer, lr=0.01, weight_decay=0.5)
        layer.W.grad[...] = 0.0
        layer.b.grad[...] = 0.0
        opt2.step()
        assert (np.abs(layer.W.data) < np.abs(w_before)).all()
        np.testing.assert_array_equal(layer.b.data, b_before)  # bias not decayed

    def test_step_is_deterministic(self):
        def run():
            layer = Linear(4, 4, rng=5)
            opt = AdamW(layer, lr=1e-3)
            for _ in range(5):
                opt.zero_grad()
                out = layer.forward(np.ones((2, 4)))
                layer.backward(np.ones_like(out))
                opt.step()
            return layer.W.data.copy()

        np.testing.assert_array_equal(run(), run())


class TestClipGradNorm:
    def test_noop_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad[...] = np.array([0.3, 0.0, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], 1.0)
        assert abs(norm - 0.5) < 1e-12
        np.testing.assert_allclose(p.grad, [0.3, 0.0, 0.4])

    def test_scales_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], 1.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, atol=1e-9)


class TestWarmupSchedule:
    def test_linear_warmup(self):
        layer = Linear(2, 2, rng=0)
        opt = AdamW(layer, lr=0.0)
        sched = WarmupSchedule(opt, peak_lr=1.0, warmup_steps=10)
        lrs = [sched.step() for _ in range(10)]
        np.testing.assert_allclose(lrs, np.linspace(0.1, 1.0, 10))

    def test_decay_to_zero(self):
        layer = Linear(2, 2, rng=0)
        opt = AdamW(layer, lr=0.0)
        sched = WarmupSchedule(opt, peak_lr=1.0, warmup_steps=2, total_steps=10)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.0)


class TestModulePlumbing:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, rng=0)
                self.blocks = [Linear(3, 3, rng=1), Linear(3, 2, rng=2)]

        names = [n for n, _ in Net().named_parameters()]
        assert "a.W" in names and "blocks.0.W" in names and "blocks.1.b" in names

    def test_state_dict_roundtrip(self):
        l1, l2 = Linear(3, 4, rng=1), Linear(3, 4, rng=2)
        assert not np.array_equal(l1.W.data, l2.W.data)
        l2.load_state_dict(l1.state_dict())
        np.testing.assert_array_equal(l1.W.data, l2.W.data)

    def test_state_dict_mismatch_raises(self):
        with pytest.raises(KeyError):
            Linear(2, 2, rng=0).load_state_dict({"bogus": np.zeros(2)})

    def test_save_load_file(self, tmp_path):
        l1, l2 = Linear(3, 3, rng=1), Linear(3, 3, rng=2)
        path = str(tmp_path / "weights.npz")
        l1.save(path)
        l2.load(path)
        np.testing.assert_array_equal(l1.W.data, l2.W.data)

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng=0)
                self.inner = [Dropout(0.5, rng=1)]

        net = Net().eval()
        assert not net.drop.training
        assert not net.inner[0].training
        net.train()
        assert net.drop.training

    def test_dropout_eval_is_identity(self):
        d = Dropout(0.9, rng=0).eval()
        x = np.ones((4, 4))
        np.testing.assert_array_equal(d.forward(x), x)

    def test_dropout_train_scales(self):
        d = Dropout(0.5, rng=0)
        x = np.ones((2000,))
        out = d.forward(x)
        # inverted dropout keeps the expectation
        assert abs(out.mean() - 1.0) < 0.1
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_invalid_dropout_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_num_parameters(self):
        layer = Linear(3, 4, rng=0)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        out = layer.forward(np.ones((1, 2)))
        layer.backward(np.ones_like(out))
        assert np.abs(layer.W.grad).sum() > 0
        layer.zero_grad()
        assert (layer.W.grad == 0).all()
