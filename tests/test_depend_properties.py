"""Property-based soundness tests: the dependence analyzer's verdicts versus
the corpus generators' ground truth.

The generators are the data-generating process — each family is
parallelizable or not *by construction* — so they double as an oracle for
the analyzer:

* **soundness on negatives**: no analyzer policy may declare a
  carried-dependence family parallelizable (that would be a miscompile);
* **completeness on call-free positives**: a permissive policy must accept
  positive-family snippets that contain no function calls (calls are where
  policies legitimately diverge).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import Call, For, parse, walk
from repro.clang.nodes import FuncDef
from repro.corpus.generators import (
    gen_anti_dep,
    gen_back_subst,
    gen_char_state,
    gen_dot_product,
    gen_elementwise,
    gen_gauss_elim,
    gen_indirect_write,
    gen_init_1d,
    gen_matmul,
    gen_minmax,
    gen_multi_array,
    gen_nested_2d,
    gen_prefix_sum,
    gen_recurrence,
    gen_reduction_2d,
    gen_reduction_sum,
    gen_running_stat,
    gen_scalar_carried,
    gen_stencil,
    gen_stencil_1d,
    gen_wavefront,
)
from repro.s2s.depend import AnalysisPolicy, analyze_loop

PERMISSIVE = AnalysisPolicy(unknown_call="pure", private_iteration_var=False)
CONSERVATIVE = AnalysisPolicy(unknown_call="conservative")

CARRIED_FAMILIES = [
    gen_recurrence, gen_prefix_sum, gen_anti_dep, gen_scalar_carried,
    gen_running_stat, gen_char_state, gen_indirect_write,
    gen_gauss_elim, gen_back_subst, gen_wavefront, gen_minmax,
]

CALLFREE_POSITIVE_FAMILIES = [
    gen_init_1d, gen_elementwise, gen_nested_2d, gen_matmul, gen_stencil,
    gen_stencil_1d, gen_reduction_sum, gen_dot_product, gen_reduction_2d,
    gen_multi_array,
]


def _analyze(code, policy):
    ast = parse(code)
    loop = next(n for n in walk(ast) if isinstance(n, For))
    funcdefs = {n.name: n for n in walk(ast) if isinstance(n, FuncDef)}
    return analyze_loop(loop, funcdefs, policy)


class TestSoundness:
    @pytest.mark.parametrize("gen", CARRIED_FAMILIES)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_carried_families_never_parallelized(self, gen, seed):
        """Even the most permissive policy must reject carried dependences —
        anything else would be a miscompile in a real S2S compiler."""
        snippet = gen(np.random.default_rng(seed))
        analysis = _analyze(snippet.code, PERMISSIVE)
        assert not analysis.parallelizable, snippet.code


class TestCompleteness:
    @pytest.mark.parametrize("gen", CALLFREE_POSITIVE_FAMILIES)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_callfree_positives_accepted(self, gen, seed):
        """Positive families without calls are dependence-clean by
        construction; the analyzer must agree."""
        snippet = gen(np.random.default_rng(seed))
        ast = parse(snippet.code)
        has_calls = any(isinstance(n, Call) for n in walk(ast))
        if has_calls:  # sqrt/fabs variants of elementwise
            return
        analysis = _analyze(snippet.code, CONSERVATIVE)
        assert analysis.parallelizable, (snippet.code, analysis.reasons)


class TestClauseAgreement:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_reduction_families_yield_reduction_clause(self, seed):
        snippet = gen_reduction_sum(np.random.default_rng(seed))
        analysis = _analyze(snippet.code, CONSERVATIVE)
        assert analysis.parallelizable
        assert len(analysis.reductions) == 1
        # the analyzer's clause matches the generator's ground-truth label
        from repro.clang.pragma import parse_pragma

        truth = parse_pragma(snippet.directive).reduction_specs
        assert analysis.reductions[0] == truth[0]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_nested_families_yield_private_inner_var(self, seed):
        snippet = gen_nested_2d(np.random.default_rng(seed))
        analysis = _analyze(snippet.code, PERMISSIVE)
        assert analysis.parallelizable
        from repro.clang.pragma import parse_pragma

        truth = set(parse_pragma(snippet.directive).private_vars)
        assert truth <= set(analysis.private)
