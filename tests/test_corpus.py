"""Tests for the Open-OMP corpus substrate: generators, criteria, dedup,
records, and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import For, parse, walk
from repro.clang.pragma import parse_pragma
from repro.corpus import (
    CorpusConfig,
    NEGATIVE_FAMILIES,
    POSITIVE_FAMILIES,
    build_corpus,
    directive_stats,
    domain_distribution,
    length_histogram,
    load_records,
    sample_excluded_snippet,
    sample_snippet,
    save_records,
)
from repro.corpus.builder import _passes_criteria, _structural_hash
from repro.corpus.naming import NamePool
from repro.corpus.records import Record, Snippet


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus(CorpusConfig(n_records=400, seed=7))


class TestGenerators:
    @pytest.mark.parametrize("_, gen", POSITIVE_FAMILIES)
    def test_positive_families_parse_and_have_directive(self, _, gen):
        rng = np.random.default_rng(3)
        for _round in range(5):
            snip = gen(rng)
            assert snip.directive is not None
            omp = parse_pragma(snip.directive)
            assert omp.is_parallel_for
            ast = parse(snip.code)
            assert any(isinstance(n, For) for n in walk(ast))

    @pytest.mark.parametrize("_, gen", NEGATIVE_FAMILIES)
    def test_negative_families_parse_without_directive(self, _, gen):
        rng = np.random.default_rng(4)
        for _round in range(5):
            snip = gen(rng)
            assert snip.directive is None
            parse(snip.code)  # must not raise

    def test_sample_snippet_respects_positive_flag(self):
        rng = np.random.default_rng(0)
        assert sample_snippet(rng, positive=True).directive is not None
        assert sample_snippet(rng, positive=False).directive is None

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_any_seed_parses(self, seed):
        rng = np.random.default_rng(seed)
        snip = sample_snippet(rng, positive=bool(seed % 2))
        parse(snip.code)

    def test_generators_deterministic_for_seed(self):
        a = sample_snippet(np.random.default_rng(42), True)
        b = sample_snippet(np.random.default_rng(42), True)
        assert a == b


class TestNamePool:
    def test_no_collisions(self):
        pool = NamePool(np.random.default_rng(0))
        names = [pool.array() for _ in range(40)] + [pool.scalar() for _ in range(30)]
        assert len(names) == len(set(names))

    def test_iter_vars_conventional(self):
        pool = NamePool(np.random.default_rng(0))
        for _ in range(5):
            assert pool.iter_var().isidentifier()

    def test_idiosyncratic_fraction(self):
        pool = NamePool(np.random.default_rng(0), idiosyncratic=1.0)
        name = pool.array()
        # idiosyncratic names are multi-character camel/underscore compounds
        assert len(name) > 3


class TestCriteria:
    def test_excluded_snippets_rejected(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            snip = sample_excluded_snippet(rng)
            assert _passes_criteria(snip) is None

    def test_empty_annotated_loop_rejected(self):
        snip = Snippet("for (i = 0; i < n; i++);", "#pragma omp parallel for", "x")
        assert _passes_criteria(snip) is None

    def test_empty_unannotated_loop_needs_for(self):
        # negative records only need to contain a for loop
        snip = Snippet("for (i = 0; i < n; i++);", None, "x")
        assert _passes_criteria(snip) is not None

    def test_task_directive_rejected(self):
        snip = Snippet("for (i = 0; i < n; i++) f(i);", "#pragma omp task", "x")
        assert _passes_criteria(snip) is None

    def test_non_loop_code_rejected(self):
        snip = Snippet("x = 1;", None, "x")
        assert _passes_criteria(snip) is None

    def test_unparseable_rejected(self):
        snip = Snippet("for (i = 0; i < n; i++ {", None, "x")
        assert _passes_criteria(snip) is None


class TestDedup:
    def test_structural_hash_ignores_whitespace(self):
        a = parse("for (i = 0; i < n; i++)  a[i] = i;")
        b = parse("for (i=0;i<n;i++)\n\n  a[i]=i;")
        assert _structural_hash(a, None) == _structural_hash(b, None)

    def test_structural_hash_distinguishes_directive(self):
        ast = parse("for (i = 0; i < n; i++) a[i] = i;")
        assert _structural_hash(ast, "#pragma omp parallel for") != _structural_hash(ast, None)

    def test_corpus_contains_no_structural_duplicates(self, small_corpus):
        keys = [_structural_hash(r.ast, r.directive) for r in small_corpus]
        assert len(keys) == len(set(keys))

    def test_normalized_dedup_collapses_renamings(self):
        cfg = CorpusConfig(n_records=50, seed=3, dedup="normalized")
        corpus = build_corpus(cfg)
        assert len(corpus) == 50
        assert corpus.n_rejected_duplicates > 0


class TestBuildCorpus:
    def test_reaches_target_size(self, small_corpus):
        assert len(small_corpus) == 400

    def test_positive_fraction_near_paper(self, small_corpus):
        frac = len(small_corpus.positives) / len(small_corpus)
        assert 0.35 < frac < 0.55

    def test_deterministic(self):
        c1 = build_corpus(CorpusConfig(n_records=60, seed=11))
        c2 = build_corpus(CorpusConfig(n_records=60, seed=11))
        assert [r.code for r in c1] == [r.code for r in c2]
        assert [r.directive for r in c1] == [r.directive for r in c2]

    def test_different_seeds_differ(self):
        c1 = build_corpus(CorpusConfig(n_records=60, seed=1))
        c2 = build_corpus(CorpusConfig(n_records=60, seed=2))
        assert [r.code for r in c1] != [r.code for r in c2]

    def test_all_positives_are_parallel_for(self, small_corpus):
        for rec in small_corpus.positives:
            assert rec.omp.is_parallel_for

    def test_label_noise_produces_unannotated_parallel_code(self):
        noisy = build_corpus(CorpusConfig(n_records=300, seed=9, label_noise=0.3))
        pos_families = {fn.__name__.replace("gen_", "") for _, fn in POSITIVE_FAMILIES}
        stripped = [r for r in noisy.negatives if r.family in pos_families]
        assert len(stripped) > 0

    def test_zero_label_noise(self):
        clean = build_corpus(CorpusConfig(n_records=200, seed=9, label_noise=0.0))
        pos_families = {fn.__name__.replace("gen_", "") for _, fn in POSITIVE_FAMILIES}
        stripped = [r for r in clean.negatives if r.family in pos_families]
        assert stripped == []


class TestStats:
    def test_directive_stats_consistency(self, small_corpus):
        s = directive_stats(small_corpus)
        assert s["total_code_snippets"] == len(small_corpus)
        assert s["for_loops_with_omp"] == len(small_corpus.positives)
        assert s["schedule_static"] + s["schedule_dynamic"] == s["for_loops_with_omp"]
        assert s["private"] <= s["for_loops_with_omp"]
        assert s["reduction"] <= s["for_loops_with_omp"]

    def test_clause_proportions_match_table3_shape(self, small_corpus):
        s = directive_stats(small_corpus)
        pos = s["for_loops_with_omp"]
        # Table 3: private ≈ 45 %, reduction ≈ 19 %, dynamic ≈ 5 % of directives
        assert 0.25 < s["private"] / pos < 0.60
        assert 0.08 < s["reduction"] / pos < 0.35
        assert 0.005 < s["schedule_dynamic"] / pos < 0.15

    def test_length_histogram_partitions_corpus(self, small_corpus):
        hist = length_histogram(small_corpus)
        assert sum(hist.values()) == len(small_corpus)
        # Table 4 shape: monotone decreasing across bins
        vals = list(hist.values())
        assert vals[0] > vals[1] > vals[2] >= vals[3]

    def test_domain_distribution_matches_fig3(self, small_corpus):
        dist = domain_distribution(small_corpus)
        assert abs(sum(dist.values()) - 1.0) < 1e-9
        assert dist["generic"] > dist["unknown"] > dist["benchmark"] > dist["testing"]


class TestRecords:
    def test_record_labels(self, small_corpus):
        for rec in small_corpus.records[:50]:
            if rec.has_omp:
                assert rec.label_private in (True, False)
                assert rec.label_reduction in (True, False)
            else:
                assert rec.label_private is None
                assert rec.label_reduction is None

    def test_line_count_ignores_blank_lines(self):
        rec = Record(0, "for (i = 0; i < n; i++)\n\n  a[i] = i;", None, "generic", "x")
        assert rec.line_count == 2

    def test_save_load_roundtrip(self, small_corpus, tmp_path):
        subset = small_corpus.records[:12]
        save_records(subset, tmp_path)
        loaded = load_records(tmp_path)
        assert len(loaded) == 12
        for orig, back in zip(subset, loaded):
            assert back.code == orig.code
            assert back.directive == orig.directive
            assert back.domain == orig.domain
            assert back.family == orig.family

    def test_loaded_ast_usable(self, small_corpus, tmp_path):
        save_records(small_corpus.records[:3], tmp_path)
        loaded = load_records(tmp_path)
        for rec in loaded:
            assert any(isinstance(n, For) for n in walk(rec.ast))
