"""Tests for the multi-process sharded serving engine."""

import threading
import time

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    Advice,
    AutoscaleConfig,
    EngineConfig,
    InferenceEngine,
    RollingMean,
    ShardedEngine,
    SupervisorConfig,
    shard_of,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    'for (i = 0; i < n; i++) printf("%d", a[i]);',
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
    "for (p = head; p; p = p->next) count++;",
    "for (i = 0; i < rows; i++) out[i] = dot(m[i], v, cols);",
]


@pytest.fixture(scope="module")
def model_and_vocab():
    vocab = Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)
    return PragFormer(len(vocab), TINY), vocab


@pytest.fixture(scope="module")
def factory(model_and_vocab):
    model, vocab = model_and_vocab

    def build():
        return InferenceEngine(model, vocab, max_len=TINY.max_len,
                               config=EngineConfig(max_batch_size=8))

    return build


class TestRouting:
    def test_deterministic_across_calls_and_instances(self):
        for n in (1, 2, 4, 7):
            first = [shard_of(code, n) for code in SNIPPETS]
            second = [shard_of(code, n) for code in SNIPPETS]
            assert first == second
            assert all(0 <= s < n for s in first)

    def test_single_shard_routes_everything_to_zero(self):
        assert {shard_of(code, 1) for code in SNIPPETS} == {0}

    def test_engine_shard_of_matches_module_fn(self, factory):
        with ShardedEngine(factory, n_shards=4) as sharded:
            for code in SNIPPETS:
                assert sharded.shard_of(code) == shard_of(code, 4)

    def test_duplicates_land_on_one_shard(self, factory):
        code = SNIPPETS[0]
        with ShardedEngine(factory, n_shards=4) as sharded:
            sharded.predict_proba([code] * 6)
            routed = sharded.routed
        target = shard_of(code, 4)
        assert routed[target] == 6
        assert sum(routed) == 6


class TestFallbackSingleShard:
    def test_no_worker_processes(self, factory):
        sharded = ShardedEngine(factory, n_shards=1)
        try:
            assert sharded._workers == []
            assert sharded._local is not None
        finally:
            sharded.close()

    def test_matches_unsharded_engine(self, factory):
        expected = factory().predict_proba(SNIPPETS)
        with ShardedEngine(factory, n_shards=1) as sharded:
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)

    def test_rejects_nonpositive_shards(self, factory):
        with pytest.raises(ValueError):
            ShardedEngine(factory, n_shards=0)


class TestMultiProcess:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_predictions_match_unsharded(self, factory, n_shards):
        expected = factory().predict_proba(SNIPPETS)
        with ShardedEngine(factory, n_shards=n_shards) as sharded:
            got = sharded.predict_proba(SNIPPETS)
        np.testing.assert_allclose(got, expected, atol=1e-5)

    def test_advise_many_order_preserved(self, factory):
        expected = factory().advise_many(SNIPPETS)
        with ShardedEngine(factory, n_shards=2) as sharded:
            got = sharded.advise_many(SNIPPETS)
        assert all(isinstance(a, Advice) for a in got)
        for a, b in zip(got, expected):
            np.testing.assert_allclose(a.probability, b.probability, atol=1e-5)
            assert a.needs_directive == b.needs_directive

    def test_empty_batch(self, factory):
        from repro.nn.dtype import get_dtype

        with ShardedEngine(factory, n_shards=2) as sharded:
            empty = sharded.predict_proba([])
            assert empty.shape == (0, 2)
            # float32-pure like the in-process engine, not float64
            assert empty.dtype == get_dtype()

    def test_stats_aggregation(self, factory):
        with ShardedEngine(factory, n_shards=2) as sharded:
            sharded.predict_proba(SNIPPETS)
            sharded.predict_proba(SNIPPETS)  # warm pass: all LRU hits
            stats = sharded.stats()
        assert stats["n_shards"] == 2
        assert sum(stats["routed"]) == 2 * len(SNIPPETS)
        assert stats["queue_depth"] == [0, 0]
        combined = stats["combined"]
        assert combined["requests"] == 2 * len(SNIPPETS)
        assert combined["cache_hits"] == len(SNIPPETS)
        assert len(stats["shards"]) == 2

    def test_worker_error_is_surfaced(self, model_and_vocab):
        model, vocab = model_and_vocab

        def broken_factory():
            engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
            # not callable -> worker-side error on either transport
            engine.predict_proba = None
            engine.predict_proba_encoded = None
            return engine

        with ShardedEngine(broken_factory, n_shards=2) as sharded:
            with pytest.raises(RuntimeError, match="shard"):
                sharded.predict_proba(SNIPPETS)

    def test_no_stale_responses_after_one_shard_fails(self, model_and_vocab,
                                                      factory):
        """A failed shard must not leave other shards' replies queued —
        the next call would silently collect the previous call's results."""
        model, vocab = model_and_vocab
        # healthy snippets live on one shard; pick a BOOM marker that
        # provably hashes to the other one
        other = [c for c in SNIPPETS if shard_of(c, 2) == shard_of(SNIPPETS[0], 2)]
        assert len(other) >= 2, "need snippets on the non-failing shard"
        boom = next(f"BOOM {i}" for i in range(64)
                    if shard_of(f"BOOM {i}", 2) != shard_of(other[0], 2))

        def selective_factory():
            engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
            real = engine.advise_many

            def advise_many(codes):
                if any("BOOM" in c for c in codes):
                    raise ValueError("boom")
                return real(codes)

            engine.advise_many = advise_many
            engine.codec = None  # BOOM marker is text-only: pin to queues
            return engine

        expected = factory().advise_many(other)
        lookup = dict(zip(other, expected))
        with ShardedEngine(selective_factory, n_shards=2) as sharded:
            with pytest.raises(RuntimeError, match="shard"):
                sharded.advise_many([boom, other[0]])
            # the healthy shard's reply for other[0] must have been drained:
            # a fresh call must return advice for its own snippet
            got = sharded.advise_many([other[1]])[0]
            np.testing.assert_allclose(got.probability,
                                       lookup[other[1]].probability, atol=1e-5)

    def test_concurrent_bulk_calls_do_not_cross_talk(self, factory):
        import threading

        expected = factory().predict_proba(SNIPPETS)
        errors = []
        with ShardedEngine(factory, n_shards=2) as sharded:
            def hammer():
                try:
                    for _ in range(5):
                        got = sharded.predict_proba(SNIPPETS)
                        np.testing.assert_allclose(got, expected, atol=1e-5)
                except Exception as exc:  # noqa: BLE001 — collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors, errors

    def test_dead_worker_degrades_instead_of_hanging(self):
        """A factory that crashes at worker startup must not wedge or
        fail the caller: with no live shard to retry on and a fallback
        that cannot build either, every snippet gets the explicit
        degraded neutral verdict (p = 0.5) instead of an exception."""

        def crashing_factory():
            raise RuntimeError("no model for you")

        cfg = SupervisorConfig(request_timeout_s=10.0,
                               heartbeat_interval_s=0)
        with ShardedEngine(crashing_factory, n_shards=2,
                           supervisor=cfg) as sharded:
            proba = sharded.predict_proba(SNIPPETS)
            np.testing.assert_allclose(proba, 0.5)
            advice = sharded.advise_many(SNIPPETS[:2])
            assert all(a.degraded for a in advice)
            assert all(not a.needs_directive for a in advice)
            sup = sharded.stats()["supervisor"]
            assert sup["degraded_answers"] == len(SNIPPETS) + 2
            assert sup["faults"] >= 2

    def test_head_names_through_workers(self, model_and_vocab):
        from repro.serve import ModelRegistry, MultiModelEngine

        model, vocab = model_and_vocab

        def multi_factory():
            registry = ModelRegistry()
            for name in ("directive", "private"):
                registry.register(name, model, vocab, max_len=TINY.max_len)
            return MultiModelEngine(registry)

        with ShardedEngine(multi_factory, n_shards=2) as sharded:
            assert sharded.head_names() == ["directive", "private"]
        with ShardedEngine(multi_factory, n_shards=1) as local:
            assert local.head_names() == ["directive", "private"]

    def test_single_model_head_names_empty(self, factory):
        with ShardedEngine(factory, n_shards=1) as sharded:
            assert sharded.head_names() == []

    def test_close_idempotent_and_rejects_use(self, factory):
        sharded = ShardedEngine(factory, n_shards=2)
        sharded.predict_proba(SNIPPETS[:2])
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.predict_proba(SNIPPETS[:2])
        with pytest.raises(RuntimeError, match="closed"):
            sharded.stats()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.head_names()


class TestRollingMean:
    def test_mean_over_window(self):
        window = RollingMean(3)
        assert window.mean() == 0.0 and not window.full
        for v in (1.0, 2.0, 3.0):
            window.push(v)
        assert window.full and window.mean() == pytest.approx(2.0)
        window.push(6.0)  # evicts the 1.0
        assert window.mean() == pytest.approx(11.0 / 3)
        window.clear()
        assert len(window) == 0 and window.mean() == 0.0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            RollingMean(0)


class TestAutoscaleConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_shards=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(low_watermark=2.0, high_watermark=1.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(window=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(cooldown_s=-1)

    def test_clamp(self):
        cfg = AutoscaleConfig(min_shards=2, max_shards=4)
        assert cfg.clamp(1) == 2
        assert cfg.clamp(3) == 3
        assert cfg.clamp(9) == 4


class TestAutoscaling:
    """Queue-depth shard autoscaling: grow under bursts, shrink when idle,
    stay correct across every resize."""

    def _burst_cfg(self, max_shards=3):
        # tiny window + zero cooldown so tests converge in a few calls; a
        # microscopic high watermark makes any observed backlog a grow
        # signal, and the low watermark only fires on a truly idle window
        return AutoscaleConfig(min_shards=1, max_shards=max_shards,
                               high_watermark=0.01, low_watermark=0.005,
                               window=3, cooldown_s=0.0)

    def _hammer_until(self, sharded, predicate, n_threads=4, timeout=45.0):
        """Concurrent bulk calls until ``predicate()`` (or timeout)."""
        stop = threading.Event()
        errors = []

        def client():
            while not stop.is_set():
                try:
                    sharded.advise_many(SNIPPETS)
                except Exception as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(n_threads)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + timeout
        while not predicate() and time.monotonic() < deadline:
            time.sleep(0.05)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        return predicate()

    def test_grows_under_burst_and_shrinks_when_idle(self, factory):
        """The acceptance gate: a bursty trace resizes the fleet between
        the configured bounds, with correct predictions throughout."""
        expected = factory().predict_proba(SNIPPETS)
        with ShardedEngine(factory, n_shards=1,
                           autoscale=self._burst_cfg()) as sharded:
            assert sharded.n_shards == 1
            grew = self._hammer_until(sharded,
                                      lambda: sharded.n_shards == 3)
            assert grew, "burst load must grow the fleet to max_shards"
            # predictions remain correct on the re-routed fleet
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)
            # sequential traffic samples an empty backlog -> shrink to min
            deadline = time.monotonic() + 45.0
            while sharded.n_shards > 1 and time.monotonic() < deadline:
                np.testing.assert_allclose(
                    sharded.predict_proba(SNIPPETS), expected, atol=1e-5)
            assert sharded.n_shards == 1, "idle fleet must shrink to min"
            stats = sharded.stats()
            scaler = stats["autoscaler"]
            assert scaler["min_shards"] == 1 and scaler["max_shards"] == 3
            assert scaler["current_shards"] == 1
            assert scaler["resizes"] >= 4  # 1->2->3 then 3->2->1
            assert "low watermark" in scaler["last_resize"]["reason"]
            assert scaler["last_resize"]["from"] == 2
            assert scaler["last_resize"]["to"] == 1

    def test_respects_min_shards_floor(self, factory):
        cfg = AutoscaleConfig(min_shards=2, max_shards=3,
                              high_watermark=10.0, low_watermark=0.01,
                              window=2, cooldown_s=0.0)
        with ShardedEngine(factory, n_shards=1, autoscale=cfg) as sharded:
            assert sharded.n_shards == 2  # clamped up at construction
            for _ in range(10):  # idle traffic: would shrink if allowed
                sharded.advise_many(SNIPPETS[:2])
            assert sharded.n_shards == 2

    def test_autoscale_forces_multiprocess_mode(self, factory):
        with ShardedEngine(factory, n_shards=1,
                           autoscale=self._burst_cfg()) as sharded:
            assert sharded._local is None
            assert len(sharded._workers) == 1

    def test_cooldown_blocks_consecutive_resizes(self, factory):
        cfg = AutoscaleConfig(min_shards=1, max_shards=4,
                              high_watermark=0.01, low_watermark=0.005,
                              window=1, cooldown_s=3600.0)
        with ShardedEngine(factory, n_shards=1, autoscale=cfg) as sharded:
            self._hammer_until(sharded, lambda: False, timeout=1.0)
            assert sharded.n_shards == 1  # construction-time cooldown holds

    def test_fixed_engine_reports_no_autoscaler(self, factory):
        with ShardedEngine(factory, n_shards=2) as sharded:
            sharded.predict_proba(SNIPPETS)
            assert "autoscaler" not in sharded.stats()
