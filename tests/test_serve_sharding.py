"""Tests for the multi-process sharded serving engine."""

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    Advice,
    EngineConfig,
    InferenceEngine,
    ShardedEngine,
    shard_of,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    'for (i = 0; i < n; i++) printf("%d", a[i]);',
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
    "for (p = head; p; p = p->next) count++;",
    "for (i = 0; i < rows; i++) out[i] = dot(m[i], v, cols);",
]


@pytest.fixture(scope="module")
def model_and_vocab():
    vocab = Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)
    return PragFormer(len(vocab), TINY), vocab


@pytest.fixture(scope="module")
def factory(model_and_vocab):
    model, vocab = model_and_vocab

    def build():
        return InferenceEngine(model, vocab, max_len=TINY.max_len,
                               config=EngineConfig(max_batch_size=8))

    return build


class TestRouting:
    def test_deterministic_across_calls_and_instances(self):
        for n in (1, 2, 4, 7):
            first = [shard_of(code, n) for code in SNIPPETS]
            second = [shard_of(code, n) for code in SNIPPETS]
            assert first == second
            assert all(0 <= s < n for s in first)

    def test_single_shard_routes_everything_to_zero(self):
        assert {shard_of(code, 1) for code in SNIPPETS} == {0}

    def test_engine_shard_of_matches_module_fn(self, factory):
        with ShardedEngine(factory, n_shards=4) as sharded:
            for code in SNIPPETS:
                assert sharded.shard_of(code) == shard_of(code, 4)

    def test_duplicates_land_on_one_shard(self, factory):
        code = SNIPPETS[0]
        with ShardedEngine(factory, n_shards=4) as sharded:
            sharded.predict_proba([code] * 6)
            routed = sharded.routed
        target = shard_of(code, 4)
        assert routed[target] == 6
        assert sum(routed) == 6


class TestFallbackSingleShard:
    def test_no_worker_processes(self, factory):
        sharded = ShardedEngine(factory, n_shards=1)
        try:
            assert sharded._workers == []
            assert sharded._local is not None
        finally:
            sharded.close()

    def test_matches_unsharded_engine(self, factory):
        expected = factory().predict_proba(SNIPPETS)
        with ShardedEngine(factory, n_shards=1) as sharded:
            np.testing.assert_allclose(sharded.predict_proba(SNIPPETS),
                                       expected, atol=1e-5)

    def test_rejects_nonpositive_shards(self, factory):
        with pytest.raises(ValueError):
            ShardedEngine(factory, n_shards=0)


class TestMultiProcess:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_predictions_match_unsharded(self, factory, n_shards):
        expected = factory().predict_proba(SNIPPETS)
        with ShardedEngine(factory, n_shards=n_shards) as sharded:
            got = sharded.predict_proba(SNIPPETS)
        np.testing.assert_allclose(got, expected, atol=1e-5)

    def test_advise_many_order_preserved(self, factory):
        expected = factory().advise_many(SNIPPETS)
        with ShardedEngine(factory, n_shards=2) as sharded:
            got = sharded.advise_many(SNIPPETS)
        assert all(isinstance(a, Advice) for a in got)
        for a, b in zip(got, expected):
            np.testing.assert_allclose(a.probability, b.probability, atol=1e-5)
            assert a.needs_directive == b.needs_directive

    def test_empty_batch(self, factory):
        with ShardedEngine(factory, n_shards=2) as sharded:
            assert sharded.predict_proba([]).shape == (0, 2)

    def test_stats_aggregation(self, factory):
        with ShardedEngine(factory, n_shards=2) as sharded:
            sharded.predict_proba(SNIPPETS)
            sharded.predict_proba(SNIPPETS)  # warm pass: all LRU hits
            stats = sharded.stats()
        assert stats["n_shards"] == 2
        assert sum(stats["routed"]) == 2 * len(SNIPPETS)
        assert stats["queue_depth"] == [0, 0]
        combined = stats["combined"]
        assert combined["requests"] == 2 * len(SNIPPETS)
        assert combined["cache_hits"] == len(SNIPPETS)
        assert len(stats["shards"]) == 2

    def test_worker_error_is_surfaced(self, model_and_vocab):
        model, vocab = model_and_vocab

        def broken_factory():
            engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
            engine.predict_proba = None  # not callable -> worker-side error
            return engine

        with ShardedEngine(broken_factory, n_shards=2) as sharded:
            with pytest.raises(RuntimeError, match="shard"):
                sharded.predict_proba(SNIPPETS)

    def test_no_stale_responses_after_one_shard_fails(self, model_and_vocab,
                                                      factory):
        """A failed shard must not leave other shards' replies queued —
        the next call would silently collect the previous call's results."""
        model, vocab = model_and_vocab
        # healthy snippets live on one shard; pick a BOOM marker that
        # provably hashes to the other one
        other = [c for c in SNIPPETS if shard_of(c, 2) == shard_of(SNIPPETS[0], 2)]
        assert len(other) >= 2, "need snippets on the non-failing shard"
        boom = next(f"BOOM {i}" for i in range(64)
                    if shard_of(f"BOOM {i}", 2) != shard_of(other[0], 2))

        def selective_factory():
            engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
            real = engine.advise_many

            def advise_many(codes):
                if any("BOOM" in c for c in codes):
                    raise ValueError("boom")
                return real(codes)

            engine.advise_many = advise_many
            return engine

        expected = factory().advise_many(other)
        lookup = dict(zip(other, expected))
        with ShardedEngine(selective_factory, n_shards=2) as sharded:
            with pytest.raises(RuntimeError, match="shard"):
                sharded.advise_many([boom, other[0]])
            # the healthy shard's reply for other[0] must have been drained:
            # a fresh call must return advice for its own snippet
            got = sharded.advise_many([other[1]])[0]
            np.testing.assert_allclose(got.probability,
                                       lookup[other[1]].probability, atol=1e-5)

    def test_concurrent_bulk_calls_do_not_cross_talk(self, factory):
        import threading

        expected = factory().predict_proba(SNIPPETS)
        errors = []
        with ShardedEngine(factory, n_shards=2) as sharded:
            def hammer():
                try:
                    for _ in range(5):
                        got = sharded.predict_proba(SNIPPETS)
                        np.testing.assert_allclose(got, expected, atol=1e-5)
                except Exception as exc:  # noqa: BLE001 — collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors, errors

    def test_dead_worker_raises_instead_of_hanging(self):
        """A factory that crashes at worker startup must surface as an
        error on the first call, not wedge the caller forever."""

        def crashing_factory():
            raise RuntimeError("no model for you")

        with ShardedEngine(crashing_factory, n_shards=2) as sharded:
            with pytest.raises(RuntimeError, match="worker died"):
                sharded.predict_proba(SNIPPETS)

    def test_head_names_through_workers(self, model_and_vocab):
        from repro.serve import ModelRegistry, MultiModelEngine

        model, vocab = model_and_vocab

        def multi_factory():
            registry = ModelRegistry()
            for name in ("directive", "private"):
                registry.register(name, model, vocab, max_len=TINY.max_len)
            return MultiModelEngine(registry)

        with ShardedEngine(multi_factory, n_shards=2) as sharded:
            assert sharded.head_names() == ["directive", "private"]
        with ShardedEngine(multi_factory, n_shards=1) as local:
            assert local.head_names() == ["directive", "private"]

    def test_single_model_head_names_empty(self, factory):
        with ShardedEngine(factory, n_shards=1) as sharded:
            assert sharded.head_names() == []

    def test_close_idempotent_and_rejects_use(self, factory):
        sharded = ShardedEngine(factory, n_shards=2)
        sharded.predict_proba(SNIPPETS[:2])
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.predict_proba(SNIPPETS[:2])
        with pytest.raises(RuntimeError, match="closed"):
            sharded.stats()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.head_names()
