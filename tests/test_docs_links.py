"""Documentation health checks: links, CLI coverage, serve docstrings.

Docs rot silently — a renamed file leaves `[text](old/path.md)` links that
404 for every reader.  This suite walks every tracked ``*.md`` file in the
repo and fails on relative links whose targets don't exist, pins the
README + serving/operations docs to the surface they promise to cover
(endpoints and operator CLI flags), and audits every public symbol in
``repro.serve.*`` for a docstring — the serving stack is the repo's
operator-facing API, and an undocumented public function there is a doc
bug, not a style nit.
"""

import inspect
import pkgutil
import re
from importlib import import_module
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — target captured without title.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/**/*.md"))
    assert files, "no markdown files found — wrong repo root?"
    return files


def _relative_links(path: Path):
    """(link, resolved target) pairs for every relative link in ``path``."""
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        yield target, resolved


class TestRelativeLinks:
    @pytest.mark.parametrize("md", _markdown_files(),
                             ids=lambda p: str(p.relative_to(REPO_ROOT)))
    def test_no_dangling_relative_links(self, md):
        dangling = [link for link, resolved in _relative_links(md)
                    if not resolved.exists()]
        assert not dangling, (
            f"{md.relative_to(REPO_ROOT)} has dangling relative links: {dangling}")

    def test_docs_are_actually_linked(self):
        """README must reach the serving doc, the roadmap, and the paper."""
        readme = (REPO_ROOT / "README.md").read_text()
        for target in ("docs/serving.md", "ROADMAP.md", "PAPER.md",
                       "docs/operations.md", "docs/architecture.md"):
            assert target in readme, f"README.md does not link {target}"

    def test_serving_doc_links_operations_doc(self):
        """The architecture page and the operator's guide must reference
        each other — a reader landing on either finds the other."""
        serving = (REPO_ROOT / "docs" / "serving.md").read_text()
        operations = (REPO_ROOT / "docs" / "operations.md").read_text()
        assert "operations.md" in serving
        assert "serving.md" in operations
        assert "architecture.md" in serving


class TestCliCoverage:
    def _subcommands(self):
        """Every registered ``repro`` subcommand name, from the parser."""
        from repro import cli

        source = Path(cli.__file__).read_text()
        return sorted(set(re.findall(r"add_parser\(\s*\"(\w[\w-]*)\"", source)))

    def test_readme_covers_every_subcommand(self):
        readme = (REPO_ROOT / "README.md").read_text()
        missing = [cmd for cmd in self._subcommands()
                   if f"repro {cmd}" not in readme]
        assert not missing, f"README.md does not document: {missing}"
        assert self._subcommands(), "no subcommands found in cli.py"

    def test_serving_doc_covers_http_endpoints(self):
        doc = (REPO_ROOT / "docs" / "serving.md").read_text()
        for endpoint in ("/advise", "/advise/batch", "/healthz", "/stats",
                         "/reload", "/canary", "/canary/promote",
                         "/canary/rollback"):
            assert endpoint in doc, f"docs/serving.md missing {endpoint}"

    def test_operations_doc_covers_operator_surface(self):
        """The operator's guide must document every operability CLI flag
        and every endpoint an operator touches."""
        doc = (REPO_ROOT / "docs" / "operations.md").read_text()
        for flag in ("--watch", "--min-shards", "--max-shards",
                     "--gate-margin", "--shards", "--canary",
                     "--canary-fraction", "--request-timeout",
                     "--max-body-bytes", "--ipc"):
            assert flag in doc, f"docs/operations.md missing flag {flag}"
        for endpoint in ("/healthz", "/stats", "/reload", "/canary",
                         "/canary/promote", "/canary/rollback"):
            assert endpoint in doc, f"docs/operations.md missing {endpoint}"
        for concept in ("model_version", "hysteresis", "cooldown", "gating",
                        "canary", "promote", "rollback", "latency_high_ms",
                        "circuit breaker", "retry-after", "restart budget",
                        "degraded", "deadline_exceeded", "crash loop"):
            assert concept in doc.lower(), (
                f"docs/operations.md missing {concept}")

    def test_operability_flags_exist_in_cli(self):
        """The flags the docs promise must actually be registered — a doc
        describing a removed flag is worse than no doc."""
        from repro import cli

        source = Path(cli.__file__).read_text()
        for flag in ("--watch", "--min-shards", "--max-shards",
                     "--gate-margin", "--canary", "--canary-fraction",
                     "--request-timeout", "--max-body-bytes", "--ipc"):
            assert f'"{flag}"' in source, f"cli.py lost {flag}"

    def test_architecture_doc_maps_every_package(self):
        """docs/architecture.md must name every top-level repro package
        and trace the /advise request path."""
        doc = (REPO_ROOT / "docs" / "architecture.md").read_text()
        pkg_root = REPO_ROOT / "src" / "repro"
        packages = sorted(p.name for p in pkg_root.iterdir()
                          if p.is_dir() and (p / "__init__.py").is_file())
        assert len(packages) >= 10, "package scan looks wrong"
        missing = [pkg for pkg in packages if f"`{pkg}/`" not in doc]
        assert not missing, f"docs/architecture.md missing packages: {missing}"
        assert "/advise" in doc, "request path walk-through missing"
        assert "`cli.py`" in doc


class TestServeDocstrings:
    """Every public symbol in repro.serve.* carries a docstring.

    Public = importable without a leading underscore and *defined* in the
    module (re-exports are audited where they are defined).  Classes are
    audited recursively: public methods, properties, class/static methods.
    """

    def _serve_modules(self):
        import repro.serve

        yield repro.serve
        for info in pkgutil.iter_modules(repro.serve.__path__):
            yield import_module(f"repro.serve.{info.name}")

    def _undocumented_in_class(self, cls, qualname):
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            target = None
            if isinstance(member, property):
                target = member.fget
            elif isinstance(member, (classmethod, staticmethod)):
                target = member.__func__
            elif inspect.isfunction(member):
                target = member
            if target is not None and not inspect.getdoc(target):
                yield f"{qualname}.{name}"

    def test_every_public_serve_symbol_has_docstring(self):
        missing = []
        for module in self._serve_modules():
            if not inspect.getdoc(module):
                missing.append(module.__name__)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; audited where defined
                if inspect.isclass(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
                    missing.extend(self._undocumented_in_class(
                        obj, f"{module.__name__}.{name}"))
                elif inspect.isfunction(obj) and not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, (
            "public serve symbols without docstrings: "
            + ", ".join(sorted(missing)))

    def test_audit_actually_sees_the_surface(self):
        """Guard the auditor itself: it must walk all eight serve modules
        and a healthy sample of known-public symbols."""
        names = {m.__name__ for m in self._serve_modules()}
        assert names == {"repro.serve", "repro.serve.api",
                         "repro.serve.chaos",
                         "repro.serve.engine", "repro.serve.http_api",
                         "repro.serve.metrics", "repro.serve.registry",
                         "repro.serve.sharding", "repro.serve.shm_ring"}
