"""Documentation health checks: no dangling relative links, full CLI coverage.

Docs rot silently — a renamed file leaves `[text](old/path.md)` links that
404 for every reader.  This suite walks every tracked ``*.md`` file in the
repo and fails on relative links whose targets don't exist, and pins the
README + serving doc to the surface they promise to cover.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — target captured without title.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/**/*.md"))
    assert files, "no markdown files found — wrong repo root?"
    return files


def _relative_links(path: Path):
    """(link, resolved target) pairs for every relative link in ``path``."""
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        yield target, resolved


class TestRelativeLinks:
    @pytest.mark.parametrize("md", _markdown_files(),
                             ids=lambda p: str(p.relative_to(REPO_ROOT)))
    def test_no_dangling_relative_links(self, md):
        dangling = [link for link, resolved in _relative_links(md)
                    if not resolved.exists()]
        assert not dangling, (
            f"{md.relative_to(REPO_ROOT)} has dangling relative links: {dangling}")

    def test_docs_are_actually_linked(self):
        """README must reach the serving doc, the roadmap, and the paper."""
        readme = (REPO_ROOT / "README.md").read_text()
        for target in ("docs/serving.md", "ROADMAP.md", "PAPER.md"):
            assert target in readme, f"README.md does not link {target}"


class TestCliCoverage:
    def _subcommands(self):
        """Every registered ``repro`` subcommand name, from the parser."""
        from repro import cli

        source = Path(cli.__file__).read_text()
        return sorted(set(re.findall(r"add_parser\(\s*\"(\w[\w-]*)\"", source)))

    def test_readme_covers_every_subcommand(self):
        readme = (REPO_ROOT / "README.md").read_text()
        missing = [cmd for cmd in self._subcommands()
                   if f"repro {cmd}" not in readme]
        assert not missing, f"README.md does not document: {missing}"
        assert self._subcommands(), "no subcommands found in cli.py"

    def test_serving_doc_covers_http_endpoints(self):
        doc = (REPO_ROOT / "docs" / "serving.md").read_text()
        for endpoint in ("/advise", "/advise/batch", "/healthz", "/stats"):
            assert endpoint in doc, f"docs/serving.md missing {endpoint}"
