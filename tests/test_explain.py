"""Tests for the LIME-style explainer."""

import numpy as np
import pytest

from repro.explain import LimeExplainer


def keyword_model(trigger, strength=0.9):
    """A model that predicts positive iff `trigger` is present."""

    def predict(token_lists):
        return np.array([strength if trigger in toks else 1 - strength
                         for toks in token_lists])

    return predict


class TestLime:
    def test_identifies_single_decisive_token(self):
        explainer = LimeExplainer(keyword_model("fprintf"), n_samples=200, rng=0)
        tokens = ["for", "(", "i", ")", "fprintf", ";"]
        expl = explainer.explain(tokens)
        top_token, top_weight = expl.top(1)[0]
        assert top_token == "fprintf"
        assert top_weight > 0  # presence raises P(positive) for this model

    def test_sign_of_negative_evidence(self):
        # model says positive unless 'break' appears
        def predict(token_lists):
            return np.array([0.1 if "break" in toks else 0.9 for toks in token_lists])

        explainer = LimeExplainer(predict, n_samples=200, rng=1)
        expl = explainer.explain(["for", "x", "break", "y"])
        weights = dict(zip(expl.tokens, expl.weights))
        assert weights["break"] < 0
        assert abs(weights["break"]) > abs(weights["x"])

    def test_base_probability_is_intact_input(self):
        explainer = LimeExplainer(keyword_model("k", 0.8), n_samples=100, rng=2)
        expl = explainer.explain(["a", "k"])
        assert expl.base_probability == pytest.approx(0.8)

    def test_supporting_and_opposing_partition(self):
        explainer = LimeExplainer(keyword_model("good"), n_samples=150, rng=3)
        expl = explainer.explain(["good", "bad", "meh"])
        assert all(w > 0 for _, w in expl.supporting())
        assert all(w < 0 for _, w in expl.opposing())

    def test_deterministic_given_rng(self):
        e1 = LimeExplainer(keyword_model("t"), n_samples=100, rng=5).explain(["t", "u"])
        e2 = LimeExplainer(keyword_model("t"), n_samples=100, rng=5).explain(["t", "u"])
        np.testing.assert_array_equal(e1.weights, e2.weights)

    def test_empty_tokens_raise(self):
        with pytest.raises(ValueError):
            LimeExplainer(keyword_model("x")).explain([])

    def test_constant_model_gives_near_zero_weights(self):
        explainer = LimeExplainer(lambda ls: np.full(len(ls), 0.5),
                                  n_samples=100, rng=6)
        expl = explainer.explain(["a", "b", "c"])
        assert np.abs(expl.weights).max() < 1e-3

    def test_interacting_tokens(self):
        """Both tokens needed -> both get positive weight."""

        def predict(token_lists):
            return np.array([0.9 if ("a" in t and "b" in t) else 0.1
                             for t in token_lists])

        expl = LimeExplainer(predict, n_samples=400, rng=7).explain(["a", "b", "z"])
        weights = dict(zip(expl.tokens, expl.weights))
        assert weights["a"] > 0 and weights["b"] > 0
        assert weights["a"] > weights["z"] and weights["b"] > weights["z"]
