"""Tests for dependence analysis, the sub-compilers, and ComPar."""

import numpy as np
import pytest

from repro.clang import For, parse, walk
from repro.clang.parser import parse_expression
from repro.corpus import CorpusConfig, build_corpus
from repro.s2s import (
    AnalysisPolicy,
    AutoParLike,
    CetusLike,
    ComPar,
    Par4AllLike,
    affine_subscript,
    analyze_loop,
    loop_variable,
)


def first_loop(code):
    ast = parse(code)
    return next(n for n in walk(ast) if isinstance(n, For)), ast


def analyze(code, policy=None):
    ast = parse(code)
    loop = next(n for n in ast.stmts if isinstance(n, For))
    funcdefs = {n.name: n for n in walk(ast) if type(n).__name__ == "FuncDef"}
    return analyze_loop(loop, funcdefs, policy or AnalysisPolicy())


class TestLoopVariable:
    def test_canonical_forms(self):
        for code in ["for (i = 0; i < n; i++) x;",
                     "for (i = 0; i < n; ++i) x;",
                     "for (i = 0; i <= n; i += 1) x;",
                     "for (i = 0; i < n; i = i + 1) x;",
                     "for (int i = 0; i < n; i++) x;"]:
            loop, _ = first_loop(code)
            assert loop_variable(loop) == "i", code

    def test_pointer_chase_not_canonical(self):
        loop, _ = first_loop("for (p = head; p != 0; p = p->next) c++;")
        assert loop_variable(loop) is None


class TestAffine:
    @pytest.mark.parametrize("expr,coef,off", [
        ("i", 1, 0), ("i + 1", 1, 1), ("i - 2", 1, -2),
        ("2 * i", 2, 0), ("2 * i + 3", 2, 3), ("-i", -1, 0), ("7", 0, 7),
    ])
    def test_affine_forms(self, expr, coef, off):
        assert affine_subscript(parse_expression(expr), "i") == (coef, off)

    @pytest.mark.parametrize("expr", ["i * i", "idx[i]", "j", "i + j", "n - i * j"])
    def test_non_affine_forms(self, expr):
        assert affine_subscript(parse_expression(expr), "i") is None


class TestVerdicts:
    def test_independent_elementwise(self):
        a = analyze("for (i = 0; i < n; i++) x[i] = y[i] + 1;")
        assert a.parallelizable

    def test_recurrence_rejected(self):
        a = analyze("for (i = 1; i < n; i++) x[i] = x[i-1] + 1;")
        assert not a.parallelizable
        assert any("array x" in r for r in a.reasons)

    def test_anti_dependence_rejected(self):
        assert not analyze("for (i = 0; i < n - 1; i++) x[i] = x[i+1];").parallelizable

    def test_indirect_write_rejected(self):
        assert not analyze("for (i = 0; i < n; i++) x[idx[i]] += y[i];").parallelizable

    def test_loop_invariant_write_rejected(self):
        assert not analyze("for (i = 0; i < n; i++) x[0] = y[i];").parallelizable

    def test_reduction_detected(self):
        a = analyze("for (i = 0; i < n; i++) s += x[i];")
        assert a.parallelizable
        assert ("+", "s") in a.reductions

    def test_explicit_form_reduction(self):
        a = analyze("for (i = 0; i < n; i++) s = s * x[i];")
        assert a.parallelizable
        assert ("*", "s") in a.reductions

    def test_prefix_sum_rejected(self):
        code = "for (i = 0; i < n; i++) { s += x[i]; y[i] = s; }"
        a = analyze(code)
        assert not a.parallelizable

    def test_if_style_minmax_not_detected_as_reduction(self):
        """Table 10: pattern matchers miss min/max via if."""
        code = "for (i = 0; i < n; i++) if (x[i] > best) best = x[i];"
        a = analyze(code)
        assert not a.parallelizable

    def test_private_temp(self):
        code = "for (i = 0; i < n; i++) { t = x[i] * 2; y[i] = t * t; }"
        a = analyze(code)
        assert a.parallelizable
        assert "t" in a.private

    def test_inner_loop_var_private(self):
        code = ("for (i = 0; i < n; i++)\n"
                "  for (j = 0; j < m; j++)\n"
                "    c[i][j] = a[i][j] + b[i][j];")
        a = analyze(code)
        assert a.parallelizable
        assert "j" in a.private

    def test_locally_declared_inner_var_needs_no_clause(self):
        code = ("for (i = 0; i < n; i++)\n"
                "  for (int j = 0; j < m; j++)\n"
                "    c[i][j] = a[i][j];")
        a = analyze(code)
        assert a.parallelizable
        assert "j" not in a.private

    def test_iteration_var_private_policy(self):
        a = analyze("for (i = 0; i < n; i++) x[i] = 0;")
        assert a.private[0] == "i"  # ComPar's private(i) over-emission
        a2 = analyze("for (i = 0; i < n; i++) x[i] = 0;",
                     AnalysisPolicy(private_iteration_var=False))
        assert "i" not in a2.private

    def test_scalar_carried_rejected(self):
        assert not analyze("for (i = 0; i < n; i++) x = 0.5 * (x + a[i] / x);").parallelizable

    def test_break_rejected(self):
        code = "for (i = 0; i < n; i++) if (x[i] == k) break;"
        a = analyze(code)
        assert not a.parallelizable
        assert any("break" in r for r in a.reasons)

    def test_io_rejected(self):
        assert not analyze('for (i = 0; i < n; i++) printf("%d", x[i]);').parallelizable

    def test_rand_rejected(self):
        assert not analyze("for (i = 0; i < n; i++) x[i] = rand();").parallelizable

    def test_math_calls_pure(self):
        assert analyze("for (i = 0; i < n; i++) y[i] = sqrt(x[i]);").parallelizable

    def test_unknown_call_conservative_vs_pure(self):
        code = "for (i = 0; i < n; i++) y[i] = helper(x[i]);"
        assert not analyze(code, AnalysisPolicy(unknown_call="conservative")).parallelizable
        assert analyze(code, AnalysisPolicy(unknown_call="pure")).parallelizable

    def test_callee_side_effect_detected(self):
        code = ("void tally(int v) { hits += v; }\n"
                "for (i = 0; i < n; i++) tally(x[i]);")
        assert not analyze(code).parallelizable

    def test_pure_callee_accepted(self):
        code = ("double f(double v) { return v * v + 1; }\n"
                "for (i = 0; i < n; i++) y[i] = f(x[i]);")
        assert analyze(code).parallelizable

    def test_matmul_parallelizable_with_privates(self):
        code = ("for (i = 0; i < n; i++)\n"
                "  for (j = 0; j < n; j++) {\n"
                "    c[i][j] = 0;\n"
                "    for (k = 0; k < n; k++)\n"
                "      c[i][j] += a[i][k] * b[k][j];\n"
                "  }")
        a = analyze(code)
        assert a.parallelizable
        assert set(a.private) >= {"j", "k"}

    def test_profitability_skip(self):
        code = "for (i = 0; i < 8; i++) x[i] = 0;"
        a = analyze(code, AnalysisPolicy(min_literal_trip=16))
        assert not a.parallelizable
        assert a.skipped_unprofitable

    def test_profitability_symbolic_bound_not_skipped(self):
        code = "for (i = 0; i < n; i++) x[i] = 0;"
        assert analyze(code, AnalysisPolicy(min_literal_trip=16)).parallelizable

    def test_scanf_address_write_rejected(self):
        assert not analyze('for (i = 0; i < n; i++) fscanf(fp, "%d", &x[i]);').parallelizable

    def test_reduction_2d(self):
        code = ("for (i = 0; i < n; i++)\n"
                "  for (j = 0; j < m; j++)\n"
                "    s += a[i][j];")
        a = analyze(code)
        assert a.parallelizable
        assert ("+", "s") in a.reductions
        assert "j" in a.private


class TestCompilerEnvelopes:
    def test_cetus_fails_on_register(self):
        res = CetusLike().compile("register int r = 0;\nfor (i = 0; i < n; i++) x[i] = r;")
        assert not res.ok
        assert "register" in res.failure

    def test_cetus_fails_on_arrow(self):
        res = CetusLike().compile("for (i = 0; i < n; i++) s += p->v;")
        assert not res.ok

    def test_cetus_fails_on_macro(self):
        res = CetusLike().compile(
            "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++) x[i] = 0;")
        assert not res.ok
        assert "macro" in res.failure

    def test_cetus_timeout_on_long_snippet(self):
        body = "\n".join(f"  a{k}[i] = b[i] + {k};" for k in range(50))
        code = f"for (i = 0; i < n; i++) {{\n{body}\n}}"
        res = CetusLike().compile(code)
        assert not res.ok
        assert "timeout" in res.failure

    def test_par4all_fails_on_funcdefs(self):
        code = "double f(double v) { return v; }\nfor (i = 0; i < n; i++) y[i] = f(x[i]);"
        assert not Par4AllLike().compile(code).ok

    def test_autopar_fails_on_typedef_cast(self):
        code = "for (i = 0; i < n; i++) y[i] = (ssize_t) x[i];"
        assert not AutoParLike().compile(code).ok

    def test_autopar_plus_only_reductions(self):
        res = AutoParLike().compile("for (i = 0; i < n; i++) p *= x[i];")
        assert res.ok
        assert res.directive is None  # '*' reduction unsupported -> no insert

    def test_cetus_emits_reduction_clause(self):
        res = CetusLike().compile("for (i = 0; i < n; i++) s += x[i];")
        assert res.inserted
        assert "reduction(+:s)" in res.directive

    def test_emitted_directive_parses(self):
        from repro.clang.pragma import parse_pragma
        res = CetusLike().compile(
            "for (i = 0; i < n; i++) for (j = 0; j < m; j++) c[i][j] = 0;")
        assert res.inserted
        omp = parse_pragma(res.directive)
        assert omp.is_parallel_for
        assert "j" in omp.private_vars


class TestComPar:
    @pytest.fixture(scope="class")
    def compar(self):
        return ComPar()

    def test_parse_failure_only_when_all_fail(self, compar):
        # register breaks all three
        res = compar.run("register int r;\nfor (i = 0; i < n; i++) x[i] = r;")
        assert res.parse_failed
        # funcdef breaks Par4All only
        res2 = compar.run("double f(double v) { return v; }\n"
                          "for (i = 0; i < n; i++) y[i] = x[i];")
        assert not res2.parse_failed

    def test_priority_prefers_cetus(self, compar):
        res = compar.run("for (i = 0; i < n; i++) s += x[i];")
        assert res.inserted
        assert "reduction" in res.directive  # Cetus's richer directive won

    def test_fallback_negative_on_parse_failure(self, compar):
        preds, failures = compar.predict_directive(
            ["register int r;\nfor (i = 0; i < n; i++) x[i] = r;"])
        assert failures == 1
        assert preds[0] == 0

    def test_clause_predictions(self, compar):
        codes = [
            "for (i = 0; i < n; i++) s += x[i];",            # reduction
            "for (i = 0; i < n; i++) x[i] = y[i];",          # no reduction
        ]
        red, _ = compar.predict_reduction(codes)
        assert red.tolist() == [1, 0]
        priv, _ = compar.predict_private(codes)
        assert priv.tolist() == [1, 1]  # private(i) over-emission

    def test_paper_table1_example2(self, compar):
        """Unbalanced loop: ComPar cannot reason about MoreCalc/Calc."""
        res = compar.run("for (i = 0; i <= N; i++) if (MoreCalc(i)) Calc(i);")
        assert not res.parse_failed
        assert not res.inserted


class TestCorpusLevelShape:
    """The Table 8/9/10 behavioural signatures on a small corpus."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(CorpusConfig(n_records=500, seed=11))

    @pytest.fixture(scope="class")
    def directive_preds(self, corpus):
        compar = ComPar()
        codes = [r.code for r in corpus]
        labels = np.array([int(r.has_omp) for r in corpus])
        preds, failures = compar.predict_directive(codes)
        return preds, labels, failures

    def test_some_parse_failures(self, directive_preds):
        _, _, failures = directive_preds
        assert failures > 0

    def test_precision_clearly_imperfect(self, directive_preds):
        """ComPar inserts directives on unannotated-parallel negatives."""
        preds, labels, _ = directive_preds
        tp = ((preds == 1) & (labels == 1)).sum()
        fp = ((preds == 1) & (labels == 0)).sum()
        assert fp > 0
        precision = tp / (tp + fp)
        assert precision < 0.8

    def test_recall_imperfect(self, directive_preds):
        preds, labels, _ = directive_preds
        tp = ((preds == 1) & (labels == 1)).sum()
        fn = ((preds == 0) & (labels == 1)).sum()
        assert fn > 0
        assert tp / (tp + fn) > 0.5

    def test_deterministic(self, corpus):
        codes = [r.code for r in corpus.records[:40]]
        p1, _ = ComPar().predict_directive(codes)
        p2, _ = ComPar().predict_directive(codes)
        assert (p1 == p2).all()
