"""Numerical gradient checks for every layer's backward pass.

Each check perturbs inputs/parameters with central differences and compares
against the analytic gradients.  Dropout is disabled (eval mode) during
checks since its mask is resampled per forward.
"""

import numpy as np
import pytest

from repro.nn import (
    ClassificationHead,
    EncoderConfig,
    FeedForward,
    GELU,
    LayerNorm,
    Linear,
    MLMHead,
    MultiHeadSelfAttention,
    ReLU,
    TransformerEncoder,
    TransformerEncoderLayer,
    cross_entropy,
    masked_cross_entropy,
)
from repro.nn.layers import Embedding

from repro.nn.dtype import use_dtype

RNG = np.random.default_rng(0)
EPS = 1e-6
TOL = 1e-6


@pytest.fixture(autouse=True)
def _float64_for_gradchecks():
    """Central differences need float64; the substrate defaults to float32."""
    with use_dtype(np.float64):
        yield


def numeric_grad(f, x, eps=EPS):
    """Central-difference gradient of scalar f at array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_grad(module, x, mask=None, tol=TOL):
    """Verify d(sum(out))/dx via module.backward against finite differences."""
    module.eval()

    def loss():
        out = module.forward(x, mask) if mask is not None else module.forward(x)
        return float(out.sum())

    out = module.forward(x, mask) if mask is not None else module.forward(x)
    module.zero_grad()
    dx = module.backward(np.ones_like(out))
    num = numeric_grad(loss, x)
    np.testing.assert_allclose(dx, num, rtol=1e-4, atol=tol)


def check_param_grads(module, x, mask=None, tol=TOL):
    """Verify every parameter gradient against finite differences."""
    module.eval()

    def loss():
        out = module.forward(x, mask) if mask is not None else module.forward(x)
        return float(out.sum())

    out = module.forward(x, mask) if mask is not None else module.forward(x)
    module.zero_grad()
    module.backward(np.ones_like(out))
    for name, p in module.named_parameters():
        num = numeric_grad(loss, p.data)
        np.testing.assert_allclose(p.grad, num, rtol=1e-4, atol=tol,
                                   err_msg=f"param {name}")


class TestLinear:
    def test_input_grad(self):
        check_input_grad(Linear(5, 3, rng=1), RNG.normal(size=(4, 5)))

    def test_param_grads(self):
        check_param_grads(Linear(4, 3, rng=2), RNG.normal(size=(2, 4)))

    def test_3d_input(self):
        check_input_grad(Linear(4, 6, rng=3), RNG.normal(size=(2, 3, 4)))

    def test_no_bias(self):
        layer = Linear(3, 3, rng=4, bias=False)
        assert layer.b is None
        check_input_grad(layer, RNG.normal(size=(2, 3)))


class TestActivations:
    def test_relu_grad(self):
        check_input_grad(ReLU(), RNG.normal(size=(3, 4)) + 0.1)

    def test_gelu_grad(self):
        check_input_grad(GELU(), RNG.normal(size=(3, 4)))

    def test_gelu_matches_reference_values(self):
        g = GELU()
        out = g.forward(np.array([0.0, 1.0, -1.0]))
        np.testing.assert_allclose(out, [0.0, 0.8412, -0.1588], atol=1e-3)


class TestResidualLayerNorm:
    """Fused ``LN(x + sublayer)`` must match the analytic LayerNorm math
    for both residual inputs and both parameters."""

    def _check(self, d, shape):
        from repro.nn import ResidualLayerNorm

        rln = ResidualLayerNorm(d).eval()
        x = RNG.normal(size=shape)
        y = RNG.normal(size=shape)

        def loss():
            return float(rln.forward(x, y).sum())

        out = rln.forward(x, y)
        rln.zero_grad()
        ds = rln.backward(np.ones_like(out))
        # ds is the gradient w.r.t. the residual sum == either addend
        np.testing.assert_allclose(ds, numeric_grad(loss, x), rtol=1e-4, atol=TOL)
        np.testing.assert_allclose(ds, numeric_grad(loss, y), rtol=1e-4, atol=TOL)
        rln.forward(x, y)
        rln.zero_grad()
        rln.backward(np.ones_like(out))
        for name, p in rln.named_parameters():
            np.testing.assert_allclose(p.grad, numeric_grad(loss, p.data),
                                       rtol=1e-4, atol=TOL, err_msg=name)

    def test_2d(self):
        self._check(6, (3, 6))

    def test_3d(self):
        self._check(4, (2, 3, 4))

    def test_matches_unfused_layernorm(self):
        from repro.nn import LayerNorm, ResidualLayerNorm

        d = 8
        ln, rln = LayerNorm(d).eval(), ResidualLayerNorm(d).eval()
        gamma, beta = RNG.normal(size=d), RNG.normal(size=d)
        ln.gamma.data[...] = gamma
        rln.gamma.data[...] = gamma
        ln.beta.data[...] = beta
        rln.beta.data[...] = beta
        x, y = RNG.normal(size=(2, 5, d)), RNG.normal(size=(2, 5, d))
        np.testing.assert_allclose(rln.forward(x, y), ln.forward(x + y),
                                   rtol=1e-12, atol=1e-12)
        dy = RNG.normal(size=(2, 5, d))
        ln.zero_grad(); rln.zero_grad()
        np.testing.assert_allclose(rln.backward(dy.copy()), ln.backward(dy),
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(rln.gamma.grad, ln.gamma.grad, rtol=1e-10)
        np.testing.assert_allclose(rln.beta.grad, ln.beta.grad, rtol=1e-10)


class TestLayerNorm:
    def test_input_grad(self):
        check_input_grad(LayerNorm(6), RNG.normal(size=(3, 6)))

    def test_param_grads(self):
        check_param_grads(LayerNorm(5), RNG.normal(size=(2, 5)))

    def test_output_normalized(self):
        ln = LayerNorm(8)
        out = ln.forward(RNG.normal(size=(4, 8)) * 10 + 5)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_3d(self):
        check_input_grad(LayerNorm(4), RNG.normal(size=(2, 3, 4)))


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=0)
        ids = np.array([[1, 2], [3, 1]])
        out = emb.forward(ids)
        np.testing.assert_array_equal(out[0, 0], emb.W.data[1])
        np.testing.assert_array_equal(out[1, 1], emb.W.data[1])

    def test_grad_accumulates_repeated_ids(self):
        emb = Embedding(5, 3, rng=0)
        ids = np.array([[1, 1, 2]])
        out = emb.forward(ids)
        emb.zero_grad()
        emb.backward(np.ones_like(out))
        # id 1 appears twice -> its grad row is 2
        np.testing.assert_allclose(emb.W.grad[1], 2.0)
        np.testing.assert_allclose(emb.W.grad[2], 1.0)
        np.testing.assert_allclose(emb.W.grad[0], 0.0)


class TestAttention:
    def test_input_grad(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=0)
        check_input_grad(attn, RNG.normal(size=(2, 5, 8)))

    def test_param_grads(self):
        attn = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=1)
        check_param_grads(attn, RNG.normal(size=(1, 3, 4)), tol=1e-5)

    def test_masked_positions_ignored(self):
        """Changing a masked (padding) token's value must not change output
        at unmasked positions."""
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=2).eval()
        x = RNG.normal(size=(1, 4, 8))
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        out1 = attn.forward(x, mask)
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = attn.forward(x2, mask)
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_input_grad_with_mask(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=3)
        x = RNG.normal(size=(2, 4, 8))
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=float)
        check_input_grad(attn, x, mask=mask)

    def test_attention_rows_sum_to_one(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=4).eval()
        mask = np.array([[1, 1, 0, 0]], dtype=float)
        attn.forward(RNG.normal(size=(1, 4, 8)), mask)
        np.testing.assert_allclose(attn.last_attention.sum(axis=-1), 1.0, atol=1e-10)
        # no mass on padding keys
        assert attn.last_attention[..., 2:].max() < 1e-8


class TestFeedForwardAndLayer:
    def test_ffn_grads(self):
        ffn = FeedForward(6, 12, dropout=0.0, rng=0)
        check_input_grad(ffn, RNG.normal(size=(2, 3, 6)))

    def test_encoder_layer_input_grad(self):
        cfg = EncoderConfig(vocab_size=11, d_model=8, n_heads=2, n_layers=1,
                            d_ff=16, max_len=6, dropout=0.0)
        layer = TransformerEncoderLayer(cfg, rng=0)
        x = RNG.normal(size=(2, 4, 8))
        mask = np.ones((2, 4))
        check_input_grad(layer, x, mask=mask, tol=1e-5)


class TestEncoderEndToEnd:
    def test_full_model_param_grads_sampled(self):
        """End-to-end gradcheck through embeddings, 2 layers, and the head,
        on a sample of parameters (full check would be slow)."""
        cfg = EncoderConfig(vocab_size=13, d_model=8, n_heads=2, n_layers=2,
                            d_ff=12, max_len=7, dropout=0.0)
        enc = TransformerEncoder(cfg, rng=0).eval()
        head = ClassificationHead(8, 6, rng=1).eval()
        ids = np.array([[1, 5, 2, 0], [3, 4, 0, 0]])
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=float)
        labels = np.array([0, 1])

        def loss():
            hidden = enc.forward(ids, mask)
            logits = head.forward(hidden)
            val, _ = cross_entropy(logits, labels)
            return val

        hidden = enc.forward(ids, mask)
        logits = head.forward(hidden)
        _, dlogits = cross_entropy(logits, labels)
        enc.zero_grad(); head.zero_grad()
        enc.backward(head.backward(dlogits))

        rng = np.random.default_rng(7)
        for name, p in list(enc.named_parameters()) + list(head.named_parameters()):
            flat = p.data.reshape(-1)
            gflat = p.grad.reshape(-1)
            for idx in rng.choice(flat.size, size=min(3, flat.size), replace=False):
                orig = flat[idx]
                flat[idx] = orig + 1e-6
                f_plus = loss()
                flat[idx] = orig - 1e-6
                f_minus = loss()
                flat[idx] = orig
                num = (f_plus - f_minus) / 2e-6
                assert abs(gflat[idx] - num) < 1e-4, f"{name}[{idx}]: {gflat[idx]} vs {num}"

    def test_padding_invariance(self):
        """Extending a batch with more padding must not change CLS logits."""
        cfg = EncoderConfig(vocab_size=9, d_model=8, n_heads=2, n_layers=1,
                            d_ff=12, max_len=10, dropout=0.0)
        enc = TransformerEncoder(cfg, rng=0).eval()
        head = ClassificationHead(8, 4, rng=1).eval()
        ids_short = np.array([[1, 2, 3]])
        mask_short = np.ones((1, 3))
        ids_long = np.array([[1, 2, 3, 0, 0]])
        mask_long = np.array([[1, 1, 1, 0, 0]], dtype=float)
        l1 = head.forward(enc.forward(ids_short, mask_short))
        l2 = head.forward(enc.forward(ids_long, mask_long))
        np.testing.assert_allclose(l1, l2, atol=1e-8)


class TestLosses:
    def test_cross_entropy_grad(self):
        logits = RNG.normal(size=(4, 2))
        labels = np.array([0, 1, 1, 0])

        def f():
            val, _ = cross_entropy(logits, labels)
            return val

        _, d = cross_entropy(logits.copy(), labels)
        num = numeric_grad(f, logits)
        np.testing.assert_allclose(d, num, atol=1e-6)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, -100.0]])
        loss, _ = cross_entropy(logits, np.array([0]))
        assert loss < 1e-9

    def test_masked_ce_ignores_unmasked(self):
        logits = RNG.normal(size=(1, 4, 5))
        targets = np.array([[1, 2, 3, 4]])
        m = np.array([[1, 0, 0, 0]], dtype=float)
        loss, d = masked_cross_entropy(logits, targets, m)
        assert (d[0, 1:] == 0).all()
        assert loss > 0

    def test_masked_ce_empty_mask(self):
        logits = RNG.normal(size=(1, 3, 4))
        loss, d = masked_cross_entropy(logits, np.zeros((1, 3), dtype=int), np.zeros((1, 3)))
        assert loss == 0.0
        assert (d == 0).all()

    def test_masked_ce_grad(self):
        logits = RNG.normal(size=(2, 3, 4))
        targets = np.array([[1, 2, 0], [3, 0, 1]])
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=float)

        def f():
            val, _ = masked_cross_entropy(logits, targets, m)
            return val

        _, d = masked_cross_entropy(logits.copy(), targets, m)
        num = numeric_grad(f, logits)
        np.testing.assert_allclose(d, num, atol=1e-6)


class TestHeads:
    def test_classification_head_grad(self):
        head = ClassificationHead(6, 4, rng=0)
        check_input_grad(head, RNG.normal(size=(2, 3, 6)))

    def test_mlm_head_grad(self):
        head = MLMHead(5, 7, rng=0)
        check_input_grad(head, RNG.normal(size=(2, 3, 5)))
