"""Shared pytest fixtures.

The one suite-wide invariant enforced here: **no leaked shared-memory
segments**.  The sharded fleet's zero-copy data plane
(``repro.serve.shm_ring``) backs every ring with a named segment under
``/dev/shm``; the parent engine owns creation and unlinking, and
``ShardedEngine.close()`` must reclaim every segment even when the
workers died mid-request (chaos kills, supervisor terminations).  A test
that exits leaving a ``repro-ring-*`` segment behind has found a real
leak — fail loudly here rather than letting ``/dev/shm`` fill up over a
long CI run.
"""

import glob
import os

import pytest

from repro.serve.shm_ring import RING_NAME_PREFIX

_SHM_DIR = "/dev/shm"


def _ring_segments():
    if not os.path.isdir(_SHM_DIR):  # non-Linux: nothing to audit
        return set()
    return set(glob.glob(os.path.join(_SHM_DIR, f"{RING_NAME_PREFIX}-*")))


@pytest.fixture(autouse=True)
def no_ring_leaks():
    """Fail any test that leaks a ring segment it created.

    Segments that predate the test (another process, a prior aborted
    run) are ignored — the fixture only audits what the test added."""
    before = _ring_segments()
    yield
    leaked = _ring_segments() - before
    assert not leaked, (
        f"leaked shared-memory ring segments: {sorted(leaked)} — "
        "ShardedEngine.close() (or the test itself) must unlink every "
        "ring it creates")
