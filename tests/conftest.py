"""Shared pytest fixtures.

The one suite-wide invariant enforced here: **no leaked shared-memory
segments**.  Three subsystems back themselves with named segments under
``/dev/shm``: the sharded fleet's zero-copy data plane
(``repro.serve.shm_ring``, ``repro-ring-*``), the one-copy weight
segments (``repro.models.persistence``, ``repro-weights-*``), and the
data-parallel trainer (``repro.train.ddp``, ``repro-ddp-*``).  In all
three, the parent process owns creation and unlinking, and ``close()``
must reclaim every segment even when workers died mid-operation (chaos
kills, supervisor terminations, a rank dying mid-step, a worker holding
a weight mapping).  A test that exits leaving a segment behind has found
a real leak — fail loudly here rather than letting ``/dev/shm`` fill up
over a long CI run.
"""

import glob
import os

import pytest

from repro.models.persistence import WEIGHTS_NAME_PREFIX
from repro.serve.shm_ring import RING_NAME_PREFIX
from repro.train.ddp import DDP_NAME_PREFIX

_SHM_DIR = "/dev/shm"
_AUDITED_PREFIXES = (RING_NAME_PREFIX, WEIGHTS_NAME_PREFIX, DDP_NAME_PREFIX)


def _shm_segments():
    if not os.path.isdir(_SHM_DIR):  # non-Linux: nothing to audit
        return set()
    found = set()
    for prefix in _AUDITED_PREFIXES:
        found.update(glob.glob(os.path.join(_SHM_DIR, f"{prefix}-*")))
    return found


@pytest.fixture(autouse=True)
def no_ring_leaks():
    """Fail any test that leaks a shared-memory segment it created.

    Segments that predate the test (another process, a prior aborted
    run) are ignored — the fixture only audits what the test added."""
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, (
        f"leaked shared-memory segments: {sorted(leaked)} — "
        "ShardedEngine.close() / DataParallelTrainer.close() (or the test "
        "itself) must unlink every segment it creates")
