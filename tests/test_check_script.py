"""``scripts/check.sh`` behaves as documented, and CI mirrors it.

The CI workflow runs ``check.sh`` modes as its jobs, so this suite is the
drift guard between the three places a check can be defined: the script,
the workflow, and the docs.  The script is exercised for real — a stub
``python`` is injected via PATH that records its arguments and exits with
a scripted status — so the assertions cover the *actual* invocations each
mode selects, the explicit per-stage pass/fail banners, and the non-zero
exit on a failing stage (the old ``set -e`` subshell ambiguity this
replaced).
"""

import os
import stat
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECK_SH = REPO_ROOT / "scripts" / "check.sh"


@pytest.fixture()
def shim(tmp_path):
    """A PATH shim for ``python`` (and ``ruff``-free PATH) that logs every
    invocation to ``calls.log`` and exits with ``EXIT_STATUS`` (default
    0).  Returns (env, log_path)."""
    log = tmp_path / "calls.log"
    shim_dir = tmp_path / "bin"
    shim_dir.mkdir()
    stub = shim_dir / "python"
    stub.write_text(
        "#!/bin/sh\n"
        f'echo "python $@" >> "{log}"\n'
        'exit "${EXIT_STATUS:-0}"\n')
    stub.chmod(stub.stat().st_mode | stat.S_IEXEC)
    env = dict(os.environ)
    # shim first so check.sh's `python` resolves to the stub; drop any
    # real ruff from PATH so the lint stage deterministically takes the
    # fallback (python) branch
    env["PATH"] = f"{shim_dir}:{env['PATH']}"
    env.pop("EXIT_STATUS", None)
    return env, log


def _run(env, *args):
    return subprocess.run(["bash", str(CHECK_SH), *args],
                          env=env, capture_output=True, text=True,
                          timeout=60)


def _calls(log):
    return log.read_text().splitlines() if log.exists() else []


class TestModeInvocations:
    def test_fast_runs_tier1_only(self, shim):
        env, log = shim
        result = _run(env, "--fast")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == ["python -m pytest -x -q"]
        assert "check.sh: stage 'tier-1' passed" in result.stdout
        assert "all green" in result.stdout

    def test_docs_runs_docs_suite_only(self, shim):
        env, log = shim
        result = _run(env, "--docs")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == ["python -m pytest -x -q tests/test_docs_links.py"]
        assert "check.sh: stage 'docs' passed" in result.stdout

    def test_default_runs_lint_tier1_then_perf_smoke(self, shim):
        env, log = shim
        result = _run(env)
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        # ruff is absent in the shimmed PATH, so lint falls back to the
        # stdlib linter; then tier-1; then the named perf-smoke benches
        assert calls[0] == "python scripts/lint_fallback.py"
        assert calls[1] == "python -m pytest -x -q"
        assert calls[2].startswith("python -m pytest -q -m perf and smoke")
        assert "-p no:cacheprovider" in calls[2]
        assert "bench_" in calls[2]
        for stage in ("lint", "tier-1", "perf-smoke"):
            assert f"check.sh: stage '{stage}' passed" in result.stdout
        assert "all green (lint tier-1 perf-smoke)" in result.stdout

    def test_perf_mode_runs_smoke_subset_only(self, shim):
        env, log = shim
        result = _run(env, "--perf")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert len(calls) == 1 and "perf and smoke" in calls[0]

    def test_chaos_runs_fault_suite_only(self, shim):
        env, log = shim
        result = _run(env, "--chaos")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == ["python -m pytest -x -q tests/test_serve_faults.py"]
        assert "check.sh: stage 'chaos-smoke' passed" in result.stdout

    def test_ipc_runs_ring_suite_only(self, shim):
        env, log = shim
        result = _run(env, "--ipc")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert len(calls) == 1
        assert calls[0].startswith("python -m pytest -x -q "
                                   "tests/test_serve_ipc.py")
        assert "tests/test_serve_faults.py::TestRingFaults" in calls[0]
        assert "check.sh: stage 'ipc-stress' passed" in result.stdout

    def test_fuzz_runs_recovery_suite_scaled_up(self, shim):
        env, log = shim
        result = _run(env, "--fuzz")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == [
            "python -m pytest -x -q tests/test_clang_recovery.py"]
        assert "check.sh: stage 'fuzz-smoke' passed" in result.stdout

    def test_ddp_runs_determinism_suite_only(self, shim):
        env, log = shim
        result = _run(env, "--ddp")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == ["python -m pytest -x -q tests/test_train_ddp.py"]
        assert "check.sh: stage 'ddp-determinism' passed" in result.stdout

    def test_shm_weights_runs_one_copy_suite_only(self, shim):
        env, log = shim
        result = _run(env, "--shm-weights")
        assert result.returncode == 0, result.stderr
        calls = _calls(log)
        assert calls == ["python -m pytest -x -q "
                         "tests/test_persistence_blob.py "
                         "tests/test_weight_sharing.py"]
        assert "check.sh: stage 'shm-weights' passed" in result.stdout

    def test_unknown_mode_rejected(self, shim):
        env, _ = shim
        result = _run(env, "--bogus")
        assert result.returncode == 2
        assert "unknown mode" in result.stderr


class TestFailurePropagation:
    def test_failing_stage_exits_nonzero_with_named_banner(self, shim):
        """The regression this replaced: a failing stage must surface as a
        non-zero exit *and* name the stage, not vanish into `set -e`
        subshell semantics."""
        env, log = shim
        env["EXIT_STATUS"] = "3"
        result = _run(env, "--fast")
        assert result.returncode == 3
        assert "stage 'tier-1' FAILED (exit 3)" in result.stderr
        assert "all green" not in result.stdout

    def test_default_mode_stops_at_first_failing_stage(self, shim):
        env, log = shim
        env["EXIT_STATUS"] = "1"
        result = _run(env)
        assert result.returncode == 1
        # lint (the first stage) failed; tier-1 must not have run
        assert _calls(log) == ["python scripts/lint_fallback.py"]
        assert "stage 'lint' FAILED" in result.stderr

    def test_perf_smoke_subshell_failure_propagates(self, shim):
        """The perf-smoke stage runs in a `(cd benchmarks && ...)`
        subshell; its exit code must still fail the script."""
        env, log = shim
        env["EXIT_STATUS"] = "2"
        result = _run(env, "--perf")
        assert result.returncode == 2
        assert "stage 'perf-smoke' FAILED (exit 2)" in result.stderr


class TestCiWorkflowMirrorsCheckScript:
    """The workflow must delegate to check.sh modes (single source of
    truth) and cover every stage plus the bench gate."""

    @pytest.fixture(scope="class")
    def workflow(self):
        return (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()

    def test_workflow_exists_and_names_all_jobs(self, workflow):
        for job in ("tier1:", "perf-smoke:", "docs:", "lint:",
                    "chaos-smoke:", "ipc-stress:", "fuzz-smoke:",
                    "ddp-smoke:", "shm-weights:", "bench-gate:"):
            assert job in workflow, f"ci.yml missing job {job}"

    def test_workflow_invokes_check_sh_modes(self, workflow):
        for mode in ("scripts/check.sh --fast", "scripts/check.sh --perf",
                     "scripts/check.sh --docs", "scripts/check.sh --lint",
                     "scripts/check.sh --chaos", "scripts/check.sh --ipc",
                     "scripts/check.sh --fuzz", "scripts/check.sh --ddp",
                     "scripts/check.sh --shm-weights"):
            assert mode in workflow, f"ci.yml does not run {mode}"

    def test_workflow_runs_bench_gate(self, workflow):
        assert "python scripts/bench_gate.py" in workflow

    def test_workflow_sets_pythonpath_once(self, workflow):
        assert "PYTHONPATH: src" in workflow

    def test_workflow_caches_pip(self, workflow):
        assert "cache: pip" in workflow
        assert "requirements-ci.txt" in workflow

    def test_check_sh_documents_every_mode(self):
        """check.sh's own usage header must list the modes CI invokes."""
        script = CHECK_SH.read_text()
        for mode in ("--fast", "--docs", "--lint", "--perf", "--chaos",
                     "--ipc", "--fuzz", "--ddp", "--shm-weights"):
            assert mode in script
        assert "ruff check" in script
        assert "lint_fallback.py" in script
