"""The one-copy weight blob: save_advisor's contiguous arena + manifest.

``save_advisor`` writes, next to the per-head ``.npz`` checkpoints, one
``weights.bin`` blob holding every head's parameter arena back-to-back
plus a manifest entry (dtype, per-head offsets, blake2b digest).  The
contract under test:

* round trip — ``load_advisor(share=True)`` maps the blob into a named
  shared segment and the bound heads are bit-identical to eager loading;
* validation — a corrupt or truncated blob is a clean ``ValueError``,
  never silently-wrong weights;
* legacy fallback — checkpoints written before the blob era still load
  (eagerly), and ``share_weights`` reports ``None`` instead of raising.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.persistence import (
    WEIGHTS_NAME_PREFIX,
    _named_head_params,
    load_advisor,
    save_advisor,
    share_weights,
)
from repro.models.pragformer import PragFormerConfig
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
]

HEAD_NAMES = ("directive", "private", "reduction")


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)


def _heads(vocab, seed0=0):
    return {name: (PragFormer(len(vocab), replace(TINY, seed=seed0 + k),
                              rng=seed0 + k), vocab, TINY.max_len)
            for k, name in enumerate(HEAD_NAMES)}


@pytest.fixture()
def checkpoint(vocab, tmp_path):
    path = tmp_path / "ckpt"
    save_advisor(_heads(vocab), path)
    return path


def _flat_params(model):
    return np.concatenate([np.asarray(p.data).ravel()
                           for _name, p in _named_head_params(model)])


class TestBlobRoundTrip:
    def test_manifest_carries_weights_section(self, checkpoint):
        manifest = json.loads((checkpoint / "advisor.json").read_text())
        weights = manifest["weights"]
        assert weights["file"] == "weights.bin"
        assert set(weights["heads"]) == set(HEAD_NAMES)
        blob = checkpoint / "weights.bin"
        assert blob.exists()
        total = sum(h["words"] for h in weights["heads"].values())
        assert total == weights["total_words"]
        assert blob.stat().st_size == total * np.dtype(weights["dtype"]).itemsize

    def test_share_true_is_bit_identical_to_eager(self, checkpoint):
        eager = load_advisor(checkpoint)
        loaded, shared = load_advisor(checkpoint, share=True)
        assert shared is not None
        try:
            assert set(loaded) == set(eager)
            for name in eager:
                a = _flat_params(eager[name][0])
                b = _flat_params(loaded[name][0])
                assert np.array_equal(a, b), name
        finally:
            shared.close()
            shared.unlink()

    def test_shared_params_are_views_on_one_segment(self, checkpoint):
        loaded, shared = load_advisor(checkpoint, share=True)
        try:
            base = shared.head_view(HEAD_NAMES[0])
            model = loaded[HEAD_NAMES[0]][0]
            first = next(_named_head_params(model))[1]
            # binding re-points .data at the segment: mutating the view
            # must show through the parameter (proof there is no copy)
            probe = np.asarray(first.data).ravel()[0]
            base[0] = probe + 1.0
            assert np.asarray(first.data).ravel()[0] == probe + 1.0
        finally:
            shared.close()
            shared.unlink()

    def test_segment_attach_by_name(self, checkpoint):
        _, shared = load_advisor(checkpoint, share=True)
        try:
            assert shared.name.startswith(WEIGHTS_NAME_PREFIX)
            attached, handle = load_advisor(checkpoint, segment=shared.name)
            try:
                eager = load_advisor(checkpoint)
                for name in eager:
                    assert np.array_equal(_flat_params(eager[name][0]),
                                          _flat_params(attached[name][0]))
            finally:
                handle.close()
        finally:
            shared.close()
            shared.unlink()

    def test_share_weights_maps_without_models(self, checkpoint):
        shared = share_weights(checkpoint)
        assert shared is not None
        try:
            shared.validate()
            assert shared.nbytes > 0
        finally:
            shared.close()
            shared.unlink()


class TestBlobValidation:
    def test_corrupt_blob_raises(self, checkpoint):
        blob = checkpoint / "weights.bin"
        raw = bytearray(blob.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blob.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="digest"):
            load_advisor(checkpoint, share=True)

    def test_truncated_blob_raises(self, checkpoint):
        blob = checkpoint / "weights.bin"
        raw = blob.read_bytes()
        blob.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError):
            load_advisor(checkpoint, share=True)

    def test_missing_blob_raises(self, checkpoint):
        (checkpoint / "weights.bin").unlink()
        with pytest.raises(ValueError):
            load_advisor(checkpoint, share=True)

    def test_eager_load_ignores_blob_damage(self, checkpoint):
        """The default (non-shared) path reads the per-head .npz files
        only — blob damage must not break plain deserialization."""
        (checkpoint / "weights.bin").write_bytes(b"garbage")
        heads = load_advisor(checkpoint)
        assert set(heads) == set(HEAD_NAMES)


class TestLegacyFallback:
    @pytest.fixture()
    def legacy_checkpoint(self, checkpoint):
        """A pre-blob checkpoint: no weights.bin, no manifest section."""
        (checkpoint / "weights.bin").unlink()
        manifest_path = checkpoint / "advisor.json"
        manifest = json.loads(manifest_path.read_text())
        manifest.pop("weights")
        manifest_path.write_text(json.dumps(manifest))
        return checkpoint

    def test_share_true_falls_back_to_eager(self, legacy_checkpoint):
        heads, shared = load_advisor(legacy_checkpoint, share=True)
        assert shared is None
        assert set(heads) == set(HEAD_NAMES)

    def test_share_weights_returns_none(self, legacy_checkpoint):
        assert share_weights(legacy_checkpoint) is None

    def test_segment_mode_needs_blob_manifest(self, legacy_checkpoint):
        with pytest.raises(ValueError):
            load_advisor(legacy_checkpoint, segment="repro-weights-nope")
