"""Tests for the OpenMP pragma parser/unparser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang.pragma import (
    Clause,
    OmpDirective,
    PragmaError,
    REDUCTION_OPS,
    parse_pragma,
)


class TestParsing:
    def test_parallel_for(self):
        d = parse_pragma("#pragma omp parallel for")
        assert d.construct == "parallel for"
        assert d.is_parallel_for
        assert d.clauses == []

    def test_bare_for(self):
        assert parse_pragma("pragma omp for").is_parallel_for

    def test_parallel_alone_not_loop_directive(self):
        assert not parse_pragma("#pragma omp parallel").is_parallel_for

    def test_private_clause(self):
        d = parse_pragma("#pragma omp parallel for private(i, j)")
        assert d.private_vars == ("i", "j")
        assert d.has_private

    def test_reduction_clause(self):
        d = parse_pragma("#pragma omp parallel for reduction(+:sum)")
        assert d.reduction_specs == (("+", "sum"),)
        assert d.has_reduction

    def test_reduction_multiple_vars(self):
        d = parse_pragma("#pragma omp parallel for reduction(max: a, b)")
        assert d.reduction_specs == (("max", "a"), ("max", "b"))

    def test_schedule_static(self):
        d = parse_pragma("#pragma omp parallel for schedule(static)")
        assert d.schedule == ("static", None)

    def test_schedule_dynamic_chunk(self):
        d = parse_pragma("#pragma omp parallel for schedule(dynamic,4)")
        assert d.schedule == ("dynamic", 4)

    def test_nowait(self):
        d = parse_pragma("#pragma omp for nowait")
        assert d.has_nowait

    def test_combined_clauses(self):
        d = parse_pragma(
            "#pragma omp parallel for private(j) reduction(+:s) schedule(static) num_threads(8)"
        )
        assert d.has_private and d.has_reduction
        assert d.schedule == ("static", None)

    def test_task_construct(self):
        d = parse_pragma("#pragma omp task")
        assert d.construct == "task"
        assert not d.is_parallel_for

    def test_critical_and_barrier(self):
        assert parse_pragma("#pragma omp critical").construct == "critical"
        assert parse_pragma("#pragma omp barrier").construct == "barrier"

    def test_without_hash_prefix(self):
        d = parse_pragma("pragma omp parallel for private(i)")
        assert d.private_vars == ("i",)


class TestErrors:
    def test_non_omp_pragma(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma once")

    def test_unknown_construct(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma omp bogus_construct")

    def test_malformed_reduction(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma omp parallel for reduction(sum)")

    def test_unknown_reduction_op(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma omp parallel for reduction(@:s)")

    def test_unknown_schedule_kind(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma omp parallel for schedule(sometimes)")


class TestUnparse:
    def test_simple_roundtrip(self):
        text = "#pragma omp parallel for private(i, j) reduction(+:sum)"
        assert parse_pragma(parse_pragma(text).unparse()).unparse() == parse_pragma(text).unparse()

    def test_unparse_contains_all_clauses(self):
        d = OmpDirective(
            "parallel for",
            [Clause("private", ("i",)), Clause("schedule", ("dynamic", "4")), Clause("nowait")],
        )
        text = d.unparse()
        assert "private(i)" in text
        assert "schedule(dynamic, 4)" in text
        assert text.endswith("nowait")


var_names = st.sampled_from(["i", "j", "k", "sum", "acc", "tmp"])


class TestProperties:
    @given(
        st.lists(var_names, min_size=1, max_size=3, unique=True),
        st.sampled_from(sorted(REDUCTION_OPS)),
        var_names,
    )
    @settings(max_examples=50)
    def test_constructed_directive_roundtrips(self, priv, op, red_var):
        d = OmpDirective(
            "parallel for",
            [Clause("private", tuple(priv)), Clause("reduction", (f"{op}:{red_var}",))],
        )
        parsed = parse_pragma(d.unparse())
        assert parsed.private_vars == tuple(priv)
        assert parsed.reduction_specs == ((op, red_var),)

    @given(st.sampled_from(["static", "dynamic", "guided"]), st.integers(1, 64))
    @settings(max_examples=25)
    def test_schedule_roundtrip(self, kind, chunk):
        d = OmpDirective("parallel for", [Clause("schedule", (kind, str(chunk)))])
        assert parse_pragma(d.unparse()).schedule == (kind, chunk)
