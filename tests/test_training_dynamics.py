"""Training-dynamics tests: overfitting capacity, MLM loss baselines,
dropout behaviour, and gradient clipping engagement."""

import numpy as np

from repro.data.encoding import EncodedSplit
from repro.models import MLMConfig, MLMPretrainer, PragFormer, PragFormerConfig
from repro.nn import EncoderConfig
from repro.tokenize import Vocab

CFG = PragFormerConfig(d_model=32, n_heads=2, n_layers=1, d_ff=64,
                       d_head_hidden=16, max_len=16, batch_size=16, seed=0)


def random_split(seed, n=48, length=12, vocab=20):
    gen = np.random.default_rng(seed)
    ids = gen.integers(4, vocab, size=(n, length)).astype(np.int64)
    ids[:, 0] = 2
    labels = gen.integers(0, 2, size=n).astype(np.int64)
    return EncodedSplit(ids, np.ones((n, length)), labels)


class TestOverfitting:
    def test_memorizes_random_labels(self):
        """A transformer with enough steps must drive training loss toward
        zero even on random labels — the classic capacity sanity check."""
        split = random_split(0, n=32)
        model = PragFormer(20, CFG)
        history = model.fit(split, epochs=40)
        assert history.train_loss[-1] < 0.15
        assert (model.predict(split) == split.labels).mean() > 0.95


class TestMLMDynamics:
    def test_loss_beats_uniform_baseline_on_structured_data(self):
        vocab = Vocab.build([[f"tok{k}" for k in range(30)]])
        enc_cfg = EncoderConfig(vocab_size=len(vocab), d_model=16, n_heads=2,
                                n_layers=1, d_ff=32, max_len=16)
        # fully positional data: token at position j is always 4 + (j % 6),
        # so a masked position is predictable from its position embedding
        positions = np.arange(16)
        ids = np.tile(4 + (positions % 6), (64, 1)).astype(np.int64)
        ids[:, 0] = vocab.cls_id
        mask = np.ones((64, 16))
        pre = MLMPretrainer(enc_cfg, vocab, MLMConfig(batch_size=16), rng=0)
        losses = pre.fit(ids, mask, epochs=6)
        uniform = np.log(len(vocab))
        assert losses[-1] < uniform
        assert losses[-1] < losses[0]


class TestDropoutBehaviour:
    def test_train_mode_is_stochastic_eval_is_not(self):
        split = random_split(2, n=8)
        model = PragFormer(20, CFG)
        model.encoder.train()
        model.head.train()
        logits_a = model._forward_logits(split.ids, split.mask)
        logits_b = model._forward_logits(split.ids, split.mask)
        assert not np.allclose(logits_a, logits_b)
        p1 = model.predict_proba(split)
        p2 = model.predict_proba(split)
        np.testing.assert_array_equal(p1, p2)


class TestGradClip:
    def test_clip_engages_on_large_loss(self):
        from repro.nn import clip_grad_norm
        from repro.nn.losses import cross_entropy

        split = random_split(3, n=16)
        model = PragFormer(20, CFG)
        logits = model._forward_logits(split.ids, split.mask)
        # inflate gradients artificially
        _, dlogits = cross_entropy(logits * 50, split.labels)
        for p in model._params():
            p.zero_grad()
        model._backward(dlogits * 100)
        norm_before = clip_grad_norm(model._params(), max_norm=1.0)
        norm_after = clip_grad_norm(model._params(), max_norm=1.0)
        assert norm_before > 1.0
        assert norm_after <= 1.0 + 1e-6
