"""Tests for the multi-model registry and combined advise_full path."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data.encoding import encode_batch
from repro.models import PragFormer, load_advisor, save_advisor
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    EngineConfig,
    FullAdvice,
    ModelRegistry,
    MultiModelEngine,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
]


def _head(seed, snippets=SNIPPETS):
    """A tiny (model, vocab) pair; different seeds give different heads."""
    vocab = Vocab.build([text_tokens(code) for code in snippets], min_freq=1)
    return PragFormer(len(vocab), replace(TINY, seed=seed), rng=seed), vocab


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    for seed, name in enumerate(("directive", "private", "reduction")):
        model, vocab = _head(seed)
        reg.register(name, model, vocab, max_len=TINY.max_len)
    return reg


@pytest.fixture()
def advisor(registry):
    return MultiModelEngine(registry, config=EngineConfig(max_batch_size=8))


class TestModelRegistry:
    def test_names_and_clauses(self, registry):
        assert registry.names() == ["directive", "private", "reduction"]
        assert registry.clause_names() == ["private", "reduction"]
        assert "private" in registry
        assert len(registry) == 3

    def test_get_unknown_head(self, registry):
        with pytest.raises(KeyError, match="no head 'shared'"):
            registry.get("shared")

    def test_invalid_head_name_rejected(self, registry):
        model, vocab = _head(9)
        # same filesystem-safety rule save_advisor enforces, so a serving
        # registry can always be checkpointed
        for bad in ("bad/name", "bad\\name", "up..dir", " padded", ""):
            with pytest.raises(ValueError):
                ModelRegistry().register(bad, model, vocab)

    def test_engine_requires_directive_head(self):
        reg = ModelRegistry()
        model, vocab = _head(1)
        reg.register("private", model, vocab)
        with pytest.raises(ValueError, match="directive"):
            MultiModelEngine(reg)


class TestAdviseFull:
    def test_shape_and_types(self, advisor):
        full = advisor.advise_full(SNIPPETS[0])
        assert isinstance(full, FullAdvice)
        assert set(full.clauses) == {"private", "reduction"}
        body = full.as_dict()
        assert set(body) == {"needs_directive", "p_directive", "clauses",
                             "recommended_clauses", "degraded"}
        assert body["degraded"] is False  # a real prediction, not a stub
        for clause in body["clauses"].values():
            assert set(clause) == {"probability", "suggested"}

    def test_clause_head_parity_with_direct_predict(self, advisor, registry):
        """Engine output must equal the clause model's own predict_proba."""
        full = advisor.advise_full_many(SNIPPETS)
        for name in ("private", "reduction"):
            head = registry.get(name)
            split = encode_batch([text_tokens(c) for c in SNIPPETS],
                                 head.vocab, head.max_len)
            direct = head.model.predict_proba(split)[:, 1]
            engine_probs = [f.clauses[name].probability for f in full]
            np.testing.assert_allclose(engine_probs, direct, atol=1e-5)

    def test_directive_parity_with_single_head_paths(self, advisor):
        full = advisor.advise_full_many(SNIPPETS)
        directive_only = advisor.advise_many(SNIPPETS)
        assert [f.directive for f in full] == directive_only

    def test_clauses_only_recommended_when_directive_positive(self, advisor):
        for full in advisor.advise_full_many(SNIPPETS):
            if not full.directive.needs_directive:
                assert full.recommended_clauses() == []
            else:
                assert full.recommended_clauses() == [
                    n for n, c in full.clauses.items() if c.suggested]

    def test_precomputed_directive_skips_rescoring(self, advisor):
        directive = advisor.advise_many(SNIPPETS)
        before = advisor.directive_engine.stats.requests
        full = advisor.advise_full_many(SNIPPETS, directive=directive)
        # the directive head saw no new requests; verdicts are passed through
        assert advisor.directive_engine.stats.requests == before
        assert [f.directive for f in full] == directive
        with pytest.raises(ValueError, match="1:1"):
            advisor.advise_full_many(SNIPPETS, directive=directive[:1])

    def test_snippets_lexed_once_across_heads(self, registry):
        calls = []

        def counting_tokenizer(code):
            calls.append(code)
            return text_tokens(code)

        with MultiModelEngine(registry, tokenizer=counting_tokenizer) as eng:
            eng.advise_full_many(SNIPPETS * 2)
            eng.advise_full_many(SNIPPETS)
        # three heads, repeated traffic: each distinct snippet lexed once
        assert len(calls) == len(SNIPPETS)
        assert eng.lex_memo.lexed == len(SNIPPETS)

    def test_stats_structure(self, advisor):
        advisor.advise_full_many(SNIPPETS)
        stats = advisor.stats()
        assert set(stats["heads"]) == {"directive", "private", "reduction"}
        combined = stats["combined"]
        assert combined["requests"] == 3 * len(SNIPPETS)
        assert stats["snippets_lexed"] == len(SNIPPETS)
        assert sum(combined["batch_size_hist"].values()) == combined["batches"]


class TestClauseGating:
    """Cross-request clause gating: directive-negative traffic skips the
    clause heads; snippets that fan out get identical verdicts."""

    def _gated(self, registry, margin):
        return MultiModelEngine(registry, config=EngineConfig(
            max_batch_size=8, gate_margin=margin))

    def test_gated_and_ungated_agree_on_fanned_snippets(self, registry,
                                                        advisor):
        ungated = advisor.advise_full_many(SNIPPETS)
        with self._gated(registry, 0.0) as gated_engine:
            gated = gated_engine.advise_full_many(SNIPPETS)
        for u, g in zip(ungated, gated):
            assert g.directive == u.directive
            if g.clauses:  # fanned out: clause verdicts must be identical
                for name in u.clauses:
                    np.testing.assert_allclose(
                        g.clauses[name].probability,
                        u.clauses[name].probability, atol=1e-6)
            else:          # gated out: only directive-negative snippets
                assert not g.directive.needs_directive
            assert g.recommended_clauses() == u.recommended_clauses()

    def test_negative_snippets_skip_clause_heads(self, registry, advisor):
        directive = advisor.advise_many(SNIPPETS)
        n_negative = sum(not a.needs_directive for a in directive)
        n_positive = len(SNIPPETS) - n_negative
        assert n_negative, "workload must contain directive-negative snippets"
        with self._gated(registry, 0.0) as engine:
            engine.advise_full_many(SNIPPETS)
            stats = engine.stats()
            for name in ("private", "reduction"):
                assert stats["heads"][name]["requests"] == n_positive
            gating = stats["clause_gating"]
            assert gating["enabled"] is True
            assert gating["gated_snippets"] == n_negative
            assert gating["fanned_out"] == n_positive

    def test_margin_keeps_near_threshold_snippets(self, registry, advisor):
        """With a margin spanning the whole [0, 1] range every snippet
        fans out, however negative its directive verdict."""
        with self._gated(registry, 0.5) as engine:
            full = engine.advise_full_many(SNIPPETS)
            assert all(set(f.clauses) == {"private", "reduction"}
                       for f in full)
            assert engine.stats()["clause_gating"]["gated_snippets"] == 0

    def test_async_path_gates_identically(self, registry, advisor):
        expected = advisor.advise_full_many(SNIPPETS)
        with self._gated(registry, 0.0) as engine:
            for code, exp in zip(SNIPPETS, expected):
                got = engine.advise_full_async(code, timeout=30)
                np.testing.assert_allclose(got.directive.probability,
                                           exp.directive.probability,
                                           atol=1e-6)
                if exp.directive.needs_directive:
                    assert set(got.clauses) == set(exp.clauses)
                    for name in exp.clauses:
                        np.testing.assert_allclose(
                            got.clauses[name].probability,
                            exp.clauses[name].probability, atol=1e-6)
                else:
                    assert got.clauses == {}

    def test_gating_disabled_by_default(self, advisor):
        advisor.advise_full_many(SNIPPETS)
        gating = advisor.stats()["clause_gating"]
        assert gating["enabled"] is False
        assert gating["gated_snippets"] == 0

    def test_gate_margin_validation(self):
        with pytest.raises(ValueError, match="gate_margin"):
            EngineConfig(gate_margin=-0.1)
        with pytest.raises(ValueError, match="gate_margin"):
            EngineConfig(gate_margin=0.6)


class TestFromContext:
    def test_builds_all_three_heads_from_trained_context(self):
        """The CLI path: registry over a (tiny) trained experiment context."""
        from repro.pipeline.config import ScaleConfig
        from repro.pipeline.context import ExperimentContext

        scale = ScaleConfig(
            name="tiny-serve-test", corpus_records=80, epochs=1, mlm_epochs=1,
            pragformer=replace(TINY, max_len=64, batch_size=16), min_freq=1)
        registry = ModelRegistry.from_context(ExperimentContext(scale))
        assert registry.names() == ["directive", "private", "reduction"]
        with MultiModelEngine(registry) as advisor:
            full = advisor.advise_full("for (i = 0; i < n; i++) s += a[i];")
        body = full.as_dict()
        assert set(body["clauses"]) == {"private", "reduction"}
        assert 0.0 <= body["p_directive"] <= 1.0


class TestAdvisorCheckpoint:
    def test_save_load_roundtrip(self, registry, advisor, tmp_path):
        expected = advisor.advise_full_many(SNIPPETS)
        registry.save(tmp_path / "advisor")
        reloaded = ModelRegistry.from_checkpoint(tmp_path / "advisor")
        assert reloaded.names() == registry.names()
        with MultiModelEngine(reloaded) as eng:
            got = eng.advise_full_many(SNIPPETS)
        for a, b in zip(expected, got):
            assert a.directive.needs_directive == b.directive.needs_directive
            np.testing.assert_allclose(a.directive.probability,
                                       b.directive.probability, atol=1e-5)
            for name in a.clauses:
                np.testing.assert_allclose(a.clauses[name].probability,
                                           b.clauses[name].probability,
                                           atol=1e-5)

    def test_roundtrip_preserves_serving_max_len(self, tmp_path):
        """A serving max_len different from the model's own config.max_len
        must survive save -> from_checkpoint."""
        model, vocab = _head(5)
        registry = ModelRegistry()
        assert model.config.max_len != 20
        registry.register("directive", model, vocab, max_len=20)
        registry.save(tmp_path / "ckpt")
        reloaded = ModelRegistry.from_checkpoint(tmp_path / "ckpt")
        assert reloaded.get("directive").max_len == 20

    def test_load_advisor_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_advisor(tmp_path)

    def test_save_advisor_rejects_unsafe_names(self, tmp_path):
        model, vocab = _head(3)
        with pytest.raises(ValueError):
            save_advisor({"../escape": (model, vocab)}, tmp_path)
