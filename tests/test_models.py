"""Tests for PragFormer, MLM pretraining, and the BoW baseline."""

import numpy as np
import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.data import encode_dataset, make_directive_dataset
from repro.data.encoding import EncodedSplit
from repro.models import (
    BowConfig,
    BowLogistic,
    MLMConfig,
    MLMPretrainer,
    PragFormer,
    PragFormerConfig,
    mask_tokens,
)
from repro.models.pragformer import _length_bucketed_batches, trim_batch
from repro.nn import EncoderConfig
from repro.tokenize import Representation, Vocab

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=64, batch_size=16, seed=0)


@pytest.fixture(scope="module")
def encoded():
    corpus = build_corpus(CorpusConfig(n_records=400, seed=21))
    splits = make_directive_dataset(corpus, rng=0)
    return encode_dataset(splits, Representation.TEXT, max_len=64, min_freq=2)


def toy_split(rng, n=64, length=8, vocab=12):
    """Synthetic linearly-separable data: label = presence of token 5."""
    gen = np.random.default_rng(rng)
    ids = gen.integers(6, vocab, size=(n, length))
    labels = gen.integers(0, 2, size=n)
    ids[labels == 1, 1 + gen.integers(0, length - 1)] = 5
    ids[:, 0] = 2  # CLS
    mask = np.ones((n, length))
    return EncodedSplit(ids.astype(np.int64), mask, labels.astype(np.int64))


class TestTrimAndBucketing:
    def test_trim_removes_padding_columns(self):
        ids = np.array([[2, 5, 0, 0], [2, 5, 6, 0]])
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 0]], dtype=float)
        t_ids, t_mask = trim_batch(ids, mask)
        assert t_ids.shape == (2, 3)
        assert t_mask.shape == (2, 3)

    def test_trim_handles_all_empty(self):
        ids = np.zeros((2, 4), dtype=np.int64)
        mask = np.zeros((2, 4))
        t_ids, _ = trim_batch(ids, mask)
        assert t_ids.shape[1] == 1

    def test_bucketed_batches_cover_every_index_once(self):
        lengths = np.random.default_rng(0).integers(3, 60, size=101).astype(float)
        batches = _length_bucketed_batches(lengths, 16, np.random.default_rng(1))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(101))

    def test_bucketed_batches_group_similar_lengths(self):
        lengths = np.arange(128).astype(float)
        batches = _length_bucketed_batches(lengths, 16, np.random.default_rng(0))
        spreads = [lengths[b].max() - lengths[b].min() for b in batches]
        assert np.mean(spreads) < 40  # windows of 8 batches bound the spread


class TestPragFormer:
    def test_learns_separable_toy_task(self):
        train = toy_split(0, n=128)
        model = PragFormer(12, TINY)
        model.fit(train, epochs=8)
        acc = (model.predict(train) == train.labels).mean()
        assert acc > 0.95

    def test_history_lengths(self):
        train, val = toy_split(1), toy_split(2)
        model = PragFormer(12, TINY)
        hist = model.fit(train, val, epochs=3)
        assert len(hist.train_loss) == 3
        assert len(hist.valid_loss) == 3
        assert len(hist.valid_accuracy) == 3

    def test_train_loss_decreases(self):
        train = toy_split(3, n=128)
        hist = PragFormer(12, TINY).fit(train, epochs=6)
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_best_epoch(self):
        from repro.models import TrainHistory
        h = TrainHistory(valid_loss=[0.9, 0.4, 0.6])
        assert h.best_epoch() == 1
        with pytest.raises(ValueError):
            TrainHistory().best_epoch()

    def test_predict_proba_shape_and_range(self):
        split = toy_split(4)
        model = PragFormer(12, TINY)
        proba = model.predict_proba(split)
        assert proba.shape == (len(split), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-5)

    def test_predict_order_preserved_under_length_sorting(self):
        """predict_proba sorts by length internally; outputs must map back."""
        gen = np.random.default_rng(5)
        n = 40
        ids = np.full((n, 32), 0, dtype=np.int64)
        mask = np.zeros((n, 32))
        lengths = gen.integers(2, 32, size=n)
        for i, l in enumerate(lengths):
            ids[i, :l] = gen.integers(4, 12, size=l)
            mask[i, :l] = 1
        split = EncodedSplit(ids, mask, np.zeros(n, dtype=np.int64))
        model = PragFormer(12, TINY)
        p_batched = model.predict_proba(split, batch_size=7)
        p_single = np.vstack([
            model.predict_proba(EncodedSplit(ids[i:i+1], mask[i:i+1],
                                             split.labels[i:i+1]))
            for i in range(n)
        ])
        np.testing.assert_allclose(p_batched, p_single, atol=1e-4)

    def test_deterministic_training(self):
        def run():
            model = PragFormer(12, TINY)
            model.fit(toy_split(6), epochs=2)
            return model.predict_proba(toy_split(6))

        np.testing.assert_array_equal(run(), run())

    def test_real_corpus_beats_chance(self, encoded):
        model = PragFormer(len(encoded.vocab), TINY)
        model.fit(encoded.train, epochs=4)
        _, acc = model.evaluate(encoded.test)
        assert acc > 0.6

    def test_evaluate_returns_loss_and_acc(self, encoded):
        model = PragFormer(len(encoded.vocab), TINY)
        loss, acc = model.evaluate(encoded.validation)
        assert loss > 0
        assert 0 <= acc <= 1


class TestMLM:
    def test_mask_tokens_recipe(self):
        vocab = Vocab.build([["a", "b", "c", "d"]])
        rng = np.random.default_rng(0)
        ids = np.full((50, 20), vocab.token_to_id("a"), dtype=np.int64)
        ids[:, 0] = vocab.cls_id
        mask = np.ones((50, 20))
        cfg = MLMConfig(mask_prob=0.5)
        corrupted, targets, loss_mask = mask_tokens(ids, mask, vocab, rng, cfg)
        assert (targets == ids).all()
        assert loss_mask[:, 0].sum() == 0  # CLS never selected
        sel_frac = loss_mask.mean()
        assert 0.35 < sel_frac < 0.6
        masked_frac = (corrupted == vocab.mask_id)[loss_mask.astype(bool)].mean()
        assert 0.7 < masked_frac < 0.9

    def test_mask_tokens_never_touches_padding(self):
        vocab = Vocab.build([["a"]])
        rng = np.random.default_rng(1)
        ids = np.zeros((10, 8), dtype=np.int64)
        mask = np.zeros((10, 8))
        _, _, loss_mask = mask_tokens(ids, mask, vocab, rng, MLMConfig(mask_prob=1.0))
        assert loss_mask.sum() == 0

    def test_pretraining_reduces_loss(self, encoded):
        cfg = EncoderConfig(vocab_size=len(encoded.vocab), d_model=16, n_heads=2,
                            n_layers=1, d_ff=32, max_len=64)
        pre = MLMPretrainer(cfg, encoded.vocab, MLMConfig(batch_size=16), rng=0)
        losses = pre.fit(encoded.train.ids, encoded.train.mask, epochs=3)
        assert losses[-1] < losses[0]

    def test_gathered_head_matches_dense_masked_ce(self, encoded):
        """The masked-position gather in ``fit`` must produce the same loss
        and encoder gradient as the dense (B, L, V) head +
        ``masked_cross_entropy`` formulation it replaced."""
        from repro.nn import cross_entropy, masked_cross_entropy

        cfg = EncoderConfig(vocab_size=len(encoded.vocab), d_model=16,
                            n_heads=2, n_layers=1, d_ff=32, max_len=64)
        pre = MLMPretrainer(cfg, encoded.vocab, MLMConfig(batch_size=16), rng=0)
        ids = encoded.train.ids[:16]
        mask = encoded.train.mask[:16]
        rng = np.random.default_rng(9)
        corrupted, targets, loss_mask = mask_tokens(ids, mask, encoded.vocab,
                                                    rng, pre.cfg)
        pre.encoder.eval()
        pre.mlm_head.eval()
        hidden = pre.encoder.forward(corrupted, mask)

        # dense reference
        dense_logits = pre.mlm_head.forward(hidden)
        dense_loss, dense_dlogits = masked_cross_entropy(
            dense_logits, targets, loss_mask)
        pre.mlm_head.zero_grad()
        dense_dhidden = pre.mlm_head.backward(dense_dlogits)
        dense_grad = pre.mlm_head.proj.W.grad.copy()

        # gathered path (what fit() runs)
        d = hidden.shape[-1]
        selected = np.flatnonzero(loss_mask.reshape(-1))
        assert selected.size > 0
        sel_logits = pre.mlm_head.forward(hidden.reshape(-1, d)[selected])
        loss, dsel = cross_entropy(sel_logits, targets.reshape(-1)[selected])
        pre.mlm_head.zero_grad()
        dsel_hidden = pre.mlm_head.backward(dsel)
        gathered_dhidden = np.zeros_like(dense_dhidden)
        gathered_dhidden.reshape(-1, d)[selected] = dsel_hidden

        assert loss == pytest.approx(dense_loss, rel=1e-5)
        np.testing.assert_allclose(gathered_dhidden, dense_dhidden,
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(pre.mlm_head.proj.W.grad, dense_grad,
                                   rtol=1e-4, atol=1e-7)

    def test_pretrained_state_loads_into_pragformer(self, encoded):
        cfg = EncoderConfig(vocab_size=len(encoded.vocab), d_model=16, n_heads=2,
                            n_layers=1, d_ff=32, max_len=64)
        pre = MLMPretrainer(cfg, encoded.vocab, rng=0)
        state = pre.encoder_state()
        model = PragFormer(len(encoded.vocab), TINY)
        model.load_pretrained_encoder(state)
        for name, p in model.encoder.named_parameters():
            np.testing.assert_array_equal(p.data, state[name])


class TestBow:
    def test_learns_separable_toy_task(self):
        train = toy_split(7, n=200)
        bow = BowLogistic(12, BowConfig()).fit(train)
        assert (bow.predict(train) == train.labels).mean() > 0.95

    def test_order_invariance(self):
        """BoW must give identical predictions for permuted token order."""
        gen = np.random.default_rng(8)
        ids = gen.integers(4, 12, size=(1, 16))
        perm = ids.copy()
        perm[0] = gen.permutation(perm[0])
        mask = np.ones((1, 16))
        labels = np.zeros(1, dtype=np.int64)
        bow = BowLogistic(12)
        bow.w = gen.normal(size=12)
        p1 = bow.predict_proba(EncodedSplit(ids, mask, labels))
        p2 = bow.predict_proba(EncodedSplit(perm, mask, labels))
        np.testing.assert_allclose(p1, p2, atol=1e-12)

    def test_specials_except_unk_excluded_from_counts(self):
        # PAD(0)/CLS(2)/MASK(3) never count; UNK(1) does (OOV-rate feature)
        ids = np.array([[2, 0, 3, 0]])
        mask = np.ones((1, 4))
        bow = BowLogistic(12)
        bow.w = np.ones(12)
        bow.b = 0.0
        proba = bow.predict_proba(EncodedSplit(ids, mask, np.zeros(1, dtype=np.int64)))
        assert proba[0, 1] == pytest.approx(0.5)  # zero activation -> sigmoid(0)

    def test_unk_counts_as_feature(self):
        ids = np.array([[2, 1, 1, 0]])
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        bow = BowLogistic(12)
        bow.w = np.zeros(12)
        bow.w[1] = 4.0
        proba = bow.predict_proba(EncodedSplit(ids, mask, np.zeros(1, dtype=np.int64)))
        assert proba[0, 1] > 0.9

    def test_real_corpus_beats_chance(self, encoded):
        bow = BowLogistic(len(encoded.vocab)).fit(encoded.train)
        acc = (bow.predict(encoded.test) == encoded.test.labels).mean()
        assert acc > 0.6

    def test_top_weighted_tokens(self, encoded):
        bow = BowLogistic(len(encoded.vocab)).fit(encoded.train)
        pos, neg = bow.top_weighted_tokens(encoded.vocab, k=5)
        assert len(pos) == 5 and len(neg) == 5
        assert pos[0][1] >= pos[-1][1]
        assert neg[0][1] <= neg[-1][1]
