"""Integration tests pinning behaviours the paper states explicitly —
table-level ground truths that must hold regardless of scale or seed."""

import numpy as np

from repro.clang import parse
from repro.clang.pragma import parse_pragma
from repro.corpus import CorpusConfig, build_corpus
from repro.s2s import AnalysisPolicy, CetusLike, ComPar
from repro.tokenize import Representation, replace_identifiers_in_code, represent, text_tokens


class TestTable6Representations:
    """Table 6's example row-by-row."""

    CODE = "for (i = 0; i < len; i++) a[i] = i;"

    def test_text_row(self):
        assert represent(self.CODE, Representation.TEXT) == self.CODE

    def test_replaced_text_row(self):
        toks = text_tokens(represent(self.CODE, Representation.R_TEXT))
        # paper: for (var0 = 0; var0 < var1; var0++) arr0[var0] = var0;
        assert toks == ["for", "(", "var0", "=", "0", ";", "var0", "<", "var1",
                        ";", "var0", "++", ")", "arr0", "[", "var0", "]", "=",
                        "var0", ";"]

    def test_ast_row(self):
        ast_text = represent(self.CODE, Representation.AST)
        assert ast_text == ("For: Assignment: = ID: i Constant: int, 0 "
                            "BinaryOp: < ID: i ID: len UnaryOp: p++ ID: i "
                            "Assignment: = ArrayRef: ID: a ID: i ID: i")

    def test_replaced_ast_row(self):
        r_ast = represent(self.CODE, Representation.R_AST)
        assert r_ast == ("For: Assignment: = ID: var0 Constant: int, 0 "
                         "BinaryOp: < ID: var0 ID: var1 UnaryOp: p++ ID: var0 "
                         "Assignment: = ArrayRef: ID: arr0 ID: var0 ID: var0")


class TestSection2Claims:
    def test_s2s_no_schedule_dynamic_ever(self):
        """§1: 'S2S compilers will not make use of the schedule(dynamic)
        directive' — no emitted directive may carry one."""
        corpus = build_corpus(CorpusConfig(n_records=120, seed=2))
        compar = ComPar()
        for rec in corpus:
            result = compar.run(rec.code)
            if result.inserted:
                omp = parse_pragma(result.directive)
                assert omp.schedule is None or omp.schedule[0] != "dynamic"

    def test_first_touch_profitability_pitfall(self):
        """§5.2: 'in loops with a low iteration count, Cetus didn't insert an
        OpenMP directive, although the example did contain one' — enable the
        profitability heuristic and observe the false negative."""

        class ProfitabilityCetus(CetusLike):
            policy = AnalysisPolicy(min_literal_trip=1000)

        code = "for (i = 0; i < 256; i++)\n  buf[i] = 0;"
        res = ProfitabilityCetus().compile(code)
        assert res.ok
        assert res.directive is None
        assert res.analysis.skipped_unprofitable

    def test_table1_example1_consecutive_loops(self):
        """Table 1 #1: each loop gets its own directive, never a fused
        parallel region with nowait."""
        compar = ComPar()
        res = compar.run("for (i = 0; i <= N; i++)\n  A[i] = i;")
        assert res.inserted
        omp = parse_pragma(res.directive)
        assert omp.construct == "parallel for"  # not a bare 'parallel' region
        assert not omp.has_nowait


class TestSection31Criteria:
    def test_negative_records_only_from_omp_projects(self):
        """§3.1.1's framing holds trivially for the generator (all snippets
        come from 'OpenMP projects'), but the negative-labelling mechanism
        must produce parallelizable unannotated code."""
        corpus = build_corpus(CorpusConfig(n_records=300, seed=6))
        unannotated = [r for r in corpus.negatives if r.family.startswith("unannotated")]
        assert unannotated, "corpus must contain unannotated-parallel negatives"

    def test_replacement_is_reversible_structurally(self):
        """Replaced code has the same AST shape as the original."""
        from repro.clang.serialize import ast_to_dfs_text

        code = "for (i = 0; i < n; i++) total += weights[i] * samples[i];"
        replaced = replace_identifiers_in_code(code)
        orig_shape = [t.split(":")[0] for t in ast_to_dfs_text(parse(code)).split()
                      if t.endswith(":")]
        new_shape = [t.split(":")[0] for t in ast_to_dfs_text(parse(replaced)).split()
                     if t.endswith(":")]
        assert orig_shape == new_shape


class TestSection43Setup:
    def test_max_len_default_matches_paper(self):
        from repro.data.encoding import DEFAULT_MAX_LEN

        assert DEFAULT_MAX_LEN == 110

    def test_head_is_two_dense_layers_with_relu(self):
        """§4.3: 'The FC layer contains two dense layers with a ReLU
        activation function between them.'"""
        from repro.nn import ClassificationHead, Linear, ReLU

        head = ClassificationHead(16, 8, rng=0)
        assert isinstance(head.fc1, Linear)
        assert isinstance(head.act, ReLU)
        assert isinstance(head.fc2, Linear)

    def test_optimizer_is_adamw(self):
        """§4.3: parameters updated 'via the AdamW gradient descent
        optimizer' — either implementation of the rule (the flat-arena
        FusedAdamW default, or the legacy per-parameter AdamW)."""
        from repro.models.pragformer import PragFormer, PragFormerConfig
        from repro.nn import AdamW, FusedAdamW

        model = PragFormer(32, PragFormerConfig(d_model=16, n_heads=2, n_layers=1,
                                                d_ff=16, d_head_hidden=8))
        ids = np.full((4, 8), 2, dtype=np.int64)
        split_ids = ids
        from repro.data.encoding import EncodedSplit

        split = EncodedSplit(split_ids, np.ones((4, 8)), np.zeros(4, dtype=np.int64))
        model.fit(split, epochs=1)
        assert isinstance(model._optimizer, (AdamW, FusedAdamW))

        legacy = PragFormer(32, PragFormerConfig(
            d_model=16, n_heads=2, n_layers=1, d_ff=16, d_head_hidden=8,
            fused_optimizer=False))
        legacy.fit(split, epochs=1)
        assert isinstance(legacy._optimizer, AdamW)
