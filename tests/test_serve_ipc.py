"""Property and stress tests for the zero-copy shared-memory IPC layer.

Three layers of proof that the shm data plane (``repro.serve.shm_ring``
+ ``ShardedEngine(ipc="shm")``) can replace the pickled queues:

* **Ring invariants** — wrap-around, full/empty discrimination, slot
  reuse after consume, commit-before-publish, CRC detection — checked
  both on hand-picked edges and with a randomized model-based
  interleaving (seeded: failures reproduce).
* **Frame codecs** — request/reply encodings round-trip exactly,
  including float64 probabilities (the transport must be lossless so
  verdicts are byte-identical across transports) and structural
  validation of corrupted frames.
* **End-to-end** — a multi-producer multi-shard stress run with zero
  lost, duplicated, or corrupted replies; a 1k-snippet queue-vs-shm
  parity trace with *identical* verdicts; rollouts (reload, canary)
  riding the new transport; and teardown proofs that ``/dev/shm`` is
  clean even when every worker died first (the ``no_ring_leaks``
  fixture in ``conftest.py`` re-checks after every test here).
"""

import collections
import functools
import os
import pickle
import random
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    Advice,
    EngineConfig,
    FullAdvice,
    InferenceEngine,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
)
from repro.serve.registry import ClauseAdvice
from repro.serve.shm_ring import (
    STATUS_FAULT,
    STATUS_OK,
    FrameTooBig,
    ShmRing,
    decode_request,
    decode_result,
    decode_text,
    encode_request,
    encode_result,
    encode_text,
    reply_meta,
    split_reply_meta,
)
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

TRACE = [
    f"for (i = 0; i < n; i++) a[i] = b[i] * {k} + c[i % {k + 2}];"
    for k in range(1000)
]
HEAD_NAMES = ("directive", "private", "reduction")


@pytest.fixture(scope="module")
def vocab():
    return Vocab.build([text_tokens(code) for code in TRACE[:64]],
                       min_freq=1)


@pytest.fixture(scope="module")
def model(vocab):
    return PragFormer(len(vocab), TINY)


@pytest.fixture(scope="module")
def factory(model, vocab):
    def build():
        return InferenceEngine(model, vocab, max_len=TINY.max_len,
                               config=EngineConfig(max_batch_size=32))

    return build


def _build_multi(path, config):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path),
                            config=config)


@pytest.fixture(scope="module")
def checkpoint(vocab, tmp_path_factory):
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name, PragFormer(len(vocab),
                                           replace(TINY, seed=k), rng=k),
                          vocab, max_len=TINY.max_len)
    path = tmp_path_factory.mktemp("ipc") / "ckpt"
    registry.save(path)
    return path


# -- ring invariants ---------------------------------------------------------

def _payload(rng, rid):
    return np.arange(rid, rid + rng.randint(0, 12), dtype=np.int32)


class TestRingInvariants:
    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            ShmRing(slots=0)
        with pytest.raises(ValueError):
            ShmRing(slot_words=8)

    def test_empty_ring_pops_nothing(self):
        ring = ShmRing(slots=2, slot_words=16)
        try:
            assert len(ring) == 0
            assert ring.try_pop() is None
            assert ring.pop(timeout=0.01) is None
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_refuses_push_until_consume(self):
        ring = ShmRing(slots=2, slot_words=16)
        try:
            assert ring.try_push(1, 0, np.arange(3, dtype=np.int32))
            assert ring.try_push(2, 0, np.arange(4, dtype=np.int32))
            assert len(ring) == 2
            # full != empty: occupancy is exact, never ambiguous
            assert not ring.try_push(3, 0, np.arange(5, dtype=np.int32))
            assert ring.push(3, 0, np.arange(5, dtype=np.int32),
                             timeout=0.01) is False
            rid, _, payload, ok = ring.try_pop()
            assert (rid, ok) == (1, True)
            np.testing.assert_array_equal(payload,
                                          np.arange(3, dtype=np.int32))
            # the consumed slot is immediately reusable
            assert ring.try_push(3, 0, np.arange(5, dtype=np.int32))
        finally:
            ring.close()
            ring.unlink()

    def test_wrap_around_preserves_frames(self):
        ring = ShmRing(slots=3, slot_words=32)
        try:
            for rid in range(100):  # many times around the 3-slot ring
                payload = np.arange(rid, rid + 1 + rid % 7, dtype=np.int32)
                assert ring.try_push(rid, rid % 5, payload)
                got_rid, meta, got, ok = ring.try_pop()
                assert (got_rid, meta, ok) == (rid, rid % 5, True)
                np.testing.assert_array_equal(got, payload)
            assert len(ring) == 0
        finally:
            ring.close()
            ring.unlink()

    def test_randomized_interleaving_matches_fifo_model(self):
        """Model-based property test: a random push/pop interleaving on
        the ring behaves exactly like a bounded deque (seeded — a failure
        reproduces)."""
        rng = random.Random(7)
        ring = ShmRing(slots=4, slot_words=16)
        model = collections.deque()
        try:
            rid = 0
            for _ in range(2000):
                if rng.random() < 0.55:
                    payload = _payload(rng, rid)
                    pushed = ring.try_push(rid, rid % 9, payload)
                    assert pushed == (len(model) < 4)  # full iff model full
                    if pushed:
                        model.append((rid, rid % 9, payload))
                        rid += 1
                else:
                    frame = ring.try_pop()
                    if not model:
                        assert frame is None
                    else:
                        exp_rid, exp_meta, exp_payload = model.popleft()
                        got_rid, got_meta, got_payload, ok = frame
                        assert (got_rid, got_meta, ok) == (
                            exp_rid, exp_meta, True)
                        np.testing.assert_array_equal(got_payload,
                                                      exp_payload)
                assert len(ring) == len(model)
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_frame_raises(self):
        ring = ShmRing(slots=1, slot_words=16)
        try:
            assert not ring.fits(17)
            with pytest.raises(FrameTooBig):
                ring.try_push(0, 0, np.zeros(17, dtype=np.int32))
        finally:
            ring.close()
            ring.unlink()

    def test_corrupt_push_is_detected_not_trusted(self):
        ring = ShmRing(slots=2, slot_words=16)
        try:
            payload = np.arange(6, dtype=np.int32)
            assert ring.try_push(9, 3, payload, corrupt=True)
            rid, meta, got, ok = ring.try_pop()
            assert (rid, meta) == (9, 3)
            assert ok is False  # torn write: delivered, flagged, consumed
            assert ring.try_pop() is None  # the slot was still released
            assert ring.try_push(10, 0, payload)  # and is reusable
        finally:
            ring.close()
            ring.unlink()

    def test_pickle_attaches_to_same_segment(self):
        """The spawn path: an unpickled ring is a live view of the same
        memory, and attaching must not steal segment ownership."""
        ring = ShmRing(slots=2, slot_words=16)
        try:
            twin = pickle.loads(pickle.dumps(ring))
            try:
                assert twin.name == ring.name
                assert ring.try_push(5, 1, np.arange(4, dtype=np.int32))
                rid, meta, payload, ok = twin.try_pop()
                assert (rid, meta, ok) == (5, 1, True)
                np.testing.assert_array_equal(payload,
                                              np.arange(4, dtype=np.int32))
            finally:
                twin.close()  # attacher closes, never unlinks
            assert os.path.exists(f"/dev/shm/{ring.name}")
        finally:
            ring.close()
            ring.unlink()
        assert not os.path.exists(f"/dev/shm/{ring.name}")


# -- frame codecs ------------------------------------------------------------

class TestFrameCodecs:
    def test_request_round_trip(self):
        rows = [np.array([4, 5, 6], dtype=np.int32),
                np.array([], dtype=np.int32),
                np.arange(10, dtype=np.int32)]
        digests = [bytes([i] * 16) for i in range(3)]
        tag, out_rows, out_digests = decode_request(
            encode_request(-12345, rows, digests))
        assert tag == -12345
        assert out_digests == digests
        assert len(out_rows) == 3
        for got, exp in zip(out_rows, rows):
            np.testing.assert_array_equal(got, exp)

    def test_empty_request_round_trip(self):
        tag, rows, digests = decode_request(encode_request(7, [], []))
        assert (tag, rows, digests) == (7, [], [])

    @pytest.mark.parametrize("frame", [
        np.array([], dtype=np.int32),                      # too short
        np.array([1, -1], dtype=np.int32),                 # negative count
        np.array([1, 2, 3], dtype=np.int32),               # truncated header
        np.array([1, 1, 2] + [0] * 4 + [9], dtype=np.int32),  # ids mismatch
    ])
    def test_malformed_request_raises(self, frame):
        with pytest.raises(ValueError):
            decode_request(frame)

    def test_predict_proba_frames_are_lossless(self):
        probs = np.array([[0.1234567891234567, 0.8765432108765433],
                          [1.0, 0.0]], dtype=np.float64)
        out = decode_result("predict_proba",
                            encode_result("predict_proba", probs))
        assert len(out) == 2
        # float64 on the wire: bit-exact after the dtype round trip
        np.testing.assert_array_equal(
            np.stack(out).astype(np.float64),
            probs.astype(np.stack(out).dtype).astype(np.float64))

    def test_advise_frames_carry_flags(self):
        advice = [Advice(0.75, True), Advice(0.25, False, degraded=True)]
        out = decode_result("advise_many",
                            encode_result("advise_many", advice))
        assert [(a.probability, a.needs_directive, a.degraded)
                for a in out] == [(0.75, True, False), (0.25, False, True)]

    def test_full_advice_round_trip(self):
        full = [
            FullAdvice(Advice(0.9, True),
                       {"private": ClauseAdvice(0.7, True),
                        "reduction": ClauseAdvice(0.2, False)}),
            FullAdvice(Advice(0.1, False, degraded=True), {},
                       degraded=True),
        ]
        head_index = {name: i for i, name in enumerate(HEAD_NAMES)}
        out = decode_result(
            "advise_full_many",
            encode_result("advise_full_many", full, head_index),
            head_names=HEAD_NAMES)
        assert len(out) == 2
        assert out[0].directive.probability == 0.9
        assert out[0].clauses["private"] == ClauseAdvice(0.7, True)
        assert out[0].clauses["reduction"] == ClauseAdvice(0.2, False)
        assert not out[0].degraded
        assert out[1].directive.degraded and out[1].degraded
        assert out[1].clauses == {}

    def test_unknown_head_id_is_structural_fault(self):
        full = [FullAdvice(Advice(0.9, True),
                           {"mystery": ClauseAdvice(0.5, False)})]
        frame = encode_result("advise_full_many", full, {"mystery": 5})
        with pytest.raises(ValueError):
            decode_result("advise_full_many", frame, head_names=HEAD_NAMES)

    def test_truncated_reply_raises(self):
        frame = encode_result("advise_many", [Advice(0.5, False)])
        with pytest.raises(ValueError):
            decode_result("advise_many", frame[:-1])

    def test_text_frames(self):
        assert decode_text(encode_text("boom: 段错误")) == "boom: 段错误"
        assert decode_text(encode_text("")) == ""
        long = "x" * 10000  # capped, not wedged
        assert decode_text(encode_text(long)) == "x" * 4096

    def test_reply_meta_round_trip(self):
        for status in (STATUS_OK, STATUS_FAULT):
            for method_id in (0, 1, 2):
                assert split_reply_meta(reply_meta(status, method_id)) == (
                    status, method_id)


# -- end-to-end: parity, stress, rollouts ------------------------------------

class TestTransportParity:
    def test_queue_and_shm_verdicts_identical_on_1k_trace(self, factory):
        """The acceptance trace: same fleet shape, same snippets, the
        two transports must agree verdict-for-verdict, bit for bit."""
        with ShardedEngine(factory, n_shards=2, ipc="queue") as via_queue:
            q_probs = via_queue.predict_proba(TRACE)
            q_advice = via_queue.advise_many(TRACE)
        with ShardedEngine(factory, n_shards=2, ipc="shm") as via_shm:
            s_probs = via_shm.predict_proba(TRACE)
            s_advice = via_shm.advise_many(TRACE)
            stats = via_shm.stats()
        np.testing.assert_array_equal(q_probs, s_probs)
        mismatches = sum(
            1 for a, b in zip(q_advice, s_advice)
            if (a.probability, a.needs_directive, a.degraded)
            != (b.probability, b.needs_directive, b.degraded))
        assert mismatches == 0
        assert stats["ipc"]["active"] == "shm"
        assert stats["ipc"]["ring_sends"] > 0

    def test_full_advice_parity_with_multi_model_workers(self, checkpoint):
        fact = functools.partial(_build_multi, checkpoint,
                                 EngineConfig(max_batch_size=32))
        trace = TRACE[:200]
        with ShardedEngine(fact, n_shards=2, ipc="queue") as via_queue:
            expected = via_queue.advise_full_many(trace)
        with ShardedEngine(fact, n_shards=2, ipc="shm") as via_shm:
            got = via_shm.advise_full_many(trace)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g.directive.probability == e.directive.probability
            assert g.directive.needs_directive == e.directive.needs_directive
            assert g.clauses == e.clauses
            assert g.degraded == e.degraded

    def test_canary_split_identical_across_transports(self, checkpoint,
                                                      vocab, tmp_path):
        registry = ModelRegistry()
        for k, name in enumerate(HEAD_NAMES):
            registry.register(name, PragFormer(len(vocab),
                                               replace(TINY, seed=50 + k),
                                               rng=50 + k),
                              vocab, max_len=TINY.max_len)
        canary_path = tmp_path / "canary"
        registry.save(canary_path)
        fact = functools.partial(_build_multi, checkpoint,
                                 EngineConfig(max_batch_size=32))
        trace = TRACE[:64]
        results = {}
        for ipc in ("queue", "shm"):
            with ShardedEngine(fact, n_shards=2, ipc=ipc) as sharded:
                sharded.start_canary(canary_path, 0.5, version="cnry")
                results[ipc] = sharded.advise_full_many(trace)
        for q, s in zip(results["queue"], results["shm"]):
            assert q.directive.probability == s.directive.probability
            assert q.clauses == s.clauses


class TestStress:
    def test_multi_producer_stress_no_lost_dup_or_corrupt(self, factory):
        """4 producer threads x 4 shards x 2000 total requests: every
        reply present, in order, and matching the reference engine."""
        trace = TRACE[:100]
        reference = factory()
        expected = reference.predict_proba(trace)
        errors = []
        with ShardedEngine(factory, n_shards=4, ipc="shm") as sharded:
            def producer():
                try:
                    for _ in range(5):  # 5 x 100 snippets per producer
                        got = sharded.predict_proba(trace)
                        assert got.shape == expected.shape
                        np.testing.assert_allclose(got, expected, atol=1e-5)
                except Exception as exc:  # noqa: BLE001 — assert below
                    errors.append(exc)

            threads = [threading.Thread(target=producer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = sharded.stats()
        assert not errors, errors
        assert stats["ipc"]["ring_sends"] > 0
        assert stats["supervisor"]["degraded_answers"] == 0
        assert sum(stats["routed"]) == 4 * 5 * len(trace)

    def test_tiny_rings_overflow_to_queue_correctly(self, factory):
        """A frame that cannot fit a slot must transparently take the
        pickled path — throughput degrades, verdicts do not."""
        expected = factory().predict_proba(TRACE[:64])
        with ShardedEngine(factory, n_shards=2, ipc="shm",
                           ring_slots=1, ring_slot_words=16) as sharded:
            got = sharded.predict_proba(TRACE[:64])
            stats = sharded.stats()
        np.testing.assert_allclose(got, expected, atol=1e-5)
        assert stats["ipc"]["ring_overflows"] > 0
        assert stats["ipc"]["queue_serving_sends"] > 0


class TestRollouts:
    def test_reload_rides_the_ring_transport(self, checkpoint, vocab,
                                             tmp_path):
        registry = ModelRegistry()
        for k, name in enumerate(HEAD_NAMES):
            registry.register(name, PragFormer(len(vocab),
                                               replace(TINY, seed=80 + k),
                                               rng=80 + k),
                              vocab, max_len=TINY.max_len)
        next_path = tmp_path / "next"
        registry.save(next_path)
        fact = functools.partial(_build_multi, checkpoint,
                                 EngineConfig(max_batch_size=32))
        trace = TRACE[:32]
        with MultiModelEngine(ModelRegistry.from_checkpoint(next_path)) as ref:
            expected = ref.advise_full_many(trace)
        with ShardedEngine(fact, n_shards=2, ipc="shm") as sharded:
            sharded.advise_full_many(trace)  # prime rings + codec
            sharded.reload(next_path)
            got = sharded.advise_full_many(trace)  # re-encoded, fresh tag
            for g, e in zip(got, expected):
                assert g.directive.probability == e.directive.probability
                assert g.clauses == e.clauses


class TestLifecycle:
    def test_close_unlinks_rings_even_with_dead_workers(self, factory):
        sharded = ShardedEngine(factory, n_shards=2, ipc="shm")
        try:
            sharded.predict_proba(TRACE[:8])
            names = [ring.name for ring in sharded._all_rings]
            assert names and all(
                os.path.exists(f"/dev/shm/{n}") for n in names)
            for proc in sharded._workers:  # everyone dies holding state
                proc.terminate()
                proc.join(timeout=5)
        finally:
            sharded.close()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)

    def test_close_is_idempotent(self, factory):
        sharded = ShardedEngine(factory, n_shards=2, ipc="shm")
        sharded.close()
        sharded.close()

    def test_queue_mode_creates_no_segments(self, factory):
        with ShardedEngine(factory, n_shards=2, ipc="queue") as sharded:
            sharded.predict_proba(TRACE[:8])
            assert sharded._all_rings == []
            stats = sharded.stats()
        assert stats["ipc"]["requested"] == "queue"
        assert stats["ipc"]["active"] == "queue"
        assert stats["ipc"]["ring_sends"] == 0

    def test_codec_free_engine_falls_back_to_queues(self, model, vocab):
        """An engine that cannot describe its encoding (custom tokenizer)
        must pin the fleet to the queue transport, transparently."""

        def custom_factory():
            return InferenceEngine(model, vocab, max_len=TINY.max_len,
                                   tokenizer=lambda code: code.split())

        with ShardedEngine(custom_factory, n_shards=2, ipc="shm") as sharded:
            first = sharded.predict_proba(TRACE[:16])
            second = sharded.predict_proba(TRACE[:16])
            stats = sharded.stats()
        np.testing.assert_allclose(first, second, atol=1e-6)
        assert stats["ipc"]["active"] == "queue"
        assert stats["ipc"]["ring_sends"] == 0

    def test_rejects_unknown_ipc(self, factory):
        with pytest.raises(ValueError):
            ShardedEngine(factory, n_shards=2, ipc="carrier-pigeon")
