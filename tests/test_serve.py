"""Tests for the batched inference engine (repro.serve)."""

import numpy as np
import pytest

from repro.data.encoding import encode_batch
from repro.models import PragFormer
from repro.models.pragformer import PragFormerConfig
from repro.serve import Advice, EngineConfig, InferenceEngine, LRUCache
from repro.tokenize import Vocab, text_tokens

TINY = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32,
                        d_head_hidden=16, max_len=24, batch_size=8, seed=0)

SNIPPETS = [
    "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 1; i < n; i++) a[i] = a[i-1];",
    'for (i = 0; i < n; i++) printf("%d", a[i]);',
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) x[i][j] = i * j;",
    "while (k < n) { total += buf[k]; k++; }",
    "for (p = head; p; p = p->next) count++;",
    "for (i = 0; i < rows; i++) out[i] = dot(m[i], v, cols);",
]


@pytest.fixture(scope="module")
def model_and_vocab():
    vocab = Vocab.build([text_tokens(code) for code in SNIPPETS], min_freq=1)
    return PragFormer(len(vocab), TINY), vocab


@pytest.fixture()
def engine(model_and_vocab):
    model, vocab = model_and_vocab
    return InferenceEngine(model, vocab, max_len=TINY.max_len)


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        cache = LRUCache(2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") == 1  # refresh 'a'
        cache.put(b"c", 3)           # evicts 'b', the least recently used
        assert b"b" not in cache
        assert cache.get(b"a") == 1
        assert cache.get(b"c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put(b"a", 1)
        assert cache.get(b"a") is None
        assert len(cache) == 0


class TestBatchedEqualsSequential:
    def test_matches_per_snippet_predict(self, engine, model_and_vocab):
        model, vocab = model_and_vocab
        batched = engine.predict_proba(SNIPPETS)
        for i, code in enumerate(SNIPPETS):
            split = encode_batch([text_tokens(code)], vocab, TINY.max_len,
                                 width=TINY.max_len)
            single = model.predict_proba(split)[0]
            np.testing.assert_allclose(batched[i], single, atol=1e-5)

    def test_small_buckets_same_answers(self, model_and_vocab):
        model, vocab = model_and_vocab
        big = InferenceEngine(model, vocab, max_len=TINY.max_len)
        tiny = InferenceEngine(model, vocab, max_len=TINY.max_len,
                               config=EngineConfig(max_batch_size=2))
        np.testing.assert_allclose(tiny.predict_proba(SNIPPETS),
                                   big.predict_proba(SNIPPETS), atol=1e-5)
        assert tiny.stats.batches >= 4

    def test_advise_many(self, engine):
        advice = engine.advise_many(SNIPPETS[:3])
        assert all(isinstance(a, Advice) for a in advice)
        for a in advice:
            assert a.needs_directive == (a.probability > 0.5)
        assert engine.advise(SNIPPETS[0]) == advice[0]

    def test_empty_batch(self, engine):
        assert engine.predict_proba([]).shape == (0, 2)


class TestPredictionCache:
    def test_cache_hit_returns_identical_predictions(self, engine):
        first = engine.predict_proba(SNIPPETS)
        assert engine.stats.cache_hits == 0
        second = engine.predict_proba(SNIPPETS)
        np.testing.assert_array_equal(first, second)
        assert engine.stats.cache_hits == len(SNIPPETS)
        # the warm pass ran no model batches
        assert engine.stats.model_rows == len(SNIPPETS)

    def test_capacity_bound_respected(self, model_and_vocab):
        model, vocab = model_and_vocab
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len,
                                 config=EngineConfig(cache_capacity=3))
        engine.predict_proba(SNIPPETS)
        assert len(engine.cache) == 3

    def test_eviction_counters(self, model_and_vocab):
        model, vocab = model_and_vocab
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len,
                                 config=EngineConfig(cache_capacity=3))
        engine.predict_proba(SNIPPETS)
        # 8 distinct predictions into a 3-slot LRU: 5 must have been evicted
        assert engine.stats.evictions == len(SNIPPETS) - 3
        assert engine.cache.evictions == engine.stats.evictions
        # the tokenize/encode memo shares the capacity and evicts likewise
        assert engine.stats.encode_evictions == len(SNIPPETS) - 3
        assert engine.stats.as_dict()["evictions"] == engine.stats.evictions

    def test_lru_put_reports_evictions(self):
        cache = LRUCache(2)
        assert cache.put(b"a", 1) == 0
        assert cache.put(b"b", 2) == 0
        assert cache.put(b"c", 3) == 1
        assert cache.evictions == 1

    def test_unbounded_run_never_evicts(self, engine):
        engine.predict_proba(SNIPPETS)
        assert engine.stats.evictions == 0
        assert engine.stats.encode_evictions == 0

    def test_duplicates_coalesced_within_batch(self, engine):
        codes = [SNIPPETS[0]] * 5 + [SNIPPETS[1]]
        probs = engine.predict_proba(codes)
        np.testing.assert_array_equal(probs[0], probs[4])
        assert engine.stats.coalesced == 4
        assert engine.stats.model_rows == 2

    def test_tokenize_once_per_distinct_snippet(self, model_and_vocab):
        model, vocab = model_and_vocab
        calls = []

        def counting_tokenizer(code):
            calls.append(code)
            return text_tokens(code)

        engine = InferenceEngine(model, vocab, max_len=TINY.max_len,
                                 tokenizer=counting_tokenizer)
        engine.predict_proba(SNIPPETS * 3)
        engine.predict_proba(SNIPPETS)
        assert len(calls) == len(SNIPPETS)
        assert engine.stats.tokenized == len(SNIPPETS)


class TestBatchHistogram:
    def test_histogram_counts_every_batch(self, model_and_vocab):
        model, vocab = model_and_vocab
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len,
                                 config=EngineConfig(max_batch_size=2))
        engine.predict_proba(SNIPPETS)
        hist = engine.stats.batch_size_hist
        assert sum(hist.values()) == engine.stats.batches
        # max_batch_size=2 means every bucket label is "1" or "2"
        assert set(hist) <= {"1", "2"}

    def test_bucket_labels_are_power_of_two_ranges(self):
        from repro.serve import batch_hist_bucket

        assert batch_hist_bucket(1) == "1"
        assert batch_hist_bucket(2) == "2"
        assert batch_hist_bucket(3) == "3-4"
        assert batch_hist_bucket(4) == "3-4"
        assert batch_hist_bucket(5) == "5-8"
        assert batch_hist_bucket(128) == "65-128"

    def test_merge_stat_dicts_sums_counters_and_hist(self, model_and_vocab):
        from repro.serve import merge_stat_dicts

        model, vocab = model_and_vocab
        a = InferenceEngine(model, vocab, max_len=TINY.max_len)
        b = InferenceEngine(model, vocab, max_len=TINY.max_len)
        a.predict_proba(SNIPPETS[:4])
        b.predict_proba(SNIPPETS)
        merged = merge_stat_dicts([a.stats.as_dict(), b.stats.as_dict()])
        assert merged["requests"] == a.stats.requests + b.stats.requests
        assert merged["batches"] == a.stats.batches + b.stats.batches
        assert sum(merged["batch_size_hist"].values()) == merged["batches"]


class TestAsyncQueue:
    def test_submit_matches_sync(self, model_and_vocab):
        model, vocab = model_and_vocab
        sync = InferenceEngine(model, vocab, max_len=TINY.max_len)
        expected = sync.predict_proba(SNIPPETS)
        with InferenceEngine(model, vocab, max_len=TINY.max_len) as engine:
            futures = [engine.submit(code) for code in SNIPPETS]
            results = np.vstack([f.result(timeout=30) for f in futures])
        np.testing.assert_allclose(results, expected, atol=1e-5)

    def test_submit_after_close_raises(self, model_and_vocab):
        model, vocab = model_and_vocab
        engine = InferenceEngine(model, vocab, max_len=TINY.max_len)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.submit(SNIPPETS[0])

    def test_close_idempotent(self, engine):
        engine.submit(SNIPPETS[0]).result(timeout=30)
        engine.close()
        engine.close()


class TestEngineConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_capacity=-1)
        with pytest.raises(ValueError):
            EngineConfig(flush_interval=-0.1)
