"""Tour of the serving stack: one engine, three models, HTTP, live metrics.

Builds the multi-model advisor (directive + private/reduction clause heads)
from the small-scale experiment context, then exercises every front door:

1. single and bulk ``advise_full`` calls straight into the engine,
2. the async queue API (``submit`` -> Future),
3. the HTTP API on an ephemeral port (/advise, /advise/batch, /healthz),
4. the ``/stats`` metrics the traffic produced.

First run trains the three models (a few minutes at SMALL scale, memoized
for the process).  Run:  python examples/serving_client.py
"""

import json
import threading
import urllib.request

from repro.pipeline import SMALL, get_context
from repro.serve import EngineConfig, ModelRegistry, MultiModelEngine, make_server

LOOPS = [
    "for (i = 0; i < n; i++) y[i] = alpha * x[i] + y[i];",
    "for (i = 0; i < n; i++) total += values[i];",
    "for (i = 1; i < n; i++) acc[i] = acc[i-1] + raw[i];",
    "for (i = 0; i < n; i++) for (j = 0; j < m; j++) c[i][j] = a[i][j] + b[i][j];",
]
# a Zipf-ish trace: the first loop is hot, as production traffic is
TRACE = LOOPS * 2 + [LOOPS[0]] * 6


def http_json(url, payload=None):
    req = urllib.request.Request(url)
    if payload is not None:
        req.data = json.dumps(payload).encode("utf-8")
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


print("building the advisor (trains directive + clause models on first run)...")
registry = ModelRegistry.from_context(get_context(SMALL))
advisor = MultiModelEngine(registry, config=EngineConfig(max_batch_size=32))

# -- 1. direct engine calls ------------------------------------------------
print("\n== direct advise_full ==")
full = advisor.advise_full(LOOPS[1])
print(json.dumps(full.as_dict(), indent=2))

print("\n== bulk advise_full_many over a hot-set trace ==")
for loop, verdict in zip(LOOPS, advisor.advise_full_many(TRACE)[: len(LOOPS)]):
    mark = "PARALLEL" if verdict.directive.needs_directive else "serial  "
    clauses = ", ".join(verdict.recommended_clauses()) or "-"
    print(f"  [{mark}] p={verdict.directive.probability:.3f} "
          f"clauses: {clauses}  | {loop[:48]}")

# -- 2. async queue --------------------------------------------------------
print("\n== async submit ==")
futures = [advisor.directive_engine.submit(loop) for loop in LOOPS]
for loop, future in zip(LOOPS, futures):
    print(f"  P(directive) = {future.result(timeout=60)[1]:.3f}  | {loop[:48]}")

# -- 3. the HTTP front-end -------------------------------------------------
server = make_server(advisor, port=0)  # ephemeral port
threading.Thread(target=server.serve_forever, daemon=True).start()
host, port = server.server_address[:2]
base = f"http://{host}:{port}"
print(f"\n== HTTP API on {base} ==")
print("healthz:", http_json(base + "/healthz"))
single = http_json(base + "/advise", {"code": LOOPS[0]})
print("POST /advise ->", json.dumps(single))
batch = http_json(base + "/advise/batch", {"requests": [
    {"id": "axpy", "code": LOOPS[0]},
    {"id": "scan", "code": LOOPS[2]},
]})
for result in batch["results"]:
    print(f"POST /advise/batch [{result['id']}] -> "
          f"needs_directive={result['needs_directive']}")

# -- 4. the metrics all that traffic produced ------------------------------
print("\n== GET /stats ==")
stats = http_json(base + "/stats")
print("http counters:", stats["http"])
combined = stats["engine"]["combined"]
print(f"engine combined: {combined['requests']} requests, "
      f"{combined['cache_hits']} cache hits, {combined['evictions']} evictions, "
      f"{combined['coalesced']} coalesced, {combined['batches']} batches")
print("batch-size histogram:", combined["batch_size_hist"])
print("distinct snippets lexed:", stats["engine"]["snippets_lexed"])

server.shutdown()
server.server_close()
advisor.close()
