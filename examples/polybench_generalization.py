"""Generalization study (§5.4 / Table 11): train PragFormer on the Open-OMP
corpus, then evaluate on the out-of-distribution PolyBench-like and
SPEC-OMP-like suites, against ComPar.

Run:  python examples/polybench_generalization.py
"""

from repro.benchsuites import polybench_suite, specomp_suite
from repro.eval import binary_metrics
from repro.pipeline import SMALL, get_context
from repro.pipeline.experiments import _suite_split
from repro.utils import format_table

ctx = get_context(SMALL)
model = ctx.pragformer  # trained on the synthetic Open-OMP corpus

rows = []
for name, records in (("PolyBench", polybench_suite()), ("SPEC-OMP", specomp_suite())):
    split = _suite_split(records, ctx)
    m = binary_metrics(model.predict(split), split.labels)
    rows.append([f"PragFormer {name}", m.precision, m.recall, m.f1, m.accuracy])

    preds, failures = ctx.compar.predict_directive([r.code for r in records])
    m2 = binary_metrics(preds, split.labels)
    rows.append([f"ComPar {name} ({failures} parse failures)",
                 m2.precision, m2.recall, m2.f1, m2.accuracy])

print(format_table(["system / suite", "precision", "recall", "F1", "accuracy"],
                   rows, title="Table 11: generalization to external benchmarks"))
print("\nExpected shape (paper): PragFormer transfers (0.93 Poly / 0.80 SPEC);")
print("ComPar collapses on PolyBench's macros and SPEC's register/typedefs.")
