"""The on-the-fly parallelization advisor (§2.1): scan a C file for loops,
flag the ones that would benefit from an OpenMP directive, and suggest
private/reduction clauses — then compare with what the ComPar S2S combiner
would do on the same loops.

Run:  python examples/advisor.py
"""

import numpy as np

from repro.clang import For, parse, unparse
from repro.data.encoding import EncodedSplit
from repro.pipeline import SMALL, get_context
from repro.s2s import ComPar
from repro.tokenize import text_tokens

SOURCE = """
for (i = 0; i < n; i++)
  y[i] = alpha * x[i] + y[i];

for (i = 0; i < n; i++)
  total += values[i];

for (i = 1; i < n; i++)
  acc[i] = acc[i-1] + raw[i];

for (i = 0; i < n; i++) {
  fprintf(stderr, "%d\\n", y[i]);
}
"""

ctx = get_context(SMALL)
model = ctx.pragformer  # trains on first use (memoized for the process)
enc = ctx.encoded()
compar = ComPar()

loops = [n for n in parse(SOURCE).stmts if isinstance(n, For)]
print(f"found {len(loops)} top-level loops\n")

for idx, loop in enumerate(loops, 1):
    code = unparse(loop)
    toks = text_tokens(code)
    ids = enc.vocab.encode(toks, max_len=enc.max_len)
    mat = np.full((1, enc.max_len), enc.vocab.pad_id, dtype=np.int64)
    mask = np.zeros((1, enc.max_len))
    mat[0, : len(ids)] = ids
    mask[0, : len(ids)] = 1.0
    proba = model.predict_proba(EncodedSplit(mat, mask, np.zeros(1, dtype=np.int64)))[0, 1]

    s2s = compar.run(code)
    print(f"--- loop {idx} " + "-" * 50)
    print(code)
    print(f"PragFormer: P(parallel) = {proba:.3f} -> "
          + ("ADD a directive" if proba > 0.5 else "leave serial"))
    if s2s.parse_failed:
        print("ComPar:     parse failure (fallback: no directive)")
    elif s2s.inserted:
        print(f"ComPar:     {s2s.directive}")
    else:
        reasons = next((r.analysis.reasons for r in s2s.per_compiler.values()
                        if r.analysis is not None and r.analysis.reasons), [])
        print(f"ComPar:     no directive ({'; '.join(reasons) or 'not parallelizable'})")
    print()
