"""Quickstart: build a corpus, train PragFormer, classify a new snippet.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.corpus import CorpusConfig, build_corpus
from repro.data import encode_dataset, make_directive_dataset
from repro.data.encoding import EncodedSplit
from repro.eval import binary_metrics
from repro.models import PragFormer, PragFormerConfig
from repro.tokenize import Representation, text_tokens
from repro.utils import format_table

# 1. Build a (small) Open-OMP corpus: half the snippets carry ground-truth
#    OpenMP directives, the rest are loops developers left unannotated.
corpus = build_corpus(CorpusConfig(n_records=800, seed=0))
print(f"corpus: {len(corpus)} records, {len(corpus.positives)} with directives")

# 2. Split 80/10/10 and encode under the raw-text representation (the best
#    one per the paper's §5.1).
splits = make_directive_dataset(corpus, rng=0)
enc = encode_dataset(splits, Representation.TEXT, min_freq=2)

# 3. Train the transformer classifier.
model = PragFormer(len(enc.vocab), PragFormerConfig(seed=0))
history = model.fit(enc.train, enc.validation, epochs=5)
print(f"best epoch by validation loss: {history.best_epoch() + 1}")

# 4. Evaluate on the held-out test set.
metrics = binary_metrics(model.predict(enc.test), enc.test.labels)
print(format_table(["metric", "value"], list(metrics.as_dict().items()),
                   title="PragFormer, directive task"))

# 5. Ask the model about a brand-new loop.
snippet = "for (i = 0; i < n; i++)\n  out[i] = alpha * in[i] + out[i];"
ids = enc.vocab.encode(text_tokens(snippet), max_len=enc.max_len)
mat = np.full((1, enc.max_len), enc.vocab.pad_id, dtype=np.int64)
mask = np.zeros((1, enc.max_len))
mat[0, : len(ids)] = ids
mask[0, : len(ids)] = 1.0
proba = model.predict_proba(EncodedSplit(mat, mask, np.zeros(1, dtype=np.int64)))[0, 1]
print(f"\nsnippet:\n{snippet}\nP(needs '#pragma omp parallel for') = {proba:.3f}")
