"""Explainability walk-through (§5.4 / Table 12 / Figure 8): run the paper's
four representative examples through PragFormer and show, via LIME, which
tokens drove each prediction — including the fprintf/stderr ablation the
paper performs on example 2.

Run:  python examples/explain_predictions.py
"""

import numpy as np

from repro.data.encoding import EncodedSplit
from repro.explain import LimeExplainer
from repro.pipeline import SMALL, get_context
from repro.pipeline.experiments import PAPER_EXAMPLES
from repro.tokenize import text_tokens

ctx = get_context(SMALL)
model = ctx.pragformer
enc = ctx.encoded()


def predict_fn(token_lists):
    n = len(token_lists)
    ids = np.full((n, enc.max_len), enc.vocab.pad_id, dtype=np.int64)
    mask = np.zeros((n, enc.max_len))
    for row, toks in enumerate(token_lists):
        e = enc.vocab.encode(toks, max_len=enc.max_len)
        ids[row, : len(e)] = e
        mask[row, : len(e)] = 1.0
    return model.predict_proba(
        EncodedSplit(ids, mask, np.zeros(n, dtype=np.int64)))[:, 1]


explainer = LimeExplainer(predict_fn, n_samples=300, rng=7)

for example in PAPER_EXAMPLES:
    tokens = text_tokens(example["code"])
    expl = explainer.explain(tokens)
    pred = "With OpenMP" if expl.base_probability > 0.5 else "Without OpenMP"
    truth = "With OpenMP" if example["label"] else "Without OpenMP"
    print("=" * 70)
    print(example["code"])
    print(f"\nlabel: {truth}   PragFormer: {pred} (p = {expl.base_probability:.3f})")
    print("most influential tokens:")
    for token, weight in expl.top(6):
        direction = "-> parallel" if weight > 0 else "-> serial"
        print(f"  {token!r:24s} {weight:+.4f}  {direction}")
    print()

# The paper's ablation: removing fprintf/stderr from example 2 flips the
# model toward predicting a directive.
io_example = PAPER_EXAMPLES[1]
tokens = text_tokens(io_example["code"])
without_io = [t for t in tokens if t not in ("fprintf", "stderr")]
p_before = float(predict_fn([tokens])[0])
p_after = float(predict_fn([without_io])[0])
print("=" * 70)
print("fprintf/stderr removal ablation (paper §5.4, example 2):")
print(f"  P(parallel) with I/O tokens:    {p_before:.3f}")
print(f"  P(parallel) without I/O tokens: {p_after:.3f}")
print(f"  removing the I/O cues moves the model {'toward' if p_after > p_before else 'away from'} a directive")
