"""The S2S pitfalls of Table 1 and §1.1, demonstrated on the actual
compilers: thread-spawn overhead on consecutive loops, the missing
schedule(dynamic) on unbalanced loops, function side-effect conservatism,
and parse-robustness failures.

Run:  python examples/s2s_pitfalls.py
"""

from repro.s2s import ComPar

compar = ComPar()

CASES = [
    ("Table 1 #1: independent consecutive loops (each gets its own "
     "thread-spawn; no compiler fuses them into one parallel region)",
     "for (i = 0; i <= N; i++)\n  A[i] = i;"),
    ("Table 1 #2: unbalanced workload — a directive is justified but only "
     "with schedule(dynamic), which no S2S compiler emits",
     "for (i = 0; i <= N; i++)\n  if (MoreCalc(i))\n    Calc(i);"),
    ("Reduction: correctly detected and annotated",
     "for (i = 0; i < n; i++)\n  sum += a[i] * b[i];"),
    ("min-reduction via if: every pattern-matcher misses it (Table 10 recall)",
     "for (i = 0; i < n; i++)\n  if (a[i] < best)\n    best = a[i];"),
    ("Function whose implementation lives in another file: conservative reject",
     "for (i = 0; i < n; i++)\n  out[i] = transform(in[i]);"),
    ("register keyword: parse failure in every sub-compiler (Table 11, SPEC)",
     "register int r = 0;\nfor (i = 0; i < n; i++)\n  a[i] = r + i;"),
    ("Unexpanded benchmark macro: parse failure (Table 11, PolyBench)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++)\n  x[i] = 0;"),
]

for title, code in CASES:
    print("=" * 72)
    print(title)
    print()
    print(code)
    result = compar.run(code)
    if result.parse_failed:
        print("\nComPar -> PARSE FAILURE")
        for name, res in result.per_compiler.items():
            print(f"  {name}: {res.failure}")
    elif result.inserted:
        print(f"\nComPar -> {result.directive}")
    else:
        print("\nComPar -> no directive")
        for name, res in result.per_compiler.items():
            if not res.ok:
                print(f"  {name}: parse failure: {res.failure}")
            elif res.analysis is not None and res.analysis.reasons:
                print(f"  {name}: {'; '.join(res.analysis.reasons)}")
    print()
