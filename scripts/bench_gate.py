#!/usr/bin/env python
"""Bench-regression gate: fail CI when a committed BENCH report regresses.

The committed ``benchmarks/BENCH_serving.json`` / ``BENCH_training.json``
reports are the repo's perf trajectory.  This gate enforces the subset of
their metrics that is *stable across machines*: dimensionless ratios
(speedup-vs-sequential, clause-request reduction, optimizer speedup) and
hard invariant counters (zero failed requests / stale cache hits / verdict
mismatches under reload and canary rollouts).  Raw wall-times and
snippets-per-second are **never** gated — the bench host is a single noisy
core, so absolute throughput swings run to run while the ratios and
invariants hold; wall-times are printed report-only for trend reading.

A gate whose metric is *missing* fails too: silently dropping a bench
section must not green the pipeline.

Usage::

    python scripts/bench_gate.py                 # gate the committed reports
    python scripts/bench_gate.py --serving F.json --training G.json
    python scripts/bench_gate.py --list          # show the gate table

Exit status 0 when every gate passes, 1 otherwise — wired into
``.github/workflows/ci.yml`` as the ``bench-gate`` job and covered by
``tests/test_bench_gate.py`` (which also proves a doctored regression
fails).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: report key -> default path of the committed report
DEFAULT_REPORTS = {
    "serving": REPO_ROOT / "benchmarks" / "BENCH_serving.json",
    "training": REPO_ROOT / "benchmarks" / "BENCH_training.json",
}

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
    "==": lambda value, threshold: value == threshold,
}


@dataclass(frozen=True)
class Gate:
    """One gated metric: a dotted path into a report, an op, a threshold."""

    report: str          # "serving" | "training"
    path: str            # dotted path, e.g. "engine_trace.speedup_vs_sequential"
    op: str              # ">=", "<=", "=="
    threshold: float

    def describe(self) -> str:
        """Human-readable one-liner for the gate table."""
        return f"{self.report}:{self.path} {self.op} {self.threshold}"


#: The gate table.  Thresholds are deliberately looser than the committed
#: values — they catch regressions of *kind* (a ratio collapsing, an
#: invariant breaking), not single-digit-percent noise.
GATES: List[Gate] = [
    # serving: the engine must stay clearly ahead of the sequential path
    # on the Zipf trace, and not pathologically behind on all-distinct
    Gate("serving", "engine_trace.speedup_vs_sequential", ">=", 2.0),
    Gate("serving", "all_distinct_cold.speedup_vs_sequential", ">=", 0.3),
    # clause gating: compute actually saved, verdicts never drift
    Gate("serving", "clause_gating.clause_request_reduction", ">=", 0.25),
    Gate("serving", "clause_gating.verdict_mismatches", "==", 0),
    # hot reload under load: the operability invariants
    Gate("serving", "reload_under_load.failed_requests", "==", 0),
    Gate("serving", "reload_under_load.stale_predictions_after_swap", "==", 0),
    # the reload trace is cache-heavy by design; hits vanishing means the
    # version-prefixed key scheme broke
    Gate("serving", "reload_under_load.cache_hits", ">=", 1),
    # canary rollout under load: zero dropped requests, zero canary-arm
    # errors, the canary slice actually served, and post-promote verdicts
    # provably from the promoted weights
    Gate("serving", "canary_rollout.failed_requests", "==", 0),
    Gate("serving", "canary_rollout.canary_arm_errors", "==", 0),
    Gate("serving", "canary_rollout.canary_requests", ">=", 1),
    Gate("serving", "canary_rollout.stale_after_promote", "==", 0),
    # fault injection: a killed shard loses nothing — every request
    # answered (fraction 1.0), the supervisor respawned the slot, no
    # degraded stubs while healthy shards remain, and the worst faulted
    # round stays bounded relative to the request deadline (the "no
    # silent hang" invariant, as a dimensionless ratio)
    Gate("serving", "fault_injection.lost_requests", "==", 0),
    Gate("serving", "fault_injection.answered_fraction", ">=", 1.0),
    Gate("serving", "fault_injection.restarts", ">=", 1),
    Gate("serving", "fault_injection.degraded_answers", "==", 0),
    Gate("serving", "fault_injection.p99_vs_deadline", "<=", 3.0),
    # admission under overload: every request answered definitively and
    # the overload actually shed (429) rather than queueing into a hang
    Gate("serving", "fault_injection.admission.unanswered", "==", 0),
    Gate("serving", "fault_injection.admission.shed_429", ">=", 1),
    # zero-copy ipc (pinned fleets, so every point pays real IPC): the
    # two transports must return bit-identical verdicts; the shm rings
    # must stay within a bounded factor of the queue baseline at 2 shards
    # (on the single-core bench host the pickling queue's feeder-thread
    # pipelining keeps it near parity — shm pulls ahead only where a
    # second core exists, so >= 1.0 is not gateable there); and the
    # sharding *tax* must be gone — pinned 2-shard throughput within 20%
    # of pinned 1-shard, where the PR 2 queue sweep lost >30% to
    # re-pickling — with the measured crossover point at most 2 shards
    Gate("serving", "ipc.parity_mismatches", "==", 0),
    Gate("serving", "ipc.shm_vs_queue_2shards", ">=", 0.7),
    Gate("serving", "ipc.shm_2shard_scaling", ">=", 0.8),
    Gate("serving", "ipc.crossover_shards", "<=", 2),
    # dirty trace: hostile input never crashes or stalls the serving
    # path — zero exceptions escape the engine, every snippet answered,
    # >= 90% of the mixed clean/dirty trace gets a real model verdict
    # (error-recovered lexing counts as real; only byte-cap/budget
    # rejections degrade), and the recovery machinery visibly engaged
    Gate("serving", "dirty_trace.engine_exceptions", "==", 0),
    Gate("serving", "dirty_trace.unanswered", "==", 0),
    Gate("serving", "dirty_trace.advice_yield", ">=", 0.9),
    Gate("serving", "dirty_trace.recovered_snippets", ">=", 1),
    Gate("serving", "dirty_trace.rejected_oversize", ">=", 1),
    # one-copy weights: page accounting, not wall-clock, so it gates.
    # Fleet-wide Pss of the weight segment at 8 shards must stay well
    # under 8x the 1-shard cost (a private-copy fleet sits at 1.0), each
    # resident page must actually be shared by several processes, and the
    # swap invariants hold — shared and private fleets agree verdict-for-
    # verdict after a reload, nothing stale survives a reload or a canary
    # promote, and faulted workers leak no /dev/shm segments past close()
    Gate("serving", "weight_sharing.sublinearity_ratio_8", "<=", 0.5),
    Gate("serving", "weight_sharing.sharing_factor_8", ">=", 4.0),
    Gate("serving", "weight_sharing.reload_parity_mismatches", "==", 0),
    Gate("serving", "weight_sharing.stale_hits_after_swap", "==", 0),
    Gate("serving", "weight_sharing.canary_flip.stale_after_promote",
         "==", 0),
    Gate("serving", "weight_sharing.leaked_segments_after_faults", "==", 0),
    # training: the fused path's speedups are the PR 3 contract
    Gate("training", "pretrain.speedup_steps_per_s", ">=", 2.0),
    Gate("training", "optimizer_microbench.speedup", ">=", 1.2),
    Gate("training", "finetune.small.speedup_steps_per_s", ">=", 0.9),
    # data-parallel training (PR 9): N-worker runs must be bit-identical
    # to single-process (zero parity mismatches across losses, arena
    # bytes, optimizer moments), the all-reduce must stay a single
    # vectorized sum per step, and the per-rank work split must halve at
    # 2 workers.  Wall-clock steps/s never gate — the bench host is one
    # core, so scaling is asserted on the algorithmic counters (total
    # examples / max per-rank examples), which are machine-independent.
    Gate("training", "ddp.parity_mismatches", "==", 0),
    Gate("training", "ddp.reduce_ops_per_step", "==", 1),
    Gate("training", "ddp.workers_2.counter_speedup", ">=", 1.5),
]

#: Report-only wall-time/throughput metrics, printed for trend reading.
REPORT_ONLY: List[Tuple[str, str]] = [
    ("serving", "engine_trace.snippets_per_s"),
    ("serving", "sequential_trace.snippets_per_s"),
    ("serving", "reload_under_load.reload_s"),
    ("serving", "canary_rollout.promote_s"),
    ("serving", "fault_injection.recovery_s"),
    ("serving", "fault_injection.round_latency.p99_ms"),
    ("serving", "ipc.queue.2.snippets_per_s"),
    ("serving", "ipc.shm.2.snippets_per_s"),
    ("serving", "dirty_trace.snippets_per_s"),
    ("serving", "weight_sharing.reload_s"),
    ("serving", "weight_sharing.fleet.1.cold_start_s"),
    ("serving", "weight_sharing.fleet.8.cold_start_s"),
    ("serving", "weight_sharing.canary_flip.promote_s"),
    ("training", "pretrain.fused.steps_per_s"),
    ("training", "finetune.small.fused.steps_per_s"),
    ("training", "ddp.workers_1.steps_per_s"),
    ("training", "ddp.workers_2.steps_per_s"),
    ("training", "ddp.workers_4.steps_per_s"),
]


def lookup(report: Dict, path: str):
    """Resolve a dotted ``path`` in ``report``; ``None`` when absent."""
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_gates(reports: Dict[str, Dict],
                gates: Optional[List[Gate]] = None) -> List[str]:
    """Evaluate ``gates`` against loaded ``reports``; returns failures.

    Each failure is a one-line human-readable message; an empty list means
    the gate is green.  Missing reports or metrics fail loudly.
    """
    failures = []
    for gate in (GATES if gates is None else gates):
        report = reports.get(gate.report)
        if report is None:
            failures.append(f"FAIL {gate.describe()}: report not loaded")
            continue
        value = lookup(report, gate.path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(
                f"FAIL {gate.describe()}: metric missing from report")
            continue
        if not _OPS[gate.op](value, gate.threshold):
            failures.append(
                f"FAIL {gate.describe()}: got {value}")
    return failures


def _load(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="fail on bench-report regressions (ratios/counters only)")
    parser.add_argument("--serving", type=Path,
                        default=DEFAULT_REPORTS["serving"],
                        help="path to BENCH_serving.json")
    parser.add_argument("--training", type=Path,
                        default=DEFAULT_REPORTS["training"],
                        help="path to BENCH_training.json")
    parser.add_argument("--list", action="store_true",
                        help="print the gate table and exit")
    args = parser.parse_args(argv)
    if args.list:
        for gate in GATES:
            print(gate.describe())
        return 0
    reports = {}
    for key, path in (("serving", args.serving), ("training", args.training)):
        loaded = _load(path)
        if loaded is None:
            print(f"FAIL cannot read {key} report at {path}")
        else:
            reports[key] = loaded
    failures = check_gates(reports)
    for gate in GATES:
        if not any(gate.describe() in failure for failure in failures):
            value = lookup(reports.get(gate.report, {}), gate.path)
            print(f"PASS {gate.describe()} (got {value})")
    for failure in failures:
        print(failure)
    print("-- report-only (wall-clock; single noisy core, never gated) --")
    for key, path in REPORT_ONLY:
        value = lookup(reports.get(key, {}), path)
        if value is not None:
            print(f"     {key}:{path} = {value}")
    if failures or len(reports) < len(DEFAULT_REPORTS):
        print(f"bench_gate: {len(failures)} gate(s) failed", file=sys.stderr)
        return 1
    print(f"bench_gate: all {len(GATES)} gates green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
