#!/usr/bin/env python
"""Dependency-free fallback linter for ``scripts/check.sh --lint``.

The real lint gate is ``ruff check .`` (configured in ``pyproject.toml``
and run by the CI workflow, which can pip-install ruff).  Development
containers for this repo deliberately can't install new packages, so this
script re-implements the high-signal subset of the configured rules with
nothing but the stdlib ``ast`` module:

* **syntax errors** (ruff E9): every ``.py`` file must parse;
* **unused imports** (ruff F401): a module/name imported at module scope
  and never referenced — names re-exported via ``__all__`` or imported
  as ``x as x`` count as used, ``from __future__`` and ``__init__.py``
  re-export files are handled, and a trailing ``# noqa`` comment on the
  import line suppresses the finding;
* **duplicate top-level definitions** (ruff F811): a function/class
  defined twice in the same scope, the second silently shadowing the
  first.

Exit status 0 when clean, 1 with one ``path:line: message`` per finding —
the same contract ``ruff check`` has, so ``check.sh`` treats the two
interchangeably.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Directories scanned, relative to the repo root (src first: findings
#: there matter most).
SCAN_DIRS = ("src", "tests", "benchmarks", "scripts", "examples")


def _noqa_lines(source: str) -> set:
    """1-based line numbers carrying a ``# noqa`` comment."""
    return {i for i, line in enumerate(source.splitlines(), start=1)
            if "# noqa" in line}


def _binding_name(alias: ast.alias) -> str:
    """The local name an import alias binds (``a.b`` binds ``a``)."""
    if alias.asname:
        return alias.asname
    return alias.name.split(".", 1)[0]


class _UsageCollector(ast.NodeVisitor):
    """Collect every identifier that could reference an imported binding."""

    def __init__(self) -> None:
        self.used = set()

    def visit_Name(self, node: ast.Name) -> None:  # noqa: N802 — ast API
        self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:  # noqa: N802
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:  # noqa: N802
        pass  # the import statement itself is not a use

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:  # noqa: N802
        pass


def _exported_names(tree: ast.Module) -> set:
    """Names listed in a module-level ``__all__`` (best effort)."""
    exported = set()
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                continue
            if isinstance(value, (list, tuple)):
                exported.update(str(name) for name in value)
    return exported


def _unused_imports(tree: ast.Module, source: str, is_init: bool) -> list:
    """(line, message) findings for module-scope imports never referenced."""
    noqa = _noqa_lines(source)
    exported = _exported_names(tree)
    collector = _UsageCollector()
    collector.visit(tree)
    # names in docstring-free string annotations ("List[Foo]") still parse
    # as plain strings; count every word in string constants as a use so
    # typing-style forward references don't false-positive
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            collector.used.update(
                part for chunk in node.value.replace(".", " ").split()
                for part in (chunk.strip("[](),~`'\""),) if part.isidentifier())
    findings = []
    for node in tree.body:
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if node.lineno in noqa:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            name = _binding_name(alias)
            explicit_reexport = alias.asname is not None and (
                alias.asname == alias.name)
            if (name in collector.used or name in exported
                    or explicit_reexport or (is_init and name in exported)):
                continue
            if is_init:
                # __init__.py files re-export for their package namespace;
                # only flag when the module has an __all__ that omits them
                if not exported:
                    continue
            findings.append((node.lineno, f"unused import '{name}' (F401-like)"))
    return findings


def _duplicate_defs(tree: ast.Module) -> list:
    """(line, message) findings for top-level names defined twice."""
    seen = {}
    findings = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name in seen:
                findings.append((
                    node.lineno,
                    f"redefinition of '{node.name}' from line "
                    f"{seen[node.name]} (F811-like)"))
            seen[node.name] = node.lineno
    return findings


def lint_file(path: Path) -> list:
    """All findings for one file, as ``(line, message)`` pairs."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg} (E9-like)")]
    is_init = path.name == "__init__.py"
    return sorted(_unused_imports(tree, source, is_init)
                  + _duplicate_defs(tree))


def main(argv=None) -> int:
    """Lint the repo (or explicit file arguments); 0 clean, 1 findings."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [p for d in SCAN_DIRS for p in sorted((root / d).rglob("*.py"))]
    failures = 0
    for path in files:
        for line, message in lint_file(path):
            try:
                shown = path.relative_to(root)
            except ValueError:
                shown = path
            print(f"{shown}:{line}: {message}")
            failures += 1
    if failures:
        print(f"lint_fallback: {failures} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_fallback: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
