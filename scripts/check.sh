#!/usr/bin/env bash
# Repo check: lint, tier-1 test suite, and the fast perf smoke subset.
#
#   scripts/check.sh            # lint + tier-1 + perf smoke
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --docs     # docs health only: links, CLI-flag
#                               # coverage, repro.serve docstring audit
#   scripts/check.sh --lint     # lint only (ruff, or the stdlib fallback)
#   scripts/check.sh --perf     # perf smoke subset only
#   scripts/check.sh --chaos    # chaos smoke only: fault-injection suite
#                               # (worker kill/hang/drop, admission control)
#   scripts/check.sh --ipc      # IPC stress only: shared-memory ring
#                               # property/stress suite + ring-fault tests
#   scripts/check.sh --fuzz     # fuzz smoke only: seeded dirty-input
#                               # sweep through the recovering frontend
#                               # (REPRO_FUZZ_N mutants/corpus, ~30 s)
#   scripts/check.sh --ddp      # DDP determinism only: the data-parallel
#                               # trainer's bit-identity/parity suite
#                               # (1-vs-N losses + arena bytes, worker
#                               # death, resume, /dev/shm hygiene)
#   scripts/check.sh --shm-weights  # one-copy weights only: blob
#                               # round-trip/validation + fleet segment
#                               # swap, drain, and /dev/shm cleanup
#
# Tier-1 is the gate every change must keep green (`pytest -x -q` from the
# repo root; bench_* files are never collected there).  The smoke subset
# runs the `-m perf`-marked benches that also carry the `smoke` marker —
# seconds, not minutes — to catch hot-path regressions (e.g. the fused and
# legacy training paths drifting apart) without paying for the full
# BENCH_* report sweep.  The --docs step is the documentation pass alone
# (also part of tier-1), for doc-only edits.  Lint runs `ruff check .`
# (config in pyproject.toml) when ruff is installed, otherwise the stdlib
# fallback linter scripts/lint_fallback.py.
#
# The CI workflow (.github/workflows/ci.yml) runs these same modes, one
# job per stage, plus `python scripts/bench_gate.py` over the committed
# bench reports; tests/test_check_script.py pins the invocations so the
# two cannot drift apart.
#
# Every stage reports an explicit pass/fail banner and the script exits
# non-zero on the first failing stage — stage failures are detected and
# named by run_stage itself, not left to `set -e` subshell semantics.

set -uo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="$(pwd)/src${PYTHONPATH:+:$PYTHONPATH}"

PASSED_STAGES=()

run_stage() {
    local name="$1"; shift
    echo "== ${name} =="
    "$@"
    local status=$?
    if [[ $status -ne 0 ]]; then
        echo "check.sh: stage '${name}' FAILED (exit ${status})" >&2
        exit "$status"
    fi
    PASSED_STAGES+=("$name")
    echo "check.sh: stage '${name}' passed"
}

stage_lint() {
    if command -v ruff >/dev/null 2>&1; then
        ruff check .
    else
        echo "ruff not installed; running stdlib fallback linter"
        python scripts/lint_fallback.py
    fi
}

stage_tier1() {
    python -m pytest -x -q
}

stage_docs() {
    python -m pytest -x -q tests/test_docs_links.py
}

stage_perf_smoke() {
    # bench_*.py files are outside the default collection pattern on
    # purpose (tier-1 must never pick them up), so name them explicitly
    (cd benchmarks && python -m pytest -q -m "perf and smoke" -p no:cacheprovider bench_*.py)
}

stage_chaos_smoke() {
    # the deterministic fault-injection suite: worker kill/hang/drop/
    # malformed faults, crash-loop degrade, admission control.  Part of
    # tier-1 too; this mode isolates it so serving changes get a fast,
    # targeted signal before the full suite.
    python -m pytest -x -q tests/test_serve_faults.py
}

stage_ipc_stress() {
    # the zero-copy data-plane suite: SPSC ring invariants (property
    # tests against a reference deque), frame codecs, queue-vs-shm
    # parity on a 1k-snippet trace, multi-producer stress, segment
    # lifecycle — plus the ring-fault subset of the chaos suite (torn
    # frames, worker killed holding a slot, deadline on a full ring).
    python -m pytest -x -q tests/test_serve_ipc.py \
        "tests/test_serve_faults.py::TestRingFaults"
}

stage_fuzz_smoke() {
    # seeded, deterministic dirty-input sweep: every mutant must come
    # back with diagnostics inside the budget, never an exception.  The
    # recovery suite is part of tier-1 at a small REPRO_FUZZ_N; this
    # mode rescales the same property tests to a deeper sweep.
    REPRO_FUZZ_N="${REPRO_FUZZ_N:-1200}" \
        python -m pytest -x -q tests/test_clang_recovery.py
}

stage_ddp() {
    # the data-parallel determinism layer: N-worker training must be
    # bit-identical to single-process (loss trajectory, arena bytes,
    # optimizer moments), with clean worker-death semantics and no
    # leaked shared-memory segments.  Part of tier-1 too; this mode
    # isolates it so training changes get a fast, targeted signal.
    python -m pytest -x -q tests/test_train_ddp.py
}

stage_shm_weights() {
    # the one-copy weight plane: blob round-trip + digest validation,
    # legacy-checkpoint fallback, fleet segment swap on reload/canary,
    # replay-at-spawn, and close() unlinking segments dead workers held.
    # Part of tier-1 too; this mode isolates it so persistence/serving
    # changes get a fast, targeted signal.
    python -m pytest -x -q tests/test_persistence_blob.py \
        tests/test_weight_sharing.py
}

case "${1:-}" in
    --docs)
        run_stage "docs" stage_docs
        ;;
    --lint)
        run_stage "lint" stage_lint
        ;;
    --perf)
        run_stage "perf-smoke" stage_perf_smoke
        ;;
    --fast)
        run_stage "tier-1" stage_tier1
        ;;
    --chaos)
        run_stage "chaos-smoke" stage_chaos_smoke
        ;;
    --ipc)
        run_stage "ipc-stress" stage_ipc_stress
        ;;
    --fuzz)
        run_stage "fuzz-smoke" stage_fuzz_smoke
        ;;
    --ddp)
        run_stage "ddp-determinism" stage_ddp
        ;;
    --shm-weights)
        run_stage "shm-weights" stage_shm_weights
        ;;
    "")
        run_stage "lint" stage_lint
        run_stage "tier-1" stage_tier1
        run_stage "perf-smoke" stage_perf_smoke
        ;;
    *)
        echo "check.sh: unknown mode '${1}' (use --fast, --docs, --lint, --perf, --chaos, --ipc, --fuzz, --ddp, --shm-weights, or no argument)" >&2
        exit 2
        ;;
esac

echo "check.sh: all green (${PASSED_STAGES[*]})"
