#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the fast perf smoke subset.
#
#   scripts/check.sh            # tier-1 + perf smoke
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --docs     # docs health only: links, CLI-flag
#                               # coverage, repro.serve docstring audit
#
# Tier-1 is the gate every change must keep green (`pytest -x -q` from the
# repo root; bench_* files are never collected there).  The smoke subset
# runs the `-m perf`-marked benches that also carry the `smoke` marker —
# seconds, not minutes — to catch hot-path regressions (e.g. the fused and
# legacy training paths drifting apart) without paying for the full
# BENCH_* report sweep.  The --docs step is the documentation pass alone
# (also part of tier-1), for doc-only edits.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="$(pwd)/src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--docs" ]]; then
    echo "== docs =="
    python -m pytest -x -q tests/test_docs_links.py
    echo "check.sh: docs green"
    exit 0
fi

echo "== tier-1 =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== perf smoke =="
    # bench_*.py files are outside the default collection pattern on
    # purpose (tier-1 must never pick them up), so name them explicitly
    (cd benchmarks && python -m pytest -q -m "perf and smoke" -p no:cacheprovider bench_*.py)
fi

echo "check.sh: all green"
