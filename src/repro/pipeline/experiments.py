"""One function per table and figure in the paper's evaluation.

Each returns a structured result dict (consumed by the benchmark harness's
assertions) and prints nothing; the benches render the same rows the paper
reports via :func:`repro.utils.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional


from repro.benchsuites import polybench_suite, specomp_suite
from repro.corpus import directive_stats, domain_distribution, length_histogram
from repro.corpus.records import Record
from repro.data.encoding import EncodedSplit, encode_batch
from repro.eval import binary_metrics, error_rate_by_length
from repro.explain import LimeExplainer
from repro.models import PragFormer
from repro.pipeline.config import ScaleConfig
from repro.pipeline.context import ExperimentContext, get_context
from repro.tokenize import Representation, text_tokens
from repro.tokenize.stats import representation_stats

__all__ = [
    "exp_table3", "exp_table4", "exp_fig3", "exp_table5", "exp_table7",
    "exp_fig456", "exp_table8", "exp_fig7", "exp_table9", "exp_table10",
    "exp_table11", "exp_table12_fig8",
    "ablation_pretraining", "ablation_capacity", "ablation_seq_length",
    "PAPER_EXAMPLES",
]


# ---------------------------------------------------------------------------
# Corpus statistics: Tables 3-5, Figure 3, Table 7
# ---------------------------------------------------------------------------


def exp_table3(scale: Optional[ScaleConfig] = None) -> Dict[str, int]:
    """Table 3: OpenMP directive statistics of the raw database."""
    return directive_stats(get_context(scale).corpus)


def exp_table4(scale: Optional[ScaleConfig] = None) -> Dict[str, int]:
    """Table 4: code snippet lengths."""
    return length_histogram(get_context(scale).corpus)


def exp_fig3(scale: Optional[ScaleConfig] = None) -> Dict[str, float]:
    """Figure 3: domain distribution of snippet sources."""
    return domain_distribution(get_context(scale).corpus)


def exp_table5(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, int]]:
    """Table 5: dataset sizes for the directive and clause tasks."""
    ctx = get_context(scale)
    return {
        "directive": ctx.directive_splits.sizes(),
        "clause": ctx.clause_splits("private").sizes(),
    }


def exp_table7(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    """Table 7: type-level stats for the four code representations."""
    ctx = get_context(scale)
    return {
        rep.value: representation_stats(ctx.directive_splits, rep, ctx.cache)
        for rep in Representation
    }


# ---------------------------------------------------------------------------
# Representation comparison: Figures 4-6
# ---------------------------------------------------------------------------


def exp_fig456(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, List[float]]]:
    """Figures 4-6: per-epoch validation accuracy, train loss, valid loss
    for all four representations."""
    ctx = get_context(scale)
    out: Dict[str, Dict[str, List[float]]] = {}
    for rep in Representation:
        _, history = ctx.train_pragformer(rep)
        out[rep.value] = {
            "valid_accuracy": history.valid_accuracy,
            "train_loss": history.train_loss,
            "valid_loss": history.valid_loss,
        }
    return out


# ---------------------------------------------------------------------------
# Table 8: directive classification, three systems
# ---------------------------------------------------------------------------


def exp_table8(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    ctx = get_context(scale)
    enc = ctx.encoded()
    labels = enc.test.labels
    rows: Dict[str, Dict[str, float]] = {}

    rows["PragFormer"] = binary_metrics(ctx.pragformer.predict(enc.test), labels).as_dict()
    rows["BoW"] = binary_metrics(ctx.bow.predict(enc.test), labels).as_dict()

    codes = [e.record.code for e in ctx.directive_splits.test]
    compar_preds, failures = ctx.compar.predict_directive(codes)
    rows["ComPar"] = binary_metrics(compar_preds, labels).as_dict()
    rows["ComPar"]["parse_failures"] = failures
    return rows


# ---------------------------------------------------------------------------
# Figure 7: error rate by snippet length
# ---------------------------------------------------------------------------


def exp_fig7(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    ctx = get_context(scale)
    enc = ctx.encoded()
    preds = ctx.pragformer.predict(enc.test)
    line_counts = [e.record.line_count for e in ctx.directive_splits.test]
    return error_rate_by_length(line_counts, preds, enc.test.labels)


# ---------------------------------------------------------------------------
# Tables 9-10: clause classification
# ---------------------------------------------------------------------------


def _clause_experiment(ctx: ExperimentContext, clause: str) -> Dict[str, Dict[str, float]]:
    enc = ctx.clause_encoded(clause)
    labels = enc.test.labels
    rows: Dict[str, Dict[str, float]] = {}
    rows["PragFormer"] = binary_metrics(
        ctx.clause_model(clause).predict(enc.test), labels).as_dict()
    rows["BoW"] = binary_metrics(ctx.clause_bow(clause).predict(enc.test), labels).as_dict()
    codes = [e.record.code for e in ctx.clause_splits(clause).test]
    predict = (ctx.compar.predict_private if clause == "private"
               else ctx.compar.predict_reduction)
    preds, failures = predict(codes)
    rows["ComPar"] = binary_metrics(preds, labels).as_dict()
    rows["ComPar"]["parse_failures"] = failures
    return rows


def exp_table9(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    """Table 9: private-clause identification."""
    return _clause_experiment(get_context(scale), "private")


def exp_table10(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    """Table 10: reduction-clause identification."""
    return _clause_experiment(get_context(scale), "reduction")


# ---------------------------------------------------------------------------
# Table 11: generalization to PolyBench / SPEC-OMP
# ---------------------------------------------------------------------------


def _suite_split(records: List[Record], ctx: ExperimentContext) -> EncodedSplit:
    enc = ctx.encoded()
    return encode_batch(
        [text_tokens(rec.code) for rec in records], enc.vocab,
        ctx.scale.pragformer.max_len,
        labels=[int(rec.has_omp) for rec in records],
    )


def exp_table11(scale: Optional[ScaleConfig] = None) -> Dict[str, Dict[str, float]]:
    ctx = get_context(scale)
    out: Dict[str, Dict[str, float]] = {}
    for suite_name, records in (("PolyBench", polybench_suite()),
                                ("SPEC-OMP", specomp_suite())):
        split = _suite_split(records, ctx)
        out[f"PragFormer {suite_name}"] = binary_metrics(
            ctx.pragformer.predict(split), split.labels).as_dict()
        codes = [r.code for r in records]
        preds, failures = ctx.compar.predict_directive(codes)
        row = binary_metrics(preds, split.labels).as_dict()
        row["parse_failures"] = failures
        out[f"ComPar {suite_name}"] = row
    return out


# ---------------------------------------------------------------------------
# Table 12 + Figure 8: examples and LIME explanations
# ---------------------------------------------------------------------------

#: The paper's four representative examples, verbatim.
PAPER_EXAMPLES = [
    {
        "name": "polybench_mvt",
        "code": ("for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++)\n"
                 "  for (j = 0; j < POLYBENCH_LOOP_BOUND(4000, n); j++)\n"
                 "    x1[i] = x1[i] + (A[i][j] * y_1[j]);"),
        "label": 1,
    },
    {
        "name": "io_loop",
        "code": ('for (i = 0; i < n; i++) {\n'
                 '  fprintf(stderr, "%0.2lf ", x[i]);\n'
                 '  if ((i % 20) == 0)\n'
                 '    fprintf(stderr, " \\n");\n}'),
        "label": 0,
    },
    {
        "name": "magick_colormap",
        "code": ("for (i = 0; i < (( ssize_t) image->colors); i++)\n"
                 "  image->colormap[i].opacity = (IndexPacket) i;"),
        "label": 1,
    },
    {
        "name": "maxgrid_unannotated",
        "code": ("for (i = 0; i < maxgrid; i++)\n"
                 "  for (j = 0; j < maxgrid; j++){\n"
                 "    sum_tang[i][j] = ( int) ((i + 1) * (j + 1));\n"
                 "    mean[i][j] = ((( int) i) - j) / maxgrid;\n"
                 "    path[i][j] = ((( int) i) * (j - 1)) / maxgrid; }"),
        "label": 0,
    },
]


def exp_table12_fig8(scale: Optional[ScaleConfig] = None,
                     n_lime_samples: int = 200) -> List[Dict]:
    """Run the paper's four examples through PragFormer and explain each
    prediction with LIME token importances."""
    ctx = get_context(scale)
    enc = ctx.encoded()
    vocab = enc.vocab
    model = ctx.pragformer
    max_len = ctx.scale.pragformer.max_len

    def predict_fn(token_lists):
        split = encode_batch(token_lists, vocab, max_len)
        return model.predict_proba(split)[:, 1]

    explainer = LimeExplainer(predict_fn, n_samples=n_lime_samples, rng=7)
    results = []
    for example in PAPER_EXAMPLES:
        tokens = text_tokens(example["code"])
        explanation = explainer.explain(tokens)
        results.append({
            "name": example["name"],
            "label": example["label"],
            "prediction": int(explanation.base_probability > 0.5),
            "probability": explanation.base_probability,
            "top_tokens": explanation.top(8),
            "supporting": explanation.supporting(5),
            "opposing": explanation.opposing(5),
        })
    return results


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------


def ablation_pretraining(scale: Optional[ScaleConfig] = None) -> Dict[str, float]:
    """A-1: MLM-pretrained initialization vs training from scratch (§4.1's
    transfer-learning argument)."""
    ctx = get_context(scale)
    enc = ctx.encoded()
    labels = enc.test.labels

    pretrained_acc = binary_metrics(ctx.pragformer.predict(enc.test), labels).accuracy

    scratch = PragFormer(len(enc.vocab), ctx.scale.pragformer, rng=ctx.scale.seed)
    scratch.fit(enc.train, enc.validation, epochs=ctx.scale.epochs)
    scratch_acc = binary_metrics(scratch.predict(enc.test), labels).accuracy
    return {"pretrained": pretrained_acc, "scratch": scratch_acc}


def ablation_capacity(scale: Optional[ScaleConfig] = None) -> Dict[str, float]:
    """A-2: the PragFormer-vs-BoW gap is architectural, not parametric —
    even a down-scaled transformer beats the (converged) linear BoW."""
    from repro.models.pragformer import PragFormerConfig

    ctx = get_context(scale)
    enc = ctx.encoded()
    labels = enc.test.labels
    out = {"bow": binary_metrics(ctx.bow.predict(enc.test), labels).accuracy}
    tiny_cfg = PragFormerConfig(d_model=32, n_heads=2, n_layers=1, d_ff=64,
                                d_head_hidden=32, batch_size=32, seed=0)
    tiny = PragFormer(len(enc.vocab), tiny_cfg, rng=ctx.scale.seed)
    tiny.fit(enc.train, enc.validation, epochs=ctx.scale.epochs)
    out["transformer_tiny"] = binary_metrics(tiny.predict(enc.test), labels).accuracy
    out["transformer_default"] = binary_metrics(
        ctx.pragformer.predict(enc.test), labels).accuracy
    return out


def ablation_seq_length(scale: Optional[ScaleConfig] = None) -> Dict[str, float]:
    """A-3: §4.3 caps sequences at 110 tokens; measure shorter truncations."""
    from repro.data import encode_dataset
    from repro.models.pragformer import PragFormerConfig

    ctx = get_context(scale)
    out: Dict[str, float] = {}
    for max_len in (32, 64, 110):
        enc = encode_dataset(ctx.directive_splits, Representation.TEXT,
                             max_len=max_len, min_freq=ctx.scale.min_freq,
                             cache=ctx.cache)
        cfg_dict = ctx.scale.pragformer.__dict__ | {"max_len": max_len}
        cfg = PragFormerConfig(**cfg_dict)
        model = PragFormer(len(enc.vocab), cfg, rng=ctx.scale.seed)
        model.fit(enc.train, enc.validation, epochs=max(3, ctx.scale.epochs - 2))
        out[f"max_len_{max_len}"] = binary_metrics(
            model.predict(enc.test), enc.test.labels).accuracy
    return out
