"""Lazy, memoized experiment context.

Every table/figure experiment shares the same corpus, splits, encodings, and
trained models; building them once per scale keeps the full benchmark
harness tractable.  All artifacts are constructed deterministically from the
scale's seed.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple


from repro.corpus import Corpus, CorpusConfig, build_corpus
from repro.data import (
    DatasetSplits,
    EncodedDataset,
    TokenCache,
    encode_dataset,
    make_clause_dataset,
    make_directive_dataset,
)
from repro.models import BowLogistic, MLMConfig, MLMPretrainer, PragFormer, TrainHistory
from repro.nn import EncoderConfig
from repro.pipeline.config import ScaleConfig, get_scale
from repro.s2s import ComPar
from repro.tokenize import Representation

__all__ = ["ExperimentContext", "get_context"]


class ExperimentContext:
    """Shared, lazily-built artifacts for one scale."""

    def __init__(self, scale: Optional[ScaleConfig] = None) -> None:
        self.scale = scale or get_scale()
        self.cache = TokenCache()
        self._corpus: Optional[Corpus] = None
        self._directive_splits: Optional[DatasetSplits] = None
        self._clause_splits: Dict[str, DatasetSplits] = {}
        self._encoded: Dict[Representation, EncodedDataset] = {}
        self._clause_encoded: Dict[str, EncodedDataset] = {}
        self._pragformer: Optional[Tuple[PragFormer, TrainHistory]] = None
        self._rep_models: Dict[Representation, Tuple[PragFormer, TrainHistory]] = {}
        self._clause_models: Dict[str, PragFormer] = {}
        self._bow: Optional[BowLogistic] = None
        self._clause_bows: Dict[str, BowLogistic] = {}
        self._pretrained_state: Optional[dict] = None
        self._shared_vocab = None
        #: when set (e.g. ``repro train --workers N``), model fits run
        #: through the shared-memory DDP trainer; bit-identical to the
        #: trainer's single-process path at any worker count
        self.train_workers: Optional[int] = None
        self.compar = ComPar()

    # -- data ------------------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            self._corpus = build_corpus(
                CorpusConfig(n_records=self.scale.corpus_records, seed=self.scale.seed)
            )
        return self._corpus

    @property
    def directive_splits(self) -> DatasetSplits:
        if self._directive_splits is None:
            self._directive_splits = make_directive_dataset(self.corpus, rng=self.scale.seed)
        return self._directive_splits

    def clause_splits(self, clause: str) -> DatasetSplits:
        if clause not in self._clause_splits:
            self._clause_splits[clause] = make_clause_dataset(
                self.corpus, clause, balance=True, rng=self.scale.seed
            )
        return self._clause_splits[clause]

    @property
    def shared_vocab(self):
        """One vocabulary over all four representations' training streams —
        the analogue of the paper's single DeepSCC tokenizer, shared by every
        representation so the pretrained checkpoint is loadable everywhere.
        AST label types are rare in the TEXT-only MLM pretraining corpus,
        reproducing the paper's transfer mismatch for AST inputs (§4.2)."""
        if self._shared_vocab is None:
            from repro.tokenize import Vocab

            streams = []
            for rep in Representation:
                streams.extend(self.cache.tokens(ex.record, rep)
                               for ex in self.directive_splits.train)
            self._shared_vocab = Vocab.build(streams, min_freq=self.scale.min_freq)
        return self._shared_vocab

    def encoded(self, rep: Representation = Representation.TEXT) -> EncodedDataset:
        if rep not in self._encoded:
            self._encoded[rep] = encode_dataset(
                self.directive_splits, rep,
                max_len=self.scale.pragformer.max_len,
                min_freq=self.scale.min_freq, cache=self.cache,
                vocab=self.shared_vocab,
            )
        return self._encoded[rep]

    def clause_encoded(self, clause: str) -> EncodedDataset:
        if clause not in self._clause_encoded:
            self._clause_encoded[clause] = encode_dataset(
                self.clause_splits(clause), Representation.TEXT,
                max_len=self.scale.pragformer.max_len,
                min_freq=self.scale.min_freq, cache=self.cache,
            )
        return self._clause_encoded[clause]

    # -- models -----------------------------------------------------------------

    @property
    def pretrained_state(self) -> dict:
        """MLM-pretrained encoder weights over the (unlabeled) corpus."""
        if self._pretrained_state is None:
            enc = self.encoded()
            cfg = self.scale.pragformer
            encoder_cfg = EncoderConfig(
                vocab_size=len(enc.vocab), d_model=cfg.d_model, n_heads=cfg.n_heads,
                n_layers=cfg.n_layers, d_ff=cfg.d_ff, max_len=cfg.max_len,
                dropout=cfg.dropout,
            )
            pretrainer = MLMPretrainer(encoder_cfg, enc.vocab,
                                       MLMConfig(batch_size=cfg.batch_size),
                                       rng=self.scale.seed + 17)
            pretrainer.fit(enc.train.ids, enc.train.mask,
                           epochs=self.scale.mlm_epochs,
                           n_workers=self.train_workers)
            self._pretrained_state = pretrainer.encoder_state()
        return self._pretrained_state

    def train_pragformer(self, rep: Representation = Representation.TEXT,
                         pretrained: bool = True) -> Tuple[PragFormer, TrainHistory]:
        """Train (memoized) a PragFormer on the directive task for ``rep``."""
        if rep in self._rep_models:
            return self._rep_models[rep]
        enc = self.encoded(rep)
        model = PragFormer(len(enc.vocab), self.scale.pragformer, rng=self.scale.seed)
        if pretrained:
            # the same text-MLM checkpoint initializes every representation,
            # as the paper fine-tunes the same DeepSCC model for each
            model.load_pretrained_encoder(self.pretrained_state)
        history = model.fit(enc.train, enc.validation, epochs=self.scale.epochs,
                            n_workers=self.train_workers)
        self._rep_models[rep] = (model, history)
        return model, history

    @property
    def pragformer(self) -> PragFormer:
        """The main (TEXT-representation) directive classifier."""
        return self.train_pragformer(Representation.TEXT)[0]

    def clause_model(self, clause: str) -> PragFormer:
        if clause not in self._clause_models:
            enc = self.clause_encoded(clause)
            # zlib.crc32 is a stable digest; hash() is salted per process
            # (PYTHONHASHSEED) and made clause models irreproducible
            model = PragFormer(len(enc.vocab), self.scale.pragformer,
                               rng=self.scale.seed + zlib.crc32(clause.encode("utf-8")) % 1000)
            model.fit(enc.train, enc.validation, epochs=self.scale.epochs)
            self._clause_models[clause] = model
        return self._clause_models[clause]

    @property
    def bow(self) -> BowLogistic:
        if self._bow is None:
            enc = self.encoded()
            self._bow = BowLogistic(len(enc.vocab)).fit(enc.train)
        return self._bow

    def clause_bow(self, clause: str) -> BowLogistic:
        if clause not in self._clause_bows:
            enc = self.clause_encoded(clause)
            self._clause_bows[clause] = BowLogistic(len(enc.vocab)).fit(enc.train)
        return self._clause_bows[clause]


_CONTEXTS: Dict[str, ExperimentContext] = {}


def get_context(scale: Optional[ScaleConfig] = None) -> ExperimentContext:
    """Process-wide memoized context per scale name."""
    scale = scale or get_scale()
    if scale.name not in _CONTEXTS:
        _CONTEXTS[scale.name] = ExperimentContext(scale)
    return _CONTEXTS[scale.name]
