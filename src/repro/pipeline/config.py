"""Experiment scales.

``SMALL`` regenerates every table and figure on a laptop in minutes and is
the default for the benchmark harness; ``FULL`` matches the paper's corpus
size (17,013 records) and a larger encoder.  Select via the ``REPRO_SCALE``
environment variable ('small' | 'full') or pass a config explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.models.pragformer import PragFormerConfig

__all__ = ["ScaleConfig", "SMALL", "FULL", "get_scale"]


@dataclass(frozen=True)
class ScaleConfig:
    name: str
    corpus_records: int
    epochs: int
    mlm_epochs: int
    pragformer: PragFormerConfig
    min_freq: int = 2
    seed: int = 0


SMALL = ScaleConfig(
    name="small",
    corpus_records=1400,
    epochs=8,
    mlm_epochs=2,
    pragformer=PragFormerConfig(d_model=64, n_heads=4, n_layers=2, d_ff=128,
                                d_head_hidden=64, batch_size=32, seed=0),
)

FULL = ScaleConfig(
    name="full",
    corpus_records=17013,
    epochs=10,
    mlm_epochs=4,
    pragformer=PragFormerConfig(d_model=128, n_heads=8, n_layers=4, d_ff=256,
                                d_head_hidden=128, batch_size=32, seed=0),
)


def get_scale() -> ScaleConfig:
    """Scale selected by ``REPRO_SCALE`` (default: small)."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    if name == "full":
        return FULL
    if name == "small":
        return SMALL
    raise ValueError(f"unknown REPRO_SCALE {name!r}; use 'small' or 'full'")
