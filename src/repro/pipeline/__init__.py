"""End-to-end experiment pipeline: scales, shared context, and one function
per table/figure in the paper's evaluation."""

from repro.pipeline.config import FULL, SMALL, ScaleConfig, get_scale
from repro.pipeline.context import ExperimentContext, get_context
from repro.pipeline.experiments import (
    PAPER_EXAMPLES,
    ablation_capacity,
    ablation_pretraining,
    ablation_seq_length,
    exp_fig3,
    exp_fig456,
    exp_fig7,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_table7,
    exp_table8,
    exp_table9,
    exp_table10,
    exp_table11,
    exp_table12_fig8,
)

__all__ = [
    "FULL",
    "SMALL",
    "ScaleConfig",
    "get_scale",
    "ExperimentContext",
    "get_context",
    "PAPER_EXAMPLES",
    "ablation_capacity",
    "ablation_pretraining",
    "ablation_seq_length",
    "exp_fig3",
    "exp_fig456",
    "exp_fig7",
    "exp_table3",
    "exp_table4",
    "exp_table5",
    "exp_table7",
    "exp_table8",
    "exp_table9",
    "exp_table10",
    "exp_table11",
    "exp_table12_fig8",
]
