"""Bag-of-Words + logistic regression — the statistical baseline of §5.2.

Token order is discarded: each snippet becomes a count vector over the
vocabulary (specials excluded), and a logistic-regression classifier is
trained by full-batch gradient descent with L2 regularization.  Count
matrices are CSR-sparse so the full-scale corpus (17k × ~6.5k vocab) stays
small in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.data.encoding import EncodedSplit

__all__ = ["BowConfig", "BowLogistic"]


@dataclass(frozen=True)
class BowConfig:
    l2: float = 1e-4
    max_iter: int = 500
    #: ids below this index are special tokens, excluded from counts
    n_specials: int = 4


def _count_matrix(split: EncodedSplit, vocab_size: int, n_specials: int) -> sparse.csr_matrix:
    """(N, V) L1-normalized token-count matrix from padded id rows.

    Row normalization (term frequency) keeps the logistic activations in a
    length-independent range, which full-batch GD needs to converge.
    """
    n, length = split.ids.shape
    rows = np.repeat(np.arange(n), length)
    cols = split.ids.reshape(-1)
    data = split.mask.reshape(-1).astype(np.float64)
    # keep <unk> (id 1): the rate of out-of-vocabulary identifiers is itself
    # a strong signal (idiosyncratic naming anti-correlates with OpenMP use)
    keep = ((cols >= n_specials) | (cols == 1)) & (data > 0)
    mat = sparse.coo_matrix(
        (data[keep], (rows[keep], cols[keep])), shape=(n, vocab_size)
    ).tocsr()
    mat.sum_duplicates()
    row_sums = np.asarray(mat.sum(axis=1)).ravel()
    row_sums[row_sums == 0] = 1.0
    inv = sparse.diags(1.0 / row_sums)
    return inv @ mat


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class BowLogistic:
    """Order-free linear classifier over token counts."""

    def __init__(self, vocab_size: int, config: Optional[BowConfig] = None) -> None:
        self.config = config or BowConfig()
        self.vocab_size = vocab_size
        self.w = np.zeros(vocab_size)
        self.b = 0.0

    def fit(self, train: EncodedSplit) -> "BowLogistic":
        """Minimize the L2-regularized logistic NLL with L-BFGS.

        First-order batch GD needs ~1e5 iterations on term-frequency features
        (tiny, ill-conditioned gradients); L-BFGS converges in a few hundred.
        """
        from scipy.optimize import minimize

        cfg = self.config
        x = _count_matrix(train, self.vocab_size, cfg.n_specials)
        y = train.labels.astype(np.float64)
        n = x.shape[0]

        def objective(theta):
            w, b = theta[:-1], theta[-1]
            z = x @ w + b
            # log(1 + exp(z)) - y*z, computed stably
            nll = float(np.sum(np.logaddexp(0.0, z) - y * z)) / n
            nll += 0.5 * cfg.l2 * float(w @ w)
            p = _sigmoid(z)
            err = (p - y) / n
            grad_w = x.T @ err + cfg.l2 * w
            grad_b = float(err.sum())
            return nll, np.concatenate([grad_w, [grad_b]])

        theta0 = np.zeros(self.vocab_size + 1)
        result = minimize(objective, theta0, jac=True, method="L-BFGS-B",
                          options={"maxiter": cfg.max_iter})
        self.w = result.x[:-1]
        self.b = float(result.x[-1])
        return self

    def predict_proba(self, split: EncodedSplit) -> np.ndarray:
        x = _count_matrix(split, self.vocab_size, self.config.n_specials)
        p1 = _sigmoid(x @ self.w + self.b)
        return np.stack([1.0 - p1, p1], axis=1)

    def predict(self, split: EncodedSplit) -> np.ndarray:
        return (self.predict_proba(split)[:, 1] > 0.5).astype(np.int64)

    def top_weighted_tokens(self, vocab, k: int = 10):
        """The k most positive and most negative tokens — a quick sanity
        window into what the order-free model keys on."""
        order = np.argsort(self.w)
        neg = [(vocab.id_to_token(int(i)), float(self.w[int(i)])) for i in order[:k]]
        pos = [(vocab.id_to_token(int(i)), float(self.w[int(i)])) for i in order[::-1][:k]]
        return pos, neg
