"""Directive generation — the paper's §6 future-work step, implemented.

The three binary classifiers (directive / private / reduction) answer
*whether* a loop needs annotation; composing an actual ``#pragma omp`` line
additionally requires *which variables* go into each clause.  The
:class:`DirectiveGenerator` combines:

* PragFormer's three probabilities (the learned judgement), with
* the dependence analyzer's variable-level facts (which scalars are
  privatizable temps / inner loop variables, which accumulator a reduction
  affects and under which operator),

so the learned model decides *if* and the analysis fills in *what* — the
"full pipeline which generates OpenMP directives automatically" of §2.1/§6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clang import For, parse, walk
from repro.clang.nodes import FuncDef
from repro.clang.pragma import Clause, OmpDirective
from repro.data.encoding import encode_batch
from repro.models.pragformer import PragFormer
from repro.s2s.depend import AnalysisPolicy, analyze_loop
from repro.tokenize import Vocab, text_tokens

__all__ = ["GeneratedDirective", "DirectiveGenerator"]


@dataclass
class GeneratedDirective:
    """A generated annotation with the evidence behind it."""

    directive: Optional[str]          # full pragma text, or None
    p_directive: float
    p_private: Optional[float]
    p_reduction: Optional[float]
    private_vars: Tuple[str, ...]
    reduction_specs: Tuple[Tuple[str, str], ...]
    notes: List[str]


class DirectiveGenerator:
    """Compose complete OpenMP directives from classifiers + analysis."""

    def __init__(self, directive_model: PragFormer, vocab: Vocab,
                 private_model: Optional[PragFormer] = None,
                 private_vocab: Optional[Vocab] = None,
                 reduction_model: Optional[PragFormer] = None,
                 reduction_vocab: Optional[Vocab] = None,
                 max_len: int = 110, threshold: float = 0.5) -> None:
        self.directive_model = directive_model
        self.vocab = vocab
        self.private_model = private_model
        self.private_vocab = private_vocab or vocab
        self.reduction_model = reduction_model
        self.reduction_vocab = reduction_vocab or vocab
        self.max_len = max_len
        self.threshold = threshold
        # variable-level facts come from a permissive analysis: we want the
        # clause *arguments*, not a second opinion on parallelizability
        self._policy = AnalysisPolicy(unknown_call="pure",
                                      private_iteration_var=False)

    def _proba(self, model: PragFormer, vocab: Vocab, code: str) -> float:
        split = encode_batch([text_tokens(code)], vocab, self.max_len)
        return float(model.predict_proba(split)[0, 1])

    def generate(self, code: str) -> GeneratedDirective:
        """Generate a directive for the first loop in ``code`` (or None)."""
        notes: List[str] = []
        p_dir = self._proba(self.directive_model, self.vocab, code)

        # variable-level facts from the analyzer (always computed: they are
        # reported even when no directive is emitted)
        ast = parse(code)
        loops = [n for n in walk(ast) if isinstance(n, For)]
        funcdefs = {n.name: n for n in walk(ast) if isinstance(n, FuncDef)}
        private_vars: Tuple[str, ...] = ()
        reduction_specs: Tuple[Tuple[str, str], ...] = ()
        if loops:
            analysis = analyze_loop(loops[0], funcdefs, self._policy)
            private_vars = tuple(dict.fromkeys(analysis.private))
            reduction_specs = tuple(analysis.reductions)
            if not analysis.parallelizable:
                notes.append("model and dependence analysis disagree: "
                             + "; ".join(analysis.reasons))

        if p_dir <= self.threshold:
            notes.insert(0, "model judges the loop not worth a directive")
            return GeneratedDirective(None, p_dir, None, None,
                                      private_vars, reduction_specs, notes)

        p_priv = p_red = None
        clauses: List[Clause] = []
        if self.private_model is not None:
            p_priv = self._proba(self.private_model, self.private_vocab, code)
            if p_priv > self.threshold and private_vars:
                clauses.append(Clause("private", private_vars))
            elif p_priv > self.threshold:
                notes.append("private predicted but no candidate variables found")
        if self.reduction_model is not None:
            p_red = self._proba(self.reduction_model, self.reduction_vocab, code)
            if p_red > self.threshold and reduction_specs:
                for op, var in reduction_specs:
                    clauses.append(Clause("reduction", (f"{op}:{var}",)))
            elif p_red > self.threshold:
                notes.append("reduction predicted but no accumulator identified")

        directive = OmpDirective("parallel for", clauses).unparse()
        return GeneratedDirective(directive, p_dir, p_priv, p_red,
                                  private_vars, reduction_specs, notes)
