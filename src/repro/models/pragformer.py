"""PragFormer: transformer encoder + FC classification head (§4).

``PragFormer.fit`` runs the §4.3 training recipe — AdamW, dropout, CE loss,
fine-tuning the full encoder — and records per-epoch train loss, validation
loss, and validation accuracy, which are exactly the series of Figures 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.encoding import EncodedSplit
from repro.nn import (
    AdamW,
    ClassificationHead,
    EncoderConfig,
    FusedAdamW,
    TransformerEncoder,
    clip_grad_norm,
    cross_entropy,
    softmax,
)
from repro.nn.dtype import get_dtype
from repro.train.ddp import DataParallelTrainer, DDPConfig, reseed_stochastic
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

__all__ = ["PragFormerConfig", "TrainHistory", "PragFormer", "trim_batch"]


def _length_bucketed_batches(lengths: np.ndarray, batch_size: int,
                             rng: np.random.Generator):
    """Shuffled batches with similar lengths grouped together.

    A plain shuffle puts one max-length row in almost every batch, defeating
    :func:`trim_batch`.  Sorting by length *within* shuffled windows (8
    batches wide) keeps batches near-uniform in length while preserving
    stochasticity; batch order is shuffled again afterwards.
    """
    n = len(lengths)
    order = rng.permutation(n)
    window = batch_size * 8
    batches = []
    for wstart in range(0, n, window):
        w = order[wstart : wstart + window]
        w = w[np.argsort(lengths[w], kind="stable")]
        for bstart in range(0, len(w), batch_size):
            batches.append(w[bstart : bstart + batch_size])
    return [batches[int(i)] for i in rng.permutation(len(batches))]


def trim_batch(ids: np.ndarray, mask: np.ndarray):
    """Drop all-padding tail columns from a batch.

    Attention cost is quadratic in sequence length, so padding every batch to
    the global max_len (110) wastes most of the compute; trimming to the
    batch's longest real row is semantics-preserving (pad positions carry no
    gradient) and is the single largest speedup in the training loop.
    """
    longest = int(mask.sum(axis=1).max())
    longest = max(1, longest)
    return ids[:, :longest], mask[:, :longest]


@dataclass(frozen=True)
class PragFormerConfig:
    """Model + training hyperparameters (scaled-down defaults; §4.3 shape)."""

    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    d_head_hidden: int = 64
    max_len: int = 110
    dropout: float = 0.1
    lr: float = 1e-3
    weight_decay: float = 0.01
    batch_size: int = 32
    grad_clip: float = 1.0
    #: fraction of total steps spent in linear LR warmup (0 disables)
    warmup_frac: float = 0.0
    #: step with the flat-arena FusedAdamW (default) or the legacy
    #: per-parameter AdamW.  Given identical gradients the two step
    #: bit-identically; whole trajectories agree to float round-off (the
    #: clip-norm reduction order differs — see tests/test_nn_arena.py)
    fused_optimizer: bool = True
    seed: int = 0


@dataclass
class TrainHistory:
    """Per-epoch curves — the series plotted in Figures 4–6."""

    train_loss: List[float] = field(default_factory=list)
    valid_loss: List[float] = field(default_factory=list)
    valid_accuracy: List[float] = field(default_factory=list)

    def best_epoch(self) -> int:
        """Epoch index (0-based) with the lowest validation loss — the §5.1
        model-selection rule ('the validation loss curve converges …')."""
        if not self.valid_loss:
            raise ValueError("no validation history recorded")
        return int(np.argmin(self.valid_loss))


class PragFormer:
    """The paper's model: encoder + two-dense-layer head, binary output."""

    def __init__(self, vocab_size: int, config: Optional[PragFormerConfig] = None,
                 rng: RngLike = None) -> None:
        self.config = config or PragFormerConfig()
        seed_rng = ensure_rng(rng if rng is not None else self.config.seed)
        r_enc, r_head, self._shuffle_rng = spawn_rngs(seed_rng, 3)
        enc_cfg = EncoderConfig(
            vocab_size=vocab_size,
            d_model=self.config.d_model,
            n_heads=self.config.n_heads,
            n_layers=self.config.n_layers,
            d_ff=self.config.d_ff,
            max_len=self.config.max_len,
            dropout=self.config.dropout,
        )
        self.encoder = TransformerEncoder(enc_cfg, rng=r_enc)
        self.head = ClassificationHead(
            self.config.d_model, self.config.d_head_hidden,
            n_classes=2, dropout=self.config.dropout, rng=r_head,
        )
        self._optimizer: Optional[AdamW] = None
        #: step losses + reduce counters from the last DDP fit (bench input)
        self.ddp_stats: Optional[dict] = None

    # -- transfer learning -----------------------------------------------------

    def load_pretrained_encoder(self, state: dict) -> None:
        """Initialize the encoder from an MLM-pretrained checkpoint (the
        DeepSCC transfer step of §4.1)."""
        self.encoder.load_state_dict(state)

    # -- core passes -------------------------------------------------------------

    def _forward_logits(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        hidden = self.encoder.forward(ids, mask)
        return self.head.forward(hidden)

    def _backward(self, dlogits: np.ndarray) -> None:
        self.encoder.backward(self.head.backward(dlogits))

    def _params(self):
        return self.encoder.parameters() + self.head.parameters()

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        train: EncodedSplit,
        validation: Optional[EncodedSplit] = None,
        epochs: int = 5,
        verbose: bool = False,
        restore_best: bool = True,
        n_workers: Optional[int] = None,
    ) -> TrainHistory:
        """Fine-tune on a labelled split; returns the epoch history.

        With a validation split and ``restore_best`` (default), the weights
        from the lowest-validation-loss epoch are restored at the end — the
        paper's model-selection rule (§5.1: 'since the validation loss curve
        converges after 7–9 epochs, we choose to use the models trained up
        to those points').

        ``n_workers`` switches to the shared-memory data-parallel trainer
        (:mod:`repro.train.ddp`; requires ``fused_optimizer``): the loss
        trajectory and final weights are bit-identical at every worker
        count.  ``None`` keeps the legacy single-process loop.
        """
        if n_workers is not None:
            return self._fit_ddp(train, validation, epochs, verbose,
                                 restore_best, int(n_workers))
        cfg = self.config
        if self._optimizer is None:
            opt_cls = FusedAdamW if cfg.fused_optimizer else AdamW
            opt = opt_cls(_JointModel(self), lr=cfg.lr, weight_decay=cfg.weight_decay)
            self._optimizer = opt
        else:
            opt = self._optimizer
        schedule = None
        if cfg.warmup_frac > 0:
            from repro.nn import WarmupSchedule

            total_steps = epochs * max(1, (len(train) + cfg.batch_size - 1) // cfg.batch_size)
            schedule = WarmupSchedule(opt, peak_lr=cfg.lr,
                                      warmup_steps=max(1, int(cfg.warmup_frac * total_steps)))
        history = TrainHistory()
        n = len(train)
        bs = cfg.batch_size
        lengths = train.mask.sum(axis=1)
        best_state = None
        best_loss = np.inf
        for epoch in range(epochs):
            self.encoder.train()
            self.head.train()
            batches = _length_bucketed_batches(lengths, bs, self._shuffle_rng)
            epoch_loss = 0.0
            n_batches = 0
            for sel in batches:
                ids, mask = trim_batch(train.ids[sel], train.mask[sel])
                labels = train.labels[sel]
                logits = self._forward_logits(ids, mask)
                loss, dlogits = cross_entropy(logits, labels)
                opt.zero_grad()
                self._backward(dlogits)
                if isinstance(opt, FusedAdamW):
                    # one dot product over the arena, not a per-param loop
                    opt.clip_grad_norm(cfg.grad_clip)
                else:
                    clip_grad_norm(self._params(), cfg.grad_clip)
                if schedule is not None:
                    schedule.step()
                opt.step()
                epoch_loss += loss
                n_batches += 1
            history.train_loss.append(epoch_loss / max(1, n_batches))
            if validation is not None:
                val_loss, val_acc = self.evaluate(validation)
                history.valid_loss.append(val_loss)
                history.valid_accuracy.append(val_acc)
                if restore_best and val_loss < best_loss:
                    best_loss = val_loss
                    best_state = (self.encoder.state_dict(), self.head.state_dict())
                if verbose:  # pragma: no cover - logging only
                    print(f"epoch {epoch + 1}: train {history.train_loss[-1]:.4f} "
                          f"valid {val_loss:.4f} acc {val_acc:.4f}")
        if best_state is not None:
            self.encoder.load_state_dict(best_state[0])
            self.head.load_state_dict(best_state[1])
        return history

    def _fit_ddp(self, train: EncodedSplit, validation: Optional[EncodedSplit],
                 epochs: int, verbose: bool, restore_best: bool,
                 n_workers: int) -> TrainHistory:
        """Fine-tune through the shared-memory data-parallel trainer.

        Every micro-shard re-seeds its dropout streams from the
        ``(seed, step, shard)`` key and reports *sum*-reduced gradients
        with its example count as weight, so the trained objective is the
        exact batch-mean CE of the legacy loop.  Validation (and the
        restore-best snapshot) runs in the parent between epochs while the
        workers sit blocked on their doorbells; ``load_state_dict`` writes
        parameters in place, so a restored snapshot lands in the shared
        segment the workers read.
        """
        cfg = self.config
        if not cfg.fused_optimizer:
            raise ValueError(
                "n_workers requires fused_optimizer=True: the DDP trainer "
                "reduces into and steps the flat parameter arena")
        if self._optimizer is None:
            self._optimizer = FusedAdamW(_JointModel(self), lr=cfg.lr,
                                         weight_decay=cfg.weight_decay)
        opt = self._optimizer
        schedule = None
        if cfg.warmup_frac > 0:
            from repro.nn import WarmupSchedule

            total_steps = epochs * max(
                1, (len(train) + cfg.batch_size - 1) // cfg.batch_size)
            schedule = WarmupSchedule(
                opt, peak_lr=cfg.lr,
                warmup_steps=max(1, int(cfg.warmup_frac * total_steps)))
        seed = int(self._shuffle_rng.integers(2**62))
        ftype = get_dtype().type
        ids_all, mask_all, labels_all = train.ids, train.mask, train.labels

        def shard_backward(sel, key):
            self.encoder.train()
            self.head.train()
            reseed_stochastic((self.encoder, self.head), key)
            ids, mask = trim_batch(ids_all[sel], mask_all[sel])
            logits = self._forward_logits(ids, mask)
            loss, dlogits = cross_entropy(logits, labels_all[sel])
            # sum reduction: undo cross_entropy's 1/n mean scaling so
            # shards add without knowing each other's sizes
            self._backward(dlogits * ftype(len(sel)))
            return float(loss) * len(sel), float(len(sel))

        history = TrainHistory()
        lengths = train.mask.sum(axis=1)
        best_state = None
        best_loss = np.inf
        ddp_cfg = DDPConfig(n_workers=n_workers, seed=seed)
        with DataParallelTrainer(opt, shard_backward, n_examples=len(train),
                                 config=ddp_cfg, grad_clip=cfg.grad_clip,
                                 lr_schedule=schedule) as trainer:
            for epoch in range(epochs):
                batches = _length_bucketed_batches(
                    lengths, cfg.batch_size, self._shuffle_rng)
                history.train_loss.append(
                    trainer.run_epoch(batches, epoch=epoch))
                if validation is not None:
                    val_loss, val_acc = self.evaluate(validation)
                    history.valid_loss.append(val_loss)
                    history.valid_accuracy.append(val_acc)
                    if restore_best and val_loss < best_loss:
                        best_loss = val_loss
                        best_state = (self.encoder.state_dict(),
                                      self.head.state_dict())
                    if verbose:  # pragma: no cover - logging only
                        print(f"epoch {epoch + 1} (ddp x{n_workers}): "
                              f"train {history.train_loss[-1]:.4f} "
                              f"valid {val_loss:.4f} acc {val_acc:.4f}")
            self.ddp_stats = {
                "step_losses": list(trainer.step_losses),
                "counters": dict(trainer.counters),
            }
        if best_state is not None:
            self.encoder.load_state_dict(best_state[0])
            self.head.load_state_dict(best_state[1])
        return history

    # -- inference -----------------------------------------------------------------

    def predict_proba(self, split: EncodedSplit, batch_size: int = 128,
                      retain_attention: bool = False) -> np.ndarray:
        """(N, 2) class probabilities.

        Runs in ``inference_mode`` (no activation caching).  Attention maps
        are dropped unless ``retain_attention`` is set; explain tooling that
        reads ``encoder.attention_maps()`` afterwards must request them.
        """
        self.encoder.inference_mode()
        self.head.inference_mode()
        attns = [layer.attn for layer in self.encoder.layers]
        for attn in attns:
            attn.retain_attention = retain_attention
        try:
            # allocate in the compute dtype: np.empty's float64 default would
            # silently widen every downstream consumer of the probabilities
            out = np.empty((len(split), 2), dtype=get_dtype())
            # process in length order so trim_batch bites (longest batch
            # first, so scratch pools size themselves once), then scatter
            order = split.length_order()[::-1]
            for start in range(0, len(split), batch_size):
                sel = order[start : start + batch_size]
                ids, mask = trim_batch(split.ids[sel], split.mask[sel])
                out[sel] = softmax(self._forward_logits(ids, mask))
            return out
        finally:
            for attn in attns:
                attn.retain_attention = False

    def predict(self, split: EncodedSplit, batch_size: int = 128) -> np.ndarray:
        """Predicted labels: positive iff P(positive) > 0.5 (§4.1)."""
        return (self.predict_proba(split, batch_size)[:, 1] > 0.5).astype(np.int64)

    def evaluate(self, split: EncodedSplit, batch_size: int = 128):
        """(mean CE loss, accuracy) on a split."""
        self.encoder.inference_mode()
        self.head.inference_mode()
        total_loss = 0.0
        correct = 0
        order = split.length_order()[::-1]
        for start in range(0, len(split), batch_size):
            sel = order[start : start + batch_size]
            ids, mask = trim_batch(split.ids[sel], split.mask[sel])
            labels = split.labels[sel]
            logits = self._forward_logits(ids, mask)
            loss, _ = cross_entropy(logits, labels)
            total_loss += loss * ids.shape[0]
            correct += int((np.argmax(logits, axis=1) == labels).sum())
        n = len(split)
        return total_loss / max(1, n), correct / max(1, n)


class _JointModel:
    """Adapter exposing encoder+head parameters to AdamW as one model."""

    def __init__(self, model: PragFormer) -> None:
        self._model = model

    def named_parameters(self):
        yield from self._model.encoder.named_parameters("encoder.")
        yield from self._model.head.named_parameters("head.")
