"""Masked-language-model pretraining — the DeepSCC substitute (§4.1).

DeepSCC fine-tunes RoBERTa on source code with the MLM objective; here we
pretrain our scaled-down encoder on the corpus code itself (labels never
used), producing a checkpoint PragFormer loads before fine-tuning.  The
masking recipe is BERT/RoBERTa's: 15 % of non-special positions are
selected; of those, 80 % become ``<mask>``, 10 % a random token, 10 % stay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import (
    BufferPool,
    EncoderConfig,
    FusedAdamW,
    MLMHead,
    TransformerEncoder,
    cross_entropy,
)
from repro.nn.dtype import get_dtype
from repro.models.pragformer import trim_batch
from repro.tokenize.vocab import Vocab
from repro.train.ddp import (
    DataParallelTrainer,
    DDPConfig,
    reseed_stochastic,
    shard_rng,
)
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

__all__ = ["MLMConfig", "MLMPretrainer", "mask_tokens"]


@dataclass(frozen=True)
class MLMConfig:
    mask_prob: float = 0.15
    mask_token_frac: float = 0.8
    random_token_frac: float = 0.1
    lr: float = 5e-4
    weight_decay: float = 0.01
    batch_size: int = 32
    grad_clip: float = 1.0


def mask_tokens(
    ids: np.ndarray,
    mask: np.ndarray,
    vocab: Vocab,
    rng: np.random.Generator,
    cfg: MLMConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply the BERT masking recipe.

    Returns (corrupted ids, targets, loss_mask): positions not selected for
    prediction carry loss_mask 0.  CLS and padding are never masked.
    """
    corrupted = ids.copy()
    selectable = mask.astype(bool) & (ids != vocab.cls_id) & (ids != vocab.pad_id)
    selected = selectable & (rng.random(ids.shape) < cfg.mask_prob)
    roll = rng.random(ids.shape)
    to_mask = selected & (roll < cfg.mask_token_frac)
    to_random = selected & (roll >= cfg.mask_token_frac) & (
        roll < cfg.mask_token_frac + cfg.random_token_frac
    )
    corrupted[to_mask] = vocab.mask_id
    n_random = int(to_random.sum())
    if n_random:
        # draw replacement ids from the non-special region [4, |V|)
        corrupted[to_random] = rng.integers(4, len(vocab), size=n_random)
    # loss mask in the compute dtype — a float64 mask would upcast the MLM
    # loss path out of float32
    return corrupted, ids, selected.astype(get_dtype())


class MLMPretrainer:
    """Self-supervised pretraining loop over encoded (unlabeled) sequences."""

    def __init__(self, encoder_cfg: EncoderConfig, vocab: Vocab,
                 cfg: Optional[MLMConfig] = None, rng: RngLike = None) -> None:
        self.cfg = cfg or MLMConfig()
        self.vocab = vocab
        seed = ensure_rng(rng)
        r_enc, r_head, self._rng = spawn_rngs(seed, 3)
        self.encoder = TransformerEncoder(encoder_cfg, rng=r_enc)
        self.mlm_head = MLMHead(encoder_cfg.d_model, encoder_cfg.vocab_size, rng=r_head)
        self._pool = BufferPool()
        self._optimizer: Optional[FusedAdamW] = None
        #: step losses + reduce counters from the last DDP fit (bench input)
        self.ddp_stats: Optional[Dict] = None

    def fit(self, ids: np.ndarray, mask: np.ndarray, epochs: int = 3,
            verbose: bool = False, n_workers: Optional[int] = None) -> List[float]:
        """Pretrain on (N, L) id/mask arrays; returns per-epoch MLM losses.

        Only ~15 % of positions carry MLM loss (``mask_prob``), so the
        vocab-sized head projection — the single largest GEMM in
        pretraining — runs on a gather of the masked positions instead of
        the full (B, L) grid: same losses and gradients as the dense
        ``masked_cross_entropy`` formulation at ~1/7 of the head compute,
        and the (B, L, V) logits/gradient tensors are never materialized.

        ``n_workers`` switches to the shared-memory data-parallel trainer
        (:mod:`repro.train.ddp`): bit-deterministic in the worker count, so
        ``n_workers=1`` and ``n_workers=4`` give identical losses and
        weights.  ``None`` keeps the legacy single-process loop (a
        different — also deterministic — arithmetic: it shards nothing and
        draws masks from the epoch rng stream).
        """
        if n_workers is not None:
            return self._fit_ddp(ids, mask, epochs, verbose, int(n_workers))
        joint = _Joint(self.encoder, self.mlm_head)
        # flat-arena optimizer: whole-model step + clip in a handful of
        # vectorized calls (legacy AdamW remains available in repro.nn)
        opt = FusedAdamW(joint, lr=self.cfg.lr, weight_decay=self.cfg.weight_decay)
        losses: List[float] = []
        n = ids.shape[0]
        bs = self.cfg.batch_size
        for epoch in range(epochs):
            self.encoder.train()
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, bs):
                sel = order[start : start + bs]
                b_ids, b_mask = trim_batch(ids[sel], mask[sel])
                corrupted, targets, loss_mask = mask_tokens(
                    b_ids, b_mask, self.vocab, self._rng, self.cfg
                )
                hidden = self.encoder.forward(corrupted, b_mask)
                d_model = hidden.shape[-1]
                flat_hidden = hidden.reshape(-1, d_model)
                selected = np.flatnonzero(loss_mask.reshape(-1))
                loss = 0.0
                opt.zero_grad()
                dhidden = self._pool.get("dhidden", hidden.shape, hidden.dtype)
                dhidden.fill(0.0)
                if selected.size:
                    sel_hidden = flat_hidden[selected]
                    logits = self.mlm_head.forward(sel_hidden)
                    loss, dlogits = cross_entropy(
                        logits, targets.reshape(-1)[selected])
                    dsel = self.mlm_head.backward(dlogits)
                    dhidden.reshape(-1, d_model)[selected] = dsel
                self.encoder.backward(dhidden)
                opt.clip_grad_norm(self.cfg.grad_clip)
                opt.step()
                total += loss
                batches += 1
            losses.append(total / max(1, batches))
            if verbose:  # pragma: no cover
                print(f"MLM epoch {epoch + 1}: loss {losses[-1]:.4f}")
        return losses

    def _fit_ddp(self, ids: np.ndarray, mask: np.ndarray, epochs: int,
                 verbose: bool, n_workers: int) -> List[float]:
        """Data-parallel pretraining over the shared-memory arena.

        Each micro-shard re-derives its masking noise and dropout streams
        from the ``(seed, step, shard)`` key, computes *sum*-reduced MLM
        gradients, and reports (loss total, masked-position count); the
        trainer normalizes by the batch's total masked positions, so the
        objective is the same per-position mean CE as the legacy loop.
        """
        if self._optimizer is None:
            self._optimizer = FusedAdamW(
                _Joint(self.encoder, self.mlm_head),
                lr=self.cfg.lr, weight_decay=self.cfg.weight_decay)
        opt = self._optimizer
        seed = int(self._rng.integers(2**62))
        ftype = get_dtype().type

        def shard_backward(sel, key):
            self.encoder.train()
            reseed_stochastic((self.encoder, self.mlm_head), key)
            b_ids, b_mask = trim_batch(ids[sel], mask[sel])
            corrupted, targets, loss_mask = mask_tokens(
                b_ids, b_mask, self.vocab, shard_rng(key, salt=2), self.cfg)
            hidden = self.encoder.forward(corrupted, b_mask)
            d_model = hidden.shape[-1]
            selected = np.flatnonzero(loss_mask.reshape(-1))
            dhidden = np.zeros_like(hidden)
            loss_sum = 0.0
            if selected.size:
                logits = self.mlm_head.forward(
                    hidden.reshape(-1, d_model)[selected])
                loss, dlogits = cross_entropy(
                    logits, targets.reshape(-1)[selected])
                # sum reduction: undo cross_entropy's 1/n mean scaling so
                # shards add without knowing each other's sizes
                dsel = self.mlm_head.backward(dlogits * ftype(selected.size))
                dhidden.reshape(-1, d_model)[selected] = dsel
                loss_sum = float(loss) * selected.size
            self.encoder.backward(dhidden)
            return loss_sum, float(selected.size)

        n = ids.shape[0]
        bs = self.cfg.batch_size
        losses: List[float] = []
        ddp_cfg = DDPConfig(n_workers=n_workers, seed=seed)
        with DataParallelTrainer(opt, shard_backward, n_examples=n,
                                 config=ddp_cfg,
                                 grad_clip=self.cfg.grad_clip) as trainer:
            for epoch in range(epochs):
                order = self._rng.permutation(n)
                batches = [order[start:start + bs] for start in range(0, n, bs)]
                losses.append(trainer.run_epoch(batches, epoch=epoch))
                if verbose:  # pragma: no cover
                    print(f"MLM epoch {epoch + 1} (ddp x{n_workers}): "
                          f"loss {losses[-1]:.4f}")
            self.ddp_stats = {
                "step_losses": list(trainer.step_losses),
                "counters": dict(trainer.counters),
            }
        return losses

    def encoder_state(self) -> Dict[str, np.ndarray]:
        """The pretrained encoder checkpoint PragFormer transfers from."""
        return self.encoder.state_dict()


class _Joint:
    def __init__(self, encoder: TransformerEncoder, head: MLMHead) -> None:
        self.encoder = encoder
        self.head = head

    def named_parameters(self):
        yield from self.encoder.named_parameters("encoder.")
        yield from self.head.named_parameters("head.")
