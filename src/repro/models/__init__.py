"""Models: PragFormer (transformer classifier), MLM pretraining (the DeepSCC
transfer substitute), and the BoW + logistic-regression baseline."""

from repro.models.bow import BowConfig, BowLogistic
from repro.models.generator import DirectiveGenerator, GeneratedDirective
from repro.models.hybrid import HybridAdvisor
from repro.models.persistence import (
    load_advisor,
    load_pragformer,
    save_advisor,
    save_pragformer,
)
from repro.models.pragformer import PragFormer, PragFormerConfig, TrainHistory
from repro.models.pretrain import MLMConfig, MLMPretrainer, mask_tokens

__all__ = [
    "BowConfig",
    "BowLogistic",
    "DirectiveGenerator",
    "GeneratedDirective",
    "HybridAdvisor",
    "load_advisor",
    "load_pragformer",
    "save_advisor",
    "save_pragformer",
    "PragFormer",
    "PragFormerConfig",
    "TrainHistory",
    "MLMConfig",
    "MLMPretrainer",
    "mask_tokens",
]
