"""Whole-model persistence: PragFormer weights + vocabulary in one bundle.

``PragFormer.encoder.save`` alone is not enough to redeploy a classifier —
predictions depend on the exact token->id mapping.  ``save_pragformer``
writes a single ``.npz`` containing encoder weights, head weights, the
vocabulary, and the config, and ``load_pragformer`` reconstructs a
ready-to-predict model.

Checkpoints written before the fused-QKV attention refactor store separate
``q_proj``/``k_proj``/``v_proj`` projection matrices; ``load_state_dict``
fuses them on load (see ``MultiHeadSelfAttention._upgrade_state``), so both
layouts remain loadable under format version 1.

The serving stack deploys *several* models at once (the directive head plus
the ``private``/``reduction`` clause heads — see
:mod:`repro.serve.registry`); :func:`save_advisor` / :func:`load_advisor`
bundle any named set of (model, vocab) pairs into one checkpoint directory
with an ``advisor.json`` manifest, one ``.npz`` per head.

Advisor checkpoints additionally carry every head's parameters as one
contiguous ``weights.bin`` blob (dtype/offset/digest recorded in the
manifest) so a shard fleet can map **one read-only copy** of the weights:
:func:`share_weights` publishes the blob into a named
``multiprocessing.shared_memory`` segment and
``load_advisor(..., segment=...)`` rebinds freshly constructed models onto
that segment's views instead of re-deserializing the ``.npz`` arrays —
see ``docs/architecture.md`` (memory topology) for who maps what.
Checkpoint directories written before the blob existed stay loadable;
they simply fall back to eager per-process loading.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import asdict
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.nn.module import Parameter
from repro.tokenize.vocab import Vocab

__all__ = ["save_pragformer", "load_pragformer", "save_advisor",
           "load_advisor", "validate_head_name", "SharedWeights",
           "share_weights", "WEIGHTS_NAME_PREFIX"]

_FORMAT_VERSION = 1
_ADVISOR_MANIFEST = "advisor.json"
_ADVISOR_FORMAT_VERSION = 1
_WEIGHTS_BLOB = "weights.bin"

#: ``/dev/shm`` name prefix for shared weight segments — audited for leaks
#: by ``tests/conftest.py`` alongside the ring and DDP prefixes.
WEIGHTS_NAME_PREFIX = "repro-weights"

_segment_ids = itertools.count()


def _segment_name() -> str:
    """A per-process-unique ``/dev/shm`` name under the weights prefix."""
    return f"{WEIGHTS_NAME_PREFIX}-{os.getpid()}-{next(_segment_ids)}"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it.

    ``SharedMemory.__init__`` registers every attach with the resource
    tracker (until 3.13's ``track=False``), which makes the *attaching*
    process unlink the segment at exit and spam leak warnings.  The
    process that created the segment owns its lifetime; attachers must
    unregister (same idiom as ``repro.serve.shm_ring``).
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 — tracker absent on some platforms
        pass
    return shm


def validate_head_name(name: str) -> str:
    """Reject advisor head names that are not filesystem-safe.

    The single rule shared by :func:`save_advisor` (which turns names into
    ``<name>.npz`` files) and ``ModelRegistry.register`` (so any serving
    registry can always be checkpointed).  Returns ``name`` unchanged.
    """
    if (not name or name != name.strip()
            or any(seq in name for seq in ("/", "\\", ".."))):
        raise ValueError(f"head name {name!r} is not filesystem-safe")
    return name


def save_pragformer(model: PragFormer, vocab: Vocab, path: str) -> None:
    """Bundle model weights, vocabulary, and config into ``path`` (.npz)."""
    arrays = {}
    for name, param in model.encoder.named_parameters():
        arrays[f"encoder/{name}"] = param.data
    for name, param in model.head.named_parameters():
        arrays[f"head/{name}"] = param.data
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "vocab": vocab._itos,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


def load_pragformer(path: str) -> Tuple[PragFormer, Vocab]:
    """Reconstruct a (model, vocab) pair saved by :func:`save_pragformer`."""
    path = str(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version in {path}")
        config = PragFormerConfig(**meta["config"])
        itos = meta["vocab"]
        vocab = Vocab(itos[4:])  # specials are re-prepended by Vocab
        model = PragFormer(len(vocab), config)
        encoder_state = {}
        head_state = {}
        for key in archive.files:
            if key.startswith("encoder/"):
                encoder_state[key[len("encoder/"):]] = archive[key]
            elif key.startswith("head/"):
                head_state[key[len("head/"):]] = archive[key]
        model.encoder.load_state_dict(encoder_state)
        model.head.load_state_dict(head_state)
    if vocab._itos != itos:
        raise ValueError("vocabulary reconstruction mismatch")
    return model, vocab


def _named_head_params(model: PragFormer) -> Iterator[Tuple[str, Parameter]]:
    """A head's parameters in checkpoint key order (encoder, then head).

    The single ordering contract shared by :func:`save_pragformer` (npz
    key names), the ``weights.bin`` blob layout, and :func:`_bind_head` —
    all three walk parameters in exactly this sequence, so blob offsets
    need no per-parameter bookkeeping.
    """
    for name, param in model.encoder.named_parameters():
        yield f"encoder/{name}", param
    for name, param in model.head.named_parameters():
        yield f"head/{name}", param


def _load_pragformer_shell(path: str) -> Tuple[PragFormer, Vocab]:
    """Construct a (model, vocab) pair from a checkpoint's metadata only.

    Reads just the ``__meta__`` array (config + vocabulary) and leaves the
    model's parameters at their random initial values — the caller is
    about to :func:`_bind_head` them onto a shared segment, so touching
    the heavyweight weight arrays in the ``.npz`` would be pure waste.
    """
    with np.load(str(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version in {path}")
    config = PragFormerConfig(**meta["config"])
    itos = meta["vocab"]
    vocab = Vocab(itos[4:])  # specials are re-prepended by Vocab
    model = PragFormer(len(vocab), config)
    if vocab._itos != itos:
        raise ValueError("vocabulary reconstruction mismatch")
    return model, vocab


def _bind_head(model: PragFormer, view: np.ndarray) -> None:
    """Adopt ``view``'s contents as ``model``'s parameters, zero-copy.

    ``view`` is the head's flat slice of a weights blob (typically a
    window onto a shared segment).  Each parameter's ``data`` becomes a
    reshaped sub-view, in :func:`_named_head_params` order — the lean
    serving-side sibling of ``ParameterArena.rebind(copy=False)``, which
    skips allocating the arena's private grad/decay buffers a read-only
    worker would never touch.
    """
    offset = 0
    for name, param in _named_head_params(model):
        words = param.data.size
        if offset + words > view.size:
            raise ValueError(
                f"weights blob too small binding {name}: need "
                f"{offset + words} words, have {view.size}")
        param.data = view[offset:offset + words].reshape(param.data.shape)
        offset += words
    if offset != view.size:
        raise ValueError(
            f"weights blob size mismatch: model has {offset} words, "
            f"blob slice has {view.size}")


def save_advisor(heads: Mapping[str, tuple], dirpath) -> Path:
    """Bundle named heads into an advisor checkpoint directory.

    ``heads`` maps head name to ``(model, vocab)`` or
    ``(model, vocab, max_len)`` — the serving ``max_len`` may differ from
    the model's own ``config.max_len`` and must survive the round trip.
    Writes one ``<name>.npz`` per head (via :func:`save_pragformer`), a
    contiguous ``weights.bin`` blob holding every head's parameters back
    to back (in :func:`_named_head_params` order, offsets/digest recorded
    in the manifest — what :func:`share_weights` maps into shared
    memory), and finally the ``advisor.json`` manifest recording the
    head -> (file, max_len) mapping; the manifest is written last so a
    crash mid-save never leaves a directory that parses as complete.
    Returns the directory path.  Head names must be filesystem-safe (no
    separators).
    """
    directory = Path(dirpath)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format_version": _ADVISOR_FORMAT_VERSION, "heads": {}}
    blob_parts = []
    blob_heads: Dict[str, Dict[str, int]] = {}
    dtype: Optional[np.dtype] = None
    offset = 0
    for name, head in heads.items():
        validate_head_name(name)
        model, vocab = head[0], head[1]
        max_len = head[2] if len(head) > 2 else model.config.max_len
        filename = f"{name}.npz"
        save_pragformer(model, vocab, str(directory / filename))
        manifest["heads"][name] = {"file": filename, "max_len": int(max_len)}
        flats = [np.ascontiguousarray(p.data).ravel()
                 for _pname, p in _named_head_params(model)]
        for flat in flats:
            if dtype is None:
                dtype = flat.dtype
            elif flat.dtype != dtype:
                raise TypeError(
                    f"head {name!r} mixes dtypes {flat.dtype} and {dtype}; "
                    "the weights blob requires one uniform dtype")
        words = int(sum(flat.size for flat in flats))
        blob_parts.extend(flats)
        blob_heads[name] = {"offset": offset, "words": words}
        offset += words
    blob = (np.concatenate(blob_parts) if blob_parts
            else np.empty(0, dtype=dtype or np.dtype("float32")))
    blob_bytes = blob.tobytes()
    (directory / _WEIGHTS_BLOB).write_bytes(blob_bytes)
    manifest["weights"] = {
        "file": _WEIGHTS_BLOB,
        "dtype": str(blob.dtype),
        "total_words": offset,
        "digest": hashlib.blake2b(blob_bytes).hexdigest(),
        "heads": blob_heads,
    }
    (directory / _ADVISOR_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return directory


def _read_manifest(directory: Path) -> Dict:
    """Load + version-check ``advisor.json`` for ``directory``."""
    manifest_path = directory / _ADVISOR_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {_ADVISOR_MANIFEST} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _ADVISOR_FORMAT_VERSION:
        raise ValueError(
            f"unsupported advisor checkpoint version in {directory}")
    return manifest


def _read_blob(directory: Path, weights_meta: Dict) -> bytes:
    """Read + integrity-check a checkpoint's ``weights.bin`` blob.

    Raises ``ValueError`` (never a crash further in) when the blob is
    missing, truncated, padded, or fails its manifest digest — a corrupt
    rollout must surface as a clean refusal the caller can fall back
    from.
    """
    blob_path = directory / weights_meta["file"]
    if not blob_path.is_file():
        raise ValueError(f"advisor weights blob missing: {blob_path}")
    raw = blob_path.read_bytes()
    itemsize = np.dtype(weights_meta["dtype"]).itemsize
    expected = int(weights_meta["total_words"]) * itemsize
    if len(raw) != expected:
        raise ValueError(
            f"advisor weights blob {blob_path} is {len(raw)} bytes, "
            f"manifest says {expected} (truncated or corrupt)")
    digest = hashlib.blake2b(raw).hexdigest()
    if digest != weights_meta["digest"]:
        raise ValueError(
            f"advisor weights blob {blob_path} failed digest validation")
    return raw


def load_advisor(dirpath, share: bool = False, segment: Optional[str] = None):
    """Reload every head of an advisor checkpoint written by
    :func:`save_advisor`.

    Three modes:

    - **default** (``share=False``) — eager per-process load, returns
      ``{name: (model, vocab, max_len)}`` exactly as before.
    - ``share=True`` — eager load, then publish the checkpoint's
      ``weights.bin`` blob into a fresh named shared segment and rebind
      every model onto it; returns ``(heads, SharedWeights)``.  The
      caller owns the segment (must eventually ``unlink``).  A legacy
      checkpoint without a blob returns ``(heads, None)`` — served
      exactly as before, just not shared.
    - ``segment="repro-weights-..."`` — attach an *existing* segment
      (published by :func:`share_weights` in the router) and bind models
      constructed from checkpoint metadata only onto its views; no
      weight array is ever deserialized in this process.  Returns
      ``(heads, SharedWeights)``; the handle is attach-only (``unlink``
      stays with the segment's creator).

    Blob integrity (size + blake2b digest) is validated in the sharing
    modes; corruption raises ``ValueError`` rather than crashing.
    """
    if share and segment is not None:
        raise ValueError("load_advisor: share=True and segment= are "
                         "mutually exclusive")
    directory = Path(dirpath)
    manifest = _read_manifest(directory)
    weights_meta = manifest.get("weights")

    if segment is not None:
        if weights_meta is None:
            raise ValueError(
                f"checkpoint {directory} has no weights blob manifest; "
                "cannot bind onto a shared segment")
        shared = SharedWeights.attach(segment, weights_meta)
        try:
            shared.validate()
            heads: Dict[str, Tuple[PragFormer, Vocab, int]] = {}
            for name, entry in manifest["heads"].items():
                model, vocab = _load_pragformer_shell(
                    str(directory / entry["file"]))
                _bind_head(model, shared.head_view(name))
                heads[name] = (model, vocab, int(entry["max_len"]))
        except Exception:
            shared.close()
            raise
        return heads, shared

    heads = {}
    for name, entry in manifest["heads"].items():
        model, vocab = load_pragformer(str(directory / entry["file"]))
        heads[name] = (model, vocab, int(entry["max_len"]))
    if not share:
        return heads
    if weights_meta is None:
        return heads, None  # legacy checkpoint: eager copies, unshared
    raw = _read_blob(directory, weights_meta)
    shared = SharedWeights.create(weights_meta, raw)
    try:
        for name, (model, _vocab, _max_len) in heads.items():
            _bind_head(model, shared.head_view(name))
    except Exception:
        shared.close()
        shared.unlink()
        raise
    return heads, shared


def share_weights(dirpath) -> Optional["SharedWeights"]:
    """Publish a checkpoint's weights blob into a named shared segment.

    The router-side half of one-copy serving: reads ``weights.bin``
    (digest-validated), copies it into a fresh
    ``multiprocessing.shared_memory`` segment under
    :data:`WEIGHTS_NAME_PREFIX`, and returns the owning handle — without
    constructing any model.  Workers then attach by name via
    ``load_advisor(dirpath, segment=handle.name)``.  Returns ``None``
    for legacy checkpoints that predate the blob (callers fall back to
    broadcast eager loading).  The caller owns the segment and must
    ``unlink`` it once the last attachment has drained.
    """
    directory = Path(dirpath)
    manifest = _read_manifest(directory)
    weights_meta = manifest.get("weights")
    if weights_meta is None:
        return None
    raw = _read_blob(directory, weights_meta)
    return SharedWeights.create(weights_meta, raw)


class SharedWeights:
    """Handle on a named shared-memory segment holding a weights blob.

    One process *creates* the segment (:meth:`create` — typically the
    router via :func:`share_weights`, or ``load_advisor(share=True)``)
    and is responsible for the final :meth:`unlink`; any number of
    workers *attach* by name (:meth:`attach`) and merely :meth:`close`
    their own mapping.  POSIX semantics do the draining: an unlinked
    segment's memory survives until the last mapping closes, so the
    router can retire an old rollout immediately after the flip while
    in-flight snapshots in the workers keep reading it safely.
    """

    def __init__(self, shm: shared_memory.SharedMemory, weights_meta: Dict,
                 owner: bool) -> None:
        self._shm = shm
        self._meta = weights_meta
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, weights_meta: Dict, raw: bytes) -> "SharedWeights":
        """Create a fresh owning segment initialised with blob ``raw``."""
        nbytes = max(1, len(raw))  # SharedMemory rejects size=0
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=_segment_name())
        shm.buf[:len(raw)] = raw
        return cls(shm, weights_meta, owner=True)

    @classmethod
    def attach(cls, name: str, weights_meta: Dict) -> "SharedWeights":
        """Attach to an existing segment by name (non-owning)."""
        return cls(_attach_segment(name), weights_meta, owner=False)

    @property
    def name(self) -> str:
        """The segment's ``/dev/shm`` name (attach key for workers)."""
        return self._shm.name

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the blob (uniform across heads)."""
        return np.dtype(self._meta["dtype"])

    @property
    def total_words(self) -> int:
        """Total blob length in elements, across all heads."""
        return int(self._meta["total_words"])

    @property
    def nbytes(self) -> int:
        """Blob payload size in bytes (the ``/dev/shm`` sizing number)."""
        return self.total_words * self.dtype.itemsize

    def validate(self) -> None:
        """Check segment size and blob digest against the manifest.

        Attachers call this before binding models: a name collision,
        stale segment, or torn publish must fail loudly, not serve
        garbage weights.
        """
        if self._shm.size < self.nbytes:
            raise ValueError(
                f"shared weights segment {self.name} is {self._shm.size} "
                f"bytes, manifest needs {self.nbytes}")
        digest = hashlib.blake2b(bytes(self._shm.buf[:self.nbytes])).hexdigest()
        if digest != self._meta["digest"]:
            raise ValueError(
                f"shared weights segment {self.name} failed digest "
                "validation against the checkpoint manifest")

    def head_view(self, head: str) -> np.ndarray:
        """Flat zero-copy view over one head's slice of the blob."""
        entry = self._meta["heads"].get(head)
        if entry is None:
            raise KeyError(f"head {head!r} not in weights manifest "
                           f"(has {sorted(self._meta['heads'])})")
        offset_bytes = int(entry["offset"]) * self.dtype.itemsize
        return np.ndarray((int(entry["words"]),), dtype=self.dtype,
                          buffer=self._shm.buf, offset=offset_bytes)

    def close(self) -> None:
        """Drop this process's mapping (idempotent, best-effort).

        Model parameters bound via :meth:`head_view` keep the buffer
        exported; CPython then refuses the munmap with ``BufferError``,
        which is tolerated — the mapping is reclaimed when the process
        (or the last view) goes away, and ``unlink`` does not need the
        mapping gone.
        """
        if self._closed:
            return
        try:
            self._shm.close()
        except BufferError:
            return  # views still alive; freed with the process
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment's name from ``/dev/shm`` (owner, idempotent).

        Safe to call while workers still hold mappings: POSIX keeps the
        memory alive until their mappings close, only the *name* goes
        away — exactly the drain semantics rollout retirement needs.
        """
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
