"""Whole-model persistence: PragFormer weights + vocabulary in one bundle.

``PragFormer.encoder.save`` alone is not enough to redeploy a classifier —
predictions depend on the exact token->id mapping.  ``save_pragformer``
writes a single ``.npz`` containing encoder weights, head weights, the
vocabulary, and the config, and ``load_pragformer`` reconstructs a
ready-to-predict model.

Checkpoints written before the fused-QKV attention refactor store separate
``q_proj``/``k_proj``/``v_proj`` projection matrices; ``load_state_dict``
fuses them on load (see ``MultiHeadSelfAttention._upgrade_state``), so both
layouts remain loadable under format version 1.

The serving stack deploys *several* models at once (the directive head plus
the ``private``/``reduction`` clause heads — see
:mod:`repro.serve.registry`); :func:`save_advisor` / :func:`load_advisor`
bundle any named set of (model, vocab) pairs into one checkpoint directory
with an ``advisor.json`` manifest, one ``.npz`` per head.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.tokenize.vocab import Vocab

__all__ = ["save_pragformer", "load_pragformer", "save_advisor",
           "load_advisor", "validate_head_name"]

_FORMAT_VERSION = 1
_ADVISOR_MANIFEST = "advisor.json"
_ADVISOR_FORMAT_VERSION = 1


def validate_head_name(name: str) -> str:
    """Reject advisor head names that are not filesystem-safe.

    The single rule shared by :func:`save_advisor` (which turns names into
    ``<name>.npz`` files) and ``ModelRegistry.register`` (so any serving
    registry can always be checkpointed).  Returns ``name`` unchanged.
    """
    if (not name or name != name.strip()
            or any(seq in name for seq in ("/", "\\", ".."))):
        raise ValueError(f"head name {name!r} is not filesystem-safe")
    return name


def save_pragformer(model: PragFormer, vocab: Vocab, path: str) -> None:
    """Bundle model weights, vocabulary, and config into ``path`` (.npz)."""
    arrays = {}
    for name, param in model.encoder.named_parameters():
        arrays[f"encoder/{name}"] = param.data
    for name, param in model.head.named_parameters():
        arrays[f"head/{name}"] = param.data
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "vocab": vocab._itos,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


def load_pragformer(path: str) -> Tuple[PragFormer, Vocab]:
    """Reconstruct a (model, vocab) pair saved by :func:`save_pragformer`."""
    path = str(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version in {path}")
        config = PragFormerConfig(**meta["config"])
        itos = meta["vocab"]
        vocab = Vocab(itos[4:])  # specials are re-prepended by Vocab
        model = PragFormer(len(vocab), config)
        encoder_state = {}
        head_state = {}
        for key in archive.files:
            if key.startswith("encoder/"):
                encoder_state[key[len("encoder/"):]] = archive[key]
            elif key.startswith("head/"):
                head_state[key[len("head/"):]] = archive[key]
        model.encoder.load_state_dict(encoder_state)
        model.head.load_state_dict(head_state)
    if vocab._itos != itos:
        raise ValueError("vocabulary reconstruction mismatch")
    return model, vocab


def save_advisor(heads: Mapping[str, tuple], dirpath) -> Path:
    """Bundle named heads into an advisor checkpoint directory.

    ``heads`` maps head name to ``(model, vocab)`` or
    ``(model, vocab, max_len)`` — the serving ``max_len`` may differ from
    the model's own ``config.max_len`` and must survive the round trip.
    Writes one ``<name>.npz`` per head (via :func:`save_pragformer`) and an
    ``advisor.json`` manifest recording the head -> (file, max_len)
    mapping; returns the directory path.  Head names must be
    filesystem-safe (no separators).
    """
    directory = Path(dirpath)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format_version": _ADVISOR_FORMAT_VERSION, "heads": {}}
    for name, head in heads.items():
        validate_head_name(name)
        model, vocab = head[0], head[1]
        max_len = head[2] if len(head) > 2 else model.config.max_len
        filename = f"{name}.npz"
        save_pragformer(model, vocab, str(directory / filename))
        manifest["heads"][name] = {"file": filename, "max_len": int(max_len)}
    (directory / _ADVISOR_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return directory


def load_advisor(dirpath) -> Dict[str, Tuple[PragFormer, Vocab, int]]:
    """Reload every head of an advisor checkpoint written by
    :func:`save_advisor`, as ``{name: (model, vocab, max_len)}``."""
    directory = Path(dirpath)
    manifest_path = directory / _ADVISOR_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {_ADVISOR_MANIFEST} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _ADVISOR_FORMAT_VERSION:
        raise ValueError(f"unsupported advisor checkpoint version in {directory}")
    heads: Dict[str, Tuple[PragFormer, Vocab, int]] = {}
    for name, entry in manifest["heads"].items():
        model, vocab = load_pragformer(str(directory / entry["file"]))
        heads[name] = (model, vocab, int(entry["max_len"]))
    return heads
