"""Whole-model persistence: PragFormer weights + vocabulary in one bundle.

``PragFormer.encoder.save`` alone is not enough to redeploy a classifier —
predictions depend on the exact token->id mapping.  ``save_pragformer``
writes a single ``.npz`` containing encoder weights, head weights, the
vocabulary, and the config, and ``load_pragformer`` reconstructs a
ready-to-predict model.

Checkpoints written before the fused-QKV attention refactor store separate
``q_proj``/``k_proj``/``v_proj`` projection matrices; ``load_state_dict``
fuses them on load (see ``MultiHeadSelfAttention._upgrade_state``), so both
layouts remain loadable under format version 1.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Tuple

import numpy as np

from repro.models.pragformer import PragFormer, PragFormerConfig
from repro.tokenize.vocab import Vocab

__all__ = ["save_pragformer", "load_pragformer"]

_FORMAT_VERSION = 1


def save_pragformer(model: PragFormer, vocab: Vocab, path: str) -> None:
    """Bundle model weights, vocabulary, and config into ``path`` (.npz)."""
    arrays = {}
    for name, param in model.encoder.named_parameters():
        arrays[f"encoder/{name}"] = param.data
    for name, param in model.head.named_parameters():
        arrays[f"head/{name}"] = param.data
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "vocab": vocab._itos,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


def load_pragformer(path: str) -> Tuple[PragFormer, Vocab]:
    """Reconstruct a (model, vocab) pair saved by :func:`save_pragformer`."""
    path = str(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version in {path}")
        config = PragFormerConfig(**meta["config"])
        itos = meta["vocab"]
        vocab = Vocab(itos[4:])  # specials are re-prepended by Vocab
        model = PragFormer(len(vocab), config)
        encoder_state = {}
        head_state = {}
        for key in archive.files:
            if key.startswith("encoder/"):
                encoder_state[key[len("encoder/"):]] = archive[key]
            elif key.startswith("head/"):
                head_state[key[len("head/"):]] = archive[key]
        model.encoder.load_state_dict(encoder_state)
        model.head.load_state_dict(head_state)
    if vocab._itos != itos:
        raise ValueError("vocabulary reconstruction mismatch")
    return model, vocab
