"""Hybrid model+S2S combiner (§2.1).

The paper proposes: 'the model and the S2S compilers can be incorporated
such that in cases both the model and the S2S compilers agree on a
directive, it will remain.  Thus, verifying the correctness of the directive
and the necessity.'  Agreement trades recall for precision — useful when a
wrong directive (data race) is far costlier than a missed one.

Two policies:

* ``agreement`` — positive only when PragFormer *and* ComPar both insert;
* ``model_veto`` — ComPar's directive survives unless the model is
  confidently negative (threshold on P(positive)).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.encoding import EncodedSplit
from repro.models.pragformer import PragFormer
from repro.s2s.compar import ComPar

__all__ = ["HybridAdvisor"]


class HybridAdvisor:
    """Combine a trained PragFormer with the ComPar S2S driver."""

    def __init__(self, model: PragFormer, compar: ComPar = None,
                 veto_threshold: float = 0.2) -> None:
        self.model = model
        self.compar = compar or ComPar()
        self.veto_threshold = veto_threshold

    def predict(self, split: EncodedSplit, codes: Sequence[str],
                policy: str = "agreement") -> np.ndarray:
        """Binary predictions under the chosen combination policy."""
        if len(codes) != len(split):
            raise ValueError("codes and split must align")
        probs = self.model.predict_proba(split)[:, 1]
        s2s_preds, _ = self.compar.predict_directive(list(codes))
        if policy == "agreement":
            return ((probs > 0.5) & (s2s_preds == 1)).astype(np.int64)
        if policy == "model_veto":
            return ((s2s_preds == 1) & (probs > self.veto_threshold)).astype(np.int64)
        raise ValueError(f"unknown policy {policy!r}")

    def precision_recall_tradeoff(self, split: EncodedSplit, codes: Sequence[str]):
        """Metrics of model-alone, S2S-alone, and both policies side by side."""
        from repro.eval import binary_metrics

        labels = split.labels
        out = {}
        out["pragformer"] = binary_metrics(
            (self.model.predict_proba(split)[:, 1] > 0.5).astype(int), labels).as_dict()
        s2s_preds, _ = self.compar.predict_directive(list(codes))
        out["compar"] = binary_metrics(s2s_preds, labels).as_dict()
        out["agreement"] = binary_metrics(
            self.predict(split, codes, "agreement"), labels).as_dict()
        out["model_veto"] = binary_metrics(
            self.predict(split, codes, "model_veto"), labels).as_dict()
        return out
