"""Multi-process training on the flat parameter arena.

:mod:`repro.train.ddp` is the data-parallel trainer: N forked workers
share one :class:`~repro.nn.module.ParameterArena` parameter block
through ``multiprocessing.shared_memory``, each computes gradients for a
deterministic slice of every batch, and rank 0 reduces + steps
:class:`~repro.nn.optim.FusedAdamW` once per micro-batch.  The whole
scheme is bit-deterministic: the same seed produces the same loss
trajectory and the same final arena bytes at *any* worker count (see
``tests/test_train_ddp.py``).
"""

from repro.train.ddp import (
    DDP_NAME_PREFIX,
    DataParallelTrainer,
    DDPConfig,
    WorkerDied,
    reseed_stochastic,
    shard_bounds,
    shard_rng,
)

__all__ = [
    "DDP_NAME_PREFIX",
    "DDPConfig",
    "DataParallelTrainer",
    "WorkerDied",
    "reseed_stochastic",
    "shard_bounds",
    "shard_rng",
]
