"""Shared-memory data-parallel training on the flat parameter arena.

The training hot path (``ParameterArena`` + ``FusedAdamW``) keeps every
parameter and every gradient in *one* contiguous buffer each, which makes
multi-process data parallelism almost embarrassingly cheap: map the
parameter buffer into one ``multiprocessing.shared_memory`` segment that
every worker reads, give the gradients one shared block of per-shard rows,
and the all-reduce is a single vectorized ``np.sum`` over that block
followed by one fused optimizer step.  No pickling, no tensors in flight —
the only per-step IPC is a 40-byte control record and two semaphore
operations per worker (the PR 7 doorbell pattern; workers block, never
poll).

**The determinism contract.**  N-worker training is *bit-identical* to
single-process training on the same seed — same loss trajectory, same
final arena bytes, same optimizer moments.  Floating-point addition is not
associative, so that guarantee cannot come from sharding by worker count
(``(g0+g2)+(g1+g3)`` ≠ ``((g0+g1)+g2)+g3`` bitwise).  Instead the
gradient arithmetic is defined over a **fixed micro-shard grid** that
never depends on how many workers exist:

* every batch is split into ``grad_shards`` contiguous index shards
  (:func:`shard_bounds` — deterministic, remainder-tolerant, possibly
  empty);
* shard ``s`` is computed by rank ``s % n_workers`` as a *pure function*
  of (parameters, shard rows, step, ``s``): all stochastic state (dropout
  streams, MLM masking draws) is re-seeded per ``(seed, step, shard)``
  key before the shard's forward/backward (:func:`reseed_stochastic`,
  :func:`shard_rng`), and the shard's gradients use *sum* reduction over
  examples so no shard needs to know any other shard's size;
* shard ``s``'s gradient lands in row ``s`` of the shared ``(S, |arena|)``
  grad block — the same row no matter which rank computed it — and rank 0
  reduces with one ``np.sum(block, axis=0)``, whose operation order is a
  function of the (fixed) block shape only;
* rank 0 then normalizes by the summed shard weights, clips, and applies
  one :class:`~repro.nn.optim.FusedAdamW` step.  Parameters are only ever
  written by rank 0, between barriers, so a worker death can never leave
  the arena torn — the params are always exactly those of the last
  completed step.

**Process topology.**  Rank 0 *is* the calling process: it computes its
own shards, reduces, and steps; ranks 1..N-1 are forked children created
at trainer construction (the dataset arrays are inherited copy-on-write —
read-shared for free under ``fork``).  ``n_workers=1`` is therefore plain
single-process training through the identical arithmetic, which is what
the parity tests compare against.

**Barrier protocol.**  One step is::

    rank 0: write ctrl record -> release every doorbell
    rank k: (blocked on doorbell) compute owned shards -> release done
    rank 0: compute its shards -> acquire done x (N-1)
            -> reduce -> normalize -> clip -> FusedAdamW.step()

The ``done`` acquisition loop doubles as the failure detector: a worker
that died (or hung past ``barrier_timeout_s``) raises :class:`WorkerDied`
after the trainer has terminated the survivors and unlinked every
segment — a clean error, an untorn arena, and nothing left in
``/dev/shm`` (audited suite-wide by ``tests/conftest.py``).

Segments are named ``repro-ddp-<pid>-<n>-{params,grads,ctrl}`` so the
leak check can glob them; sizing is ``|arena|`` bytes for the param
block and ``grad_shards x |arena|`` for the grad block.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.optim import FusedAdamW, WarmupSchedule

__all__ = [
    "DDP_NAME_PREFIX",
    "DDPConfig",
    "DataParallelTrainer",
    "WorkerDied",
    "reseed_stochastic",
    "shard_bounds",
    "shard_rng",
]

#: Every DDP segment name starts with this, so ``tests/conftest.py`` can
#: assert no leaked ``/dev/shm`` entries after every test.
DDP_NAME_PREFIX = "repro-ddp"

_CMD_IDLE, _CMD_STEP, _CMD_STOP = 0, 1, 2
_CTRL_WORDS = 5  # command, epoch, step, start, length (int64 each)

_trainer_ids = itertools.count()


class WorkerDied(RuntimeError):
    """A forked worker exited (or hung) mid-step.

    Raised by rank 0 after cleanup: surviving workers are terminated and
    every shared segment is unlinked.  The arena holds the parameters of
    the last *completed* step — never a torn partial update, because only
    rank 0 writes parameters and only between step barriers."""


def shard_bounds(n: int, shards: int, shard: int) -> Tuple[int, int]:
    """Half-open index range of micro-shard ``shard`` in a batch of ``n``.

    Contiguous, exhaustive, remainder-tolerant: shard sizes differ by at
    most one, and shards past ``n`` are empty.  This is the fixed grid the
    determinism contract is built on — it depends on the shard count, not
    the worker count."""
    return (shard * n) // shards, ((shard + 1) * n) // shards


def _u63(value: int) -> int:
    """Clamp any int into SeedSequence's non-negative entropy domain."""
    return int(value) & (2**63 - 1)


def shard_rng(key: Sequence[int], salt: int = 0) -> np.random.Generator:
    """Deterministic generator for one ``(seed, step, shard)`` key.

    Distinct ``salt`` values give independent streams for the same key
    (data-level draws vs module re-seeding)."""
    return np.random.default_rng([_u63(k) for k in key] + [0, _u63(salt)])


def reseed_stochastic(roots, key: Sequence[int]) -> None:
    """Re-seed every rng-carrying module under ``roots`` from ``key``.

    Walks ``Module.modules()`` in deterministic order and replaces each
    module-held ``np.random.Generator`` (dropout streams) with a fresh
    generator keyed by ``(key..., module index)``.  After this, a train
    forward is a pure function of (parameters, inputs, key) — the property
    that lets any rank compute any shard with bit-identical results."""
    base = [_u63(k) for k in key]
    index = 0
    for root in roots:
        for module in root.modules():
            if isinstance(getattr(module, "rng", None), np.random.Generator):
                module.rng = np.random.default_rng(base + [1, index])
                index += 1


@dataclass(frozen=True)
class DDPConfig:
    """Data-parallel trainer knobs.

    ``grad_shards`` is part of the *arithmetic*, not the deployment: runs
    with different shard counts produce (slightly) different float
    trajectories, runs with different worker counts do not.  Keep it at
    the default unless you know why you are changing it.

    ``die_at_step``/``die_rank`` are chaos-testing hooks (the same idiom
    as ``ShmRing.try_push(corrupt=True)``): the given rank calls
    ``os._exit`` at the start of the given step so the death path stays
    deterministic under test."""

    n_workers: int = 1
    grad_shards: int = 8
    seed: int = 0
    barrier_timeout_s: float = 60.0
    #: chaos testing only — deterministic worker death
    die_at_step: Optional[int] = None
    die_rank: int = 1


#: shard_backward(sel, key) -> (loss_sum, weight): computes *sum-reduced*
#: gradients for the shard into the arena's grad buffer.
ShardBackward = Callable[[np.ndarray, Tuple[int, int, int]], Tuple[float, float]]


class DataParallelTrainer:
    """Fork-N data-parallel driver for one ``FusedAdamW`` + arena pair.

    The caller supplies ``shard_backward(sel, key)``: given the example
    indices of one micro-shard and its ``(seed, step, shard)`` key, run
    forward/backward with **sum** reduction over examples (the trainer has
    already zeroed the arena grads) and return ``(loss_sum, weight)`` —
    typically (per-example-loss total, example count), or for MLM
    (per-position total, masked-position count).  Rank 0 divides the
    reduced gradient and loss by the summed weights, so the trained
    objective is exactly the batch mean regardless of shard sizes.

    Use as a context manager; :meth:`close` unlinks every segment and
    moves the arena back onto private memory, so the model (and its
    optimizer) keep working after the trainer is gone.
    """

    def __init__(self, optimizer: FusedAdamW, shard_backward: ShardBackward,
                 n_examples: int, config: Optional[DDPConfig] = None,
                 grad_clip: float = 0.0,
                 lr_schedule: Optional[WarmupSchedule] = None) -> None:
        cfg = config or DDPConfig()
        if cfg.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if cfg.grad_shards < cfg.n_workers:
            raise ValueError(
                f"grad_shards ({cfg.grad_shards}) must be >= n_workers "
                f"({cfg.n_workers}): every rank needs at least one shard")
        if cfg.n_workers > 1 and mp.get_start_method() != "fork":
            raise RuntimeError(
                "DataParallelTrainer needs the fork start method (workers "
                "inherit the dataset and the shard_backward closure)")
        self.cfg = cfg
        self.opt = optimizer
        self.arena = optimizer.arena
        self.grad_clip = grad_clip
        self.lr_schedule = lr_schedule
        self._shard_backward = shard_backward
        self._closed = False
        self.step_losses: List[float] = []
        self.counters = {
            "steps": 0,
            "examples": 0,
            "reduce_ops": 0,
            "grad_bytes_reduced": 0,
            "per_rank_examples": [0] * cfg.n_workers,
        }

        uid = f"{DDP_NAME_PREFIX}-{os.getpid()}-{next(_trainer_ids)}"
        arena_words = self.arena.size
        dtype = self.arena.data.dtype
        shards = cfg.grad_shards
        self._seg_params = shared_memory.SharedMemory(
            name=f"{uid}-params", create=True,
            size=max(1, arena_words * dtype.itemsize))
        self._seg_grads = shared_memory.SharedMemory(
            name=f"{uid}-grads", create=True,
            size=max(1, shards * arena_words * dtype.itemsize))
        ctrl_bytes = 8 * _CTRL_WORDS + 16 * shards + 8 * max(1, n_examples)
        self._seg_ctrl = shared_memory.SharedMemory(
            name=f"{uid}-ctrl", create=True, size=ctrl_bytes)

        self._grad_block = np.ndarray((shards, arena_words), dtype,
                                      self._seg_grads.buf)
        self._grad_block.fill(0.0)
        self._ctrl = np.ndarray((_CTRL_WORDS,), np.int64, self._seg_ctrl.buf)
        self._ctrl.fill(_CMD_IDLE)
        self._losses = np.ndarray((shards, 2), np.float64,
                                  self._seg_ctrl.buf, 8 * _CTRL_WORDS)
        self._losses.fill(0.0)
        self._order = np.ndarray((n_examples,), np.int64, self._seg_ctrl.buf,
                                 8 * _CTRL_WORDS + 16 * shards)

        # the param block is the one truly *shared* mapping: rebind the
        # arena onto it before forking so every worker reads rank 0's
        # post-step weights directly
        param_view = np.ndarray((arena_words,), dtype, self._seg_params.buf)
        self.arena.rebind(data=param_view)

        self._doorbells = [mp.Semaphore(0) for _ in range(cfg.n_workers - 1)]
        self._done = mp.Semaphore(0)
        self._procs: List[mp.Process] = []
        for rank in range(1, cfg.n_workers):
            proc = mp.Process(target=self._worker_main, args=(rank,),
                              daemon=True, name=f"ddp-rank{rank}")
            proc.start()
            self._procs.append(proc)

    # -- rank 0 (the calling process) ----------------------------------------

    def run_epoch(self, batches: Sequence[np.ndarray], epoch: int = 0) -> float:
        """Train one pass over ``batches`` (arrays of example indices).

        Returns the mean per-batch loss (each batch loss is the
        weight-normalized mean its shards report); per-step losses append
        to :attr:`step_losses`.  Batch boundaries are shipped to workers
        as (start, length) into one shared index buffer, so uneven and
        remainder batches need no special casing anywhere."""
        if self._closed:
            raise RuntimeError("trainer is closed")
        if not batches:
            return 0.0
        order = np.concatenate(
            [np.ascontiguousarray(batch, dtype=np.int64) for batch in batches])
        if order.size > self._order.size:
            raise ValueError(
                f"epoch indexes {order.size} examples, trainer was sized "
                f"for {self._order.size}")
        self._order[:order.size] = order
        start = 0
        total = 0.0
        for batch in batches:
            length = len(batch)
            total += self._step(epoch, start, length)
            start += length
        return total / len(batches)

    def _step(self, epoch: int, start: int, length: int) -> float:
        cfg = self.cfg
        step = self.opt.t  # completed steps == this step's rng key
        self._ctrl[:] = (_CMD_STEP, epoch, step, start, length)
        for bell in self._doorbells:
            bell.release()
        self._compute_rank(0, step, start, length)
        self._await_workers()
        # all-reduce: one vectorized sum over the fixed (S, |arena|) block.
        # The operation order depends only on the block shape, so the
        # result is bit-identical at every worker count.
        np.sum(self._grad_block, axis=0, out=self.arena.grad)
        counters = self.counters
        counters["reduce_ops"] += 1
        counters["grad_bytes_reduced"] += int(self._grad_block.nbytes)
        denom = float(self._losses[:, 1].sum())
        loss = float(self._losses[:, 0].sum() / denom) if denom > 0 else 0.0
        if denom > 0:
            # shards report sum-reduced grads; one scale recovers the mean
            self.arena.grad *= 1.0 / denom
        if self.grad_clip > 0:
            self.opt.clip_grad_norm(self.grad_clip)
        if self.lr_schedule is not None:
            self.lr_schedule.step()
        self.opt.step()
        counters["steps"] += 1
        counters["examples"] += length
        for shard in range(cfg.grad_shards):
            lo, hi = shard_bounds(length, cfg.grad_shards, shard)
            counters["per_rank_examples"][shard % cfg.n_workers] += hi - lo
        self.step_losses.append(loss)
        return loss

    def _await_workers(self) -> None:
        pending = len(self._procs)
        deadline = time.monotonic() + self.cfg.barrier_timeout_s
        while pending:
            if self._done.acquire(timeout=0.1):
                pending -= 1
                continue
            dead = [p.name for p in self._procs if not p.is_alive()]
            if dead:
                self._abort()
                raise WorkerDied(
                    f"worker(s) {dead} died mid-step; segments unlinked, "
                    f"arena left at the last completed step")
            if time.monotonic() >= deadline:
                self._abort()
                raise WorkerDied(
                    f"worker barrier timed out after "
                    f"{self.cfg.barrier_timeout_s}s; segments unlinked")

    # -- shard computation (all ranks) ---------------------------------------

    def _compute_rank(self, rank: int, step: int, start: int,
                      length: int) -> None:
        cfg = self.cfg
        if (cfg.die_at_step is not None and rank == cfg.die_rank
                and step >= cfg.die_at_step):
            os._exit(23)  # chaos hook: deterministic mid-step death
        batch = self._order[start:start + length]
        for shard in range(cfg.grad_shards):
            if shard % cfg.n_workers != rank:
                continue
            lo, hi = shard_bounds(length, cfg.grad_shards, shard)
            row = self._grad_block[shard]
            if hi == lo:  # empty shard (batch smaller than the grid)
                row.fill(0.0)
                self._losses[shard] = 0.0
                continue
            sel = np.ascontiguousarray(batch[lo:hi])
            self.arena.zero_grad()
            loss_sum, weight = self._shard_backward(
                sel, (cfg.seed, step, shard))
            row[:] = self.arena.grad
            self._losses[shard, 0] = loss_sum
            self._losses[shard, 1] = weight

    def _worker_main(self, rank: int) -> None:
        bell = self._doorbells[rank - 1]
        while True:
            bell.acquire()
            command, _epoch, step, start, length = (int(w) for w in self._ctrl)
            if command != _CMD_STEP:
                return
            # no try/finally: if a shard raises, this process dies without
            # releasing `done`, and rank 0's failure detector reports it —
            # never a silent half-written step
            self._compute_rank(rank, step, start, length)
            self._done.release()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers, unmap + unlink every segment, and move the arena
        back onto private memory (idempotent).  The model and optimizer
        remain fully usable afterwards."""
        if self._closed:
            return
        self._closed = True
        self._ctrl[:1] = _CMD_STOP
        for bell in self._doorbells:
            bell.release()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self._release_segments()

    def _abort(self) -> None:
        """Failure-path close: terminate survivors, reclaim everything."""
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._release_segments()

    def _release_segments(self) -> None:
        # parameters live in the segment about to vanish: copy them onto
        # private memory first so every Parameter view stays valid
        self.arena.rebind(data=np.empty_like(self.arena.data))
        # numpy views hold buffer exports; they must go before close()
        self._grad_block = self._ctrl = self._losses = self._order = None
        for seg in (self._seg_params, self._seg_grads, self._seg_ctrl):
            try:
                seg.close()
            except Exception:  # noqa: BLE001 - already closed
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
