"""Recursive-descent parser for the C subset used by the Open-OMP corpus.

The grammar covers everything the snippet generators and the external
benchmark suites emit: declarations (qualifiers, pointers, multi-dim arrays,
initializers, multiple declarators), the full C expression grammar with
correct precedence and associativity, control flow (``for``/``while``/
``do``/``if``/``switch``), function definitions, and ``#pragma`` attachment
to the following loop.

Design notes
------------
* Snippets are *fragments* — a bare loop is a valid input — so the top-level
  rule accepts a statement list rather than requiring a translation unit.
* Typedef names (``size_t``, ``ssize_t``, user types like ``IndexPacket``)
  cannot be distinguished from identifiers without a symbol table; we use the
  classic heuristic that ``IDENT IDENT`` in statement position begins a
  declaration, plus a seed set of well-known typedef names.
* The parser is deliberately total over our corpus: robustness *limits* of
  the paper's S2S compilers are modelled separately in :mod:`repro.s2s`, not
  by crippling this parser.
* Two failure regimes.  Strict mode (``parse``) raises :class:`ParseError`
  on the first mismatch — corpus material must be clean.  Resilient mode
  (``parse_resilient``) does classic panic-mode recovery: on a mismatch it
  skips to a synchronisation token (``;`` consumed, ``}`` / loop keywords
  stopped before), drops an :class:`~repro.clang.nodes.ErrorStmt` into the
  AST, records a :class:`Diagnostic`, and keeps going.  Recovery always
  consumes at least one token per error, so it terminates.  Both modes
  enforce a hard nesting-depth limit (:data:`DEFAULT_MAX_DEPTH`) so
  pathological input raises a deterministic :class:`ParseError` instead of
  an interpreter-dependent ``RecursionError``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clang.lexer import Token, TokenKind, tokenize
from repro.clang.nodes import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Break,
    Call,
    Case,
    Cast,
    Compound,
    Constant,
    Continue,
    Decl,
    DeclList,
    Default,
    DoWhile,
    EmptyStmt,
    ErrorStmt,
    ExprList,
    ExprStmt,
    For,
    FuncDef,
    Goto,
    Identifier,
    If,
    Label,
    Node,
    Pragma,
    Return,
    StructRef,
    Switch,
    TernaryOp,
    UnaryOp,
    While,
)

__all__ = [
    "ParseError",
    "ParseBudgetExceeded",
    "Diagnostic",
    "Parser",
    "parse",
    "parse_expression",
    "parse_resilient",
    "TYPE_NAMES",
    "DEFAULT_MAX_DEPTH",
]

#: Hard nesting-depth cap.  The counter increments at most twice per source
#: nesting level and each increment costs at most ~8 Python frames (the
#: precedence ladder), so 80 keeps the worst case around 650 frames —
#: comfortably inside CPython's default 1000-frame recursion limit even
#: under a test runner — while still admitting ~35 levels of parentheses,
#: far beyond anything in real code.
DEFAULT_MAX_DEPTH = 80

#: Keywords that begin a statement recovery can safely resynchronise on.
_SYNC_KEYWORDS = frozenset(
    "for while do if switch return break continue".split()
)

#: Identifiers treated as type names even though they are not C keywords.
TYPE_NAMES = frozenset(
    """
    size_t ssize_t ptrdiff_t intptr_t uintptr_t
    int8_t int16_t int32_t int64_t uint8_t uint16_t uint32_t uint64_t
    FILE bool wchar_t
    IndexPacket PixelPacket Quantum MagickBooleanType
    real_t DATA_TYPE
    """.split()
)

_BASE_TYPE_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned struct union enum bool".split()
)
_QUALIFIERS = frozenset(
    "const volatile static extern register restrict inline auto".split()
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar.

    ``kind`` classifies the failure: ``"parse"`` (grammar mismatch),
    ``"depth"`` (nesting-depth limit hit) or ``"budget"`` (wall-clock
    budget exhausted, resilient mode only).
    """

    def __init__(self, message: str, token: Token, kind: str = "parse") -> None:
        super().__init__(f"{message} (got {token.kind.name} {token.value!r} at {token.line}:{token.col})")
        self.token = token
        self.kind = kind


class ParseBudgetExceeded(ParseError):
    """Raised when a resilient parse runs past its wall-clock budget.

    Unlike a plain :class:`ParseError` this is *not* recovered from — the
    resilient entry points catch it, close the partial AST with an
    :class:`~repro.clang.nodes.ErrorStmt`, and return.
    """

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(message, token, kind="budget")


@dataclass(frozen=True)
class Diagnostic:
    """One recovered-from problem in a resilient lex/parse.

    ``kind`` is ``"lex"``, ``"parse"``, ``"depth"`` or ``"budget"``;
    ``line``/``col`` locate the token that triggered it.
    """

    message: str
    line: int
    col: int
    kind: str = "parse"


class Parser:
    """One-token-lookahead recursive-descent parser.

    ``max_depth`` bounds statement/expression nesting in *both* modes;
    ``resilient=True`` switches statement-list parsing from raising on the
    first :class:`ParseError` to panic-mode recovery (see module docstring).
    ``deadline`` (a ``time.monotonic()`` instant) aborts a resilient parse
    via :class:`ParseBudgetExceeded` once exceeded.
    """

    def __init__(self, tokens: List[Token], extra_types: Optional[frozenset] = None,
                 max_depth: int = DEFAULT_MAX_DEPTH, resilient: bool = False,
                 deadline: Optional[float] = None) -> None:
        self.toks = tokens
        self.i = 0
        self.type_names = set(TYPE_NAMES)
        if extra_types:
            self.type_names.update(extra_types)
        self.max_depth = max_depth
        self.resilient = resilient
        self.deadline = deadline
        self.diagnostics: List[Diagnostic] = []
        self._depth = 0

    # -- token stream helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.i + offset, len(self.toks) - 1)
        return self.toks[idx]

    def _at_op(self, *ops: str) -> bool:
        t = self._peek()
        return t.kind is TokenKind.OP and t.value in ops

    def _at_kw(self, *kws: str) -> bool:
        t = self._peek()
        return t.kind is TokenKind.KEYWORD and t.value in kws

    def _advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def _expect_op(self, op: str) -> Token:
        if not self._at_op(op):
            raise ParseError(f"expected {op!r}", self._peek())
        return self._advance()

    def _expect_kw(self, kw: str) -> Token:
        if not self._at_kw(kw):
            raise ParseError(f"expected keyword {kw!r}", self._peek())
        return self._advance()

    def _expect_ident(self) -> Token:
        t = self._peek()
        if t.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", t)
        return self._advance()

    # -- nesting / budget guards ---------------------------------------------

    def _check_limits(self) -> None:
        """Raise when the depth cap or (resilient-mode) deadline is blown."""
        if self._depth > self.max_depth:
            raise ParseError(
                f"nesting depth exceeds limit {self.max_depth}",
                self._peek(), kind="depth")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ParseBudgetExceeded("parse budget exceeded", self._peek())

    # -- type recognition ----------------------------------------------------

    def _starts_declaration(self) -> bool:
        t = self._peek()
        if t.kind is TokenKind.KEYWORD and (t.value in _BASE_TYPE_KEYWORDS or t.value in _QUALIFIERS):
            return True
        if t.kind is TokenKind.IDENT and t.value in self.type_names:
            nxt = self._peek(1)
            return nxt.kind is TokenKind.IDENT or (nxt.kind is TokenKind.OP and nxt.value == "*")
        return False

    def _parse_type_spec(self) -> tuple:
        """Parse qualifiers + base type; returns (quals, base_type_string)."""
        quals: List[str] = []
        base_parts: List[str] = []
        while True:
            t = self._peek()
            if t.kind is TokenKind.KEYWORD and t.value in _QUALIFIERS:
                quals.append(self._advance().value)
            elif t.kind is TokenKind.KEYWORD and t.value in ("struct", "union", "enum"):
                tag_kw = self._advance().value
                tag = self._expect_ident().value
                base_parts.append(f"{tag_kw} {tag}")
            elif t.kind is TokenKind.KEYWORD and t.value in _BASE_TYPE_KEYWORDS:
                base_parts.append(self._advance().value)
            elif t.kind is TokenKind.IDENT and t.value in self.type_names and not base_parts:
                base_parts.append(self._advance().value)
            else:
                break
        if not base_parts:
            if quals:
                base_parts = ["int"]  # e.g. ``register i;`` — implicit int
            else:
                raise ParseError("expected type specifier", self._peek())
        return quals, " ".join(base_parts)

    # -- declarations --------------------------------------------------------

    def _parse_declarator(self, quals: List[str], base_type: str) -> Decl:
        ptr_depth = 0
        while self._at_op("*"):
            self._advance()
            ptr_depth += 1
            while self._at_kw("const", "restrict", "volatile"):
                self._advance()
        name = self._expect_ident().value
        dims: List[Optional[Node]] = []
        while self._at_op("["):
            self._advance()
            if self._at_op("]"):
                dims.append(None)
            else:
                dims.append(self._parse_assignment_expr())
            self._expect_op("]")
        init: Optional[Node] = None
        if self._at_op("="):
            self._advance()
            init = self._parse_initializer()
        return Decl(name=name, base_type=base_type, quals=list(quals),
                    ptr_depth=ptr_depth, array_dims=dims, init=init)

    def _parse_initializer(self) -> Node:
        self._depth += 1
        try:
            self._check_limits()
            return self._parse_initializer_inner()
        finally:
            self._depth -= 1

    def _parse_initializer_inner(self) -> Node:
        if self._at_op("{"):
            self._advance()
            items: List[Node] = []
            while not self._at_op("}"):
                items.append(self._parse_initializer())
                if self._at_op(","):
                    self._advance()
                else:
                    break
            self._expect_op("}")
            return ExprList(items)
        return self._parse_assignment_expr()

    def _parse_declaration(self) -> Node:
        quals, base = self._parse_type_spec()
        first = self._parse_declarator(quals, base)
        decls = [first]
        while self._at_op(","):
            self._advance()
            decls.append(self._parse_declarator(quals, base))
        self._expect_op(";")
        return first if len(decls) == 1 else DeclList(decls)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> Node:
        self._depth += 1
        try:
            self._check_limits()
            return self._parse_statement_inner()
        finally:
            self._depth -= 1

    def _parse_statement_inner(self) -> Node:
        t = self._peek()
        if t.kind is TokenKind.PRAGMA:
            self._advance()
            pragma = Pragma(t.value)
            nxt = self.parse_statement()
            if isinstance(nxt, For):
                nxt.pragma = pragma
                return nxt
            return Compound([pragma, nxt])
        if self._at_op("{"):
            return self._parse_compound()
        if self._at_op(";"):
            self._advance()
            return EmptyStmt()
        if self._at_kw("for"):
            return self._parse_for()
        if self._at_kw("while"):
            return self._parse_while()
        if self._at_kw("do"):
            return self._parse_do_while()
        if self._at_kw("if"):
            return self._parse_if()
        if self._at_kw("switch"):
            return self._parse_switch()
        if self._at_kw("return"):
            self._advance()
            expr = None if self._at_op(";") else self._parse_expression()
            self._expect_op(";")
            return Return(expr)
        if self._at_kw("break"):
            self._advance()
            self._expect_op(";")
            return Break()
        if self._at_kw("continue"):
            self._advance()
            self._expect_op(";")
            return Continue()
        if self._at_kw("goto"):
            self._advance()
            target = self._expect_ident().value
            self._expect_op(";")
            return Goto(target)
        # label: ``name : stmt``
        if t.kind is TokenKind.IDENT and self._peek(1).kind is TokenKind.OP and self._peek(1).value == ":":
            name = self._advance().value
            self._advance()  # ':'
            return Label(name, self.parse_statement())
        if self._starts_declaration():
            return self._parse_declaration()
        expr = self._parse_expression()
        self._expect_op(";")
        return ExprStmt(expr)

    def _parse_compound(self) -> Compound:
        self._expect_op("{")
        stmts: List[Node] = []
        while not self._at_op("}"):
            if self._peek().kind is TokenKind.EOF:
                if self.resilient:
                    self._note("unterminated block", self._peek())
                    stmts.append(ErrorStmt(message="unterminated block"))
                    return Compound(stmts)
                raise ParseError("unterminated block", self._peek())
            if self.resilient:
                stmts.append(self._parse_statement_resilient())
            else:
                stmts.append(self.parse_statement())
        self._expect_op("}")
        return Compound(stmts)

    # -- panic-mode recovery -------------------------------------------------

    def _note(self, message: str, token: Token, kind: str = "parse") -> None:
        self.diagnostics.append(
            Diagnostic(message, token.line, token.col, kind))

    def _parse_statement_resilient(self) -> Node:
        """One statement, or an :class:`ErrorStmt` after resynchronising.

        Budget exhaustion (:class:`ParseBudgetExceeded`) is *not* recovered
        from — it propagates so the entry point can close the partial AST.
        """
        mark = self.i
        try:
            return self.parse_statement()
        except ParseBudgetExceeded:
            raise
        except ParseError as exc:
            self._note(str(exc), exc.token, exc.kind)
            return self._recover(mark, str(exc))

    def _recover(self, mark: int, message: str) -> ErrorStmt:
        """Skip to a sync token (``;`` consumed; ``}``/loop keywords kept).

        Guarantees forward progress: if the failed parse consumed nothing
        and recovery stopped immediately, one token is force-consumed, so a
        resilient parse can never loop on the same position.
        """
        skipped: List[str] = []
        while True:
            t = self._peek()
            if t.kind is TokenKind.EOF:
                break
            if t.kind is TokenKind.OP and t.value == ";":
                skipped.append(self._advance().value)
                break
            if t.kind is TokenKind.OP and t.value == "}":
                break
            if t.kind is TokenKind.KEYWORD and t.value in _SYNC_KEYWORDS:
                break
            skipped.append(self._advance().value)
        if self.i == mark and self._peek().kind is not TokenKind.EOF:
            skipped.append(self._advance().value)
        return ErrorStmt(message=message, skipped=" ".join(skipped))

    def _parse_for(self) -> For:
        self._expect_kw("for")
        self._expect_op("(")
        init: Optional[Node] = None
        if not self._at_op(";"):
            if self._starts_declaration():
                init = self._parse_declaration()  # consumes ';'
            else:
                init = ExprStmt(self._parse_expression())
                self._expect_op(";")
        else:
            self._advance()
        cond = None if self._at_op(";") else self._parse_expression()
        self._expect_op(";")
        nxt = None if self._at_op(")") else self._parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return For(init=init, cond=cond, nxt=nxt, body=body)

    def _parse_while(self) -> While:
        self._expect_kw("while")
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        return While(cond, self.parse_statement())

    def _parse_do_while(self) -> DoWhile:
        self._expect_kw("do")
        body = self.parse_statement()
        self._expect_kw("while")
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        return DoWhile(body, cond)

    def _parse_if(self) -> If:
        self._expect_kw("if")
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        iftrue = self.parse_statement()
        iffalse: Optional[Node] = None
        if self._at_kw("else"):
            self._advance()
            iffalse = self.parse_statement()
        return If(cond, iftrue, iffalse)

    def _parse_switch(self) -> Switch:
        self._expect_kw("switch")
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        self._expect_op("{")
        stmts: List[Node] = []
        while not self._at_op("}"):
            if self._at_kw("case"):
                self._advance()
                expr = self._parse_expression()
                self._expect_op(":")
                body: List[Node] = []
                while not (self._at_kw("case", "default") or self._at_op("}")):
                    body.append(self.parse_statement())
                stmts.append(Case(expr, body))
            elif self._at_kw("default"):
                self._advance()
                self._expect_op(":")
                body = []
                while not (self._at_kw("case", "default") or self._at_op("}")):
                    body.append(self.parse_statement())
                stmts.append(Default(body))
            else:
                raise ParseError("expected case/default", self._peek())
        self._expect_op("}")
        return Switch(cond, Compound(stmts))

    # -- function definitions -------------------------------------------------

    def _try_parse_funcdef(self) -> Optional[FuncDef]:
        """Attempt ``type name ( params ) { ... }``; rewind on mismatch."""
        mark = self.i
        try:
            quals, base = self._parse_type_spec()
            ptr_depth = 0
            while self._at_op("*"):
                self._advance()
                ptr_depth += 1
            name_tok = self._peek()
            if name_tok.kind is not TokenKind.IDENT:
                raise ParseError("not a funcdef", name_tok)
            self._advance()
            if not self._at_op("("):
                raise ParseError("not a funcdef", self._peek())
            self._advance()
            params: List[Decl] = []
            if not self._at_op(")"):
                if self._at_kw("void") and self._peek(1).kind is TokenKind.OP and self._peek(1).value == ")":
                    self._advance()
                else:
                    while True:
                        pq, pbase = self._parse_type_spec()
                        pd = 0
                        while self._at_op("*"):
                            self._advance()
                            pd += 1
                        pname = self._expect_ident().value
                        dims: List[Optional[Node]] = []
                        while self._at_op("["):
                            self._advance()
                            if self._at_op("]"):
                                dims.append(None)
                            else:
                                dims.append(self._parse_assignment_expr())
                            self._expect_op("]")
                        params.append(Decl(pname, pbase, pq, pd, dims))
                        if self._at_op(","):
                            self._advance()
                        else:
                            break
            self._expect_op(")")
            if not self._at_op("{"):
                raise ParseError("not a funcdef (prototype?)", self._peek())
            body = self._parse_compound()
            ret = " ".join(quals + [base]) + "*" * ptr_depth
            return FuncDef(name=name_tok.value, ret_type=ret, params=params, body=body)
        except ParseError:
            self.i = mark
            return None

    # -- expressions (precedence climbing) -------------------------------------

    def _parse_expression(self) -> Node:
        """Full expression including the comma operator."""
        expr = self._parse_assignment_expr()
        if self._at_op(","):
            exprs = [expr]
            while self._at_op(","):
                self._advance()
                exprs.append(self._parse_assignment_expr())
            return ExprList(exprs)
        return expr

    def _parse_assignment_expr(self) -> Node:
        self._depth += 1
        try:
            self._check_limits()
            return self._parse_assignment_expr_inner()
        finally:
            self._depth -= 1

    def _parse_assignment_expr_inner(self) -> Node:
        left = self._parse_ternary()
        t = self._peek()
        if t.kind is TokenKind.OP and t.value in _ASSIGN_OPS:
            op = self._advance().value
            right = self._parse_assignment_expr()  # right-associative
            return Assignment(op, left, right)
        return left

    def _parse_ternary(self) -> Node:
        cond = self._parse_binary(0)
        if self._at_op("?"):
            self._advance()
            iftrue = self._parse_expression()
            self._expect_op(":")
            iffalse = self._parse_ternary()
            return TernaryOp(cond, iftrue, iffalse)
        return cond

    #: binary operator precedence levels, lowest first
    _BIN_LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> Node:
        if level >= len(self._BIN_LEVELS):
            return self._parse_unary()
        ops = self._BIN_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._at_op(*ops):
            op = self._advance().value
            right = self._parse_binary(level + 1)
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Node:
        self._depth += 1
        try:
            self._check_limits()
            return self._parse_unary_inner()
        finally:
            self._depth -= 1

    def _parse_unary_inner(self) -> Node:
        t = self._peek()
        if t.kind is TokenKind.OP and t.value in ("+", "-", "!", "~", "&", "*"):
            op = self._advance().value
            return UnaryOp(op, self._parse_unary())
        if t.kind is TokenKind.OP and t.value in ("++", "--"):
            op = self._advance().value
            return UnaryOp(op, self._parse_unary())
        if self._at_kw("sizeof"):
            self._advance()
            if self._at_op("(") and self._is_type_ahead(1):
                self._advance()
                _, base = self._parse_type_spec()
                depth = 0
                while self._at_op("*"):
                    self._advance()
                    depth += 1
                self._expect_op(")")
                return UnaryOp("sizeof", Identifier(base + "*" * depth))
            return UnaryOp("sizeof", self._parse_unary())
        # cast: '(' type ')' unary
        if self._at_op("(") and self._is_type_ahead(1):
            mark = self.i
            self._advance()
            try:
                _, base = self._parse_type_spec()
                depth = 0
                while self._at_op("*"):
                    self._advance()
                    depth += 1
                self._expect_op(")")
                return Cast(base + "*" * depth, self._parse_unary())
            except ParseError:
                self.i = mark  # fall through to postfix/primary
        return self._parse_postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        t = self._peek(offset)
        if t.kind is TokenKind.KEYWORD and (t.value in _BASE_TYPE_KEYWORDS or t.value in _QUALIFIERS):
            return True
        return t.kind is TokenKind.IDENT and t.value in self.type_names

    def _parse_postfix(self) -> Node:
        expr = self._parse_primary()
        while True:
            if self._at_op("["):
                self._advance()
                sub = self._parse_expression()
                self._expect_op("]")
                expr = ArrayRef(expr, sub)
            elif self._at_op("("):
                self._advance()
                args: List[Node] = []
                while not self._at_op(")"):
                    args.append(self._parse_assignment_expr())
                    if self._at_op(","):
                        self._advance()
                    else:
                        break
                self._expect_op(")")
                expr = Call(expr, args)
            elif self._at_op("."):
                self._advance()
                expr = StructRef(expr, ".", self._expect_ident().value)
            elif self._at_op("->"):
                self._advance()
                expr = StructRef(expr, "->", self._expect_ident().value)
            elif self._at_op("++"):
                self._advance()
                expr = UnaryOp("p++", expr)
            elif self._at_op("--"):
                self._advance()
                expr = UnaryOp("p--", expr)
            else:
                return expr

    def _parse_primary(self) -> Node:
        t = self._peek()
        if t.kind is TokenKind.OP and t.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        if t.kind is TokenKind.IDENT:
            return Identifier(self._advance().value)
        if t.kind is TokenKind.INT_CONST:
            return Constant("int", self._advance().value)
        if t.kind is TokenKind.FLOAT_CONST:
            return Constant("float", self._advance().value)
        if t.kind is TokenKind.CHAR_CONST:
            return Constant("char", self._advance().value)
        if t.kind is TokenKind.STRING:
            return Constant("string", self._advance().value)
        raise ParseError("expected expression", t)

    # -- entry points ------------------------------------------------------------

    def parse_snippet(self) -> Compound:
        """Parse a fragment: any mix of function defs, declarations, statements."""
        items: List[Node] = []
        while self._peek().kind is not TokenKind.EOF:
            func = self._try_parse_funcdef()
            if func is not None:
                items.append(func)
                continue
            items.append(self.parse_statement())
        return Compound(items)

    def parse_snippet_resilient(self) -> Compound:
        """Like :meth:`parse_snippet`, but never raises on bad input.

        Each unparseable region becomes an :class:`ErrorStmt`; a blown
        wall-clock budget closes the AST with a final ``ErrorStmt`` instead
        of propagating.
        """
        items: List[Node] = []
        while self._peek().kind is not TokenKind.EOF:
            func = self._try_parse_funcdef()
            if func is not None:
                items.append(func)
                continue
            try:
                items.append(self._parse_statement_resilient())
            except ParseBudgetExceeded as exc:
                self._note(str(exc), exc.token, "budget")
                items.append(ErrorStmt(message="parse budget exceeded"))
                break
        return Compound(items)


def parse(source: str, extra_types: Optional[frozenset] = None,
          max_depth: int = DEFAULT_MAX_DEPTH) -> Compound:
    """Parse a C snippet (fragment or full functions) into a Compound.

    ``max_depth`` bounds expression/statement nesting; exceeding it is a
    deterministic :class:`ParseError` (``kind="depth"``), never a
    ``RecursionError``."""
    return Parser(tokenize(source), extra_types=extra_types,
                  max_depth=max_depth).parse_snippet()


def parse_resilient(
    source: str,
    extra_types: Optional[frozenset] = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
    budget_s: Optional[float] = None,
) -> Tuple[Compound, List[Diagnostic]]:
    """Parse dirty input into a partial AST plus diagnostics; never raises.

    The source is lexed in recover mode (malformed regions become ERROR
    tokens, each reported as a ``"lex"`` diagnostic) and parsed with
    panic-mode recovery, so the returned :class:`~repro.clang.nodes.Compound`
    always serializes and tokenizes.  ``budget_s`` bounds wall-clock time:
    past it the partial AST is closed with an ``ErrorStmt`` and a
    ``"budget"`` diagnostic.  An empty diagnostics list means the snippet
    was clean.
    """
    toks = tokenize(source, recover=True)
    deadline = None if budget_s is None else time.monotonic() + budget_s
    parser = Parser(toks, extra_types=extra_types, max_depth=max_depth,
                    resilient=True, deadline=deadline)
    for t in toks:
        if t.kind is TokenKind.ERROR:
            parser.diagnostics.append(Diagnostic(
                f"lexical error near {t.value[:20]!r}", t.line, t.col, "lex"))
    ast = parser.parse_snippet_resilient()
    return ast, parser.diagnostics


def parse_expression(source: str) -> Node:
    """Parse a single C expression."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expression()
    if parser._peek().kind is not TokenKind.EOF:
        raise ParseError("trailing input after expression", parser._peek())
    return expr
