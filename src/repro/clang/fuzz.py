"""Deterministic fuzz harness for the error-recovering frontend.

Four structure-aware mutators — ``truncate``, ``splice``, ``byte_flip``,
``token_delete`` — turn clean corpus snippets into the kinds of dirty input
a public advisor endpoint actually receives: cut-off pastes, two snippets
glued together, encoding damage, and a missing brace/semicolon.  All
randomness flows through an explicit ``random.Random`` seeded by the
caller, so a fuzz run is reproducible bit-for-bit: same corpus + same seed
=> same mutants, which is what lets CI fail on a *specific* regression
instead of a flaky one.

The property under test (see ``tests/test_clang_recovery.py`` and
``scripts/check.sh --fuzz``) is the dirty-input contract of
:func:`repro.clang.parser.parse_resilient`: it never raises, always
terminates within its budget, and always returns an AST that serializes.
:func:`check_snippet` packages that check for reuse by tests and benches.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.clang.lexer import TokenKind, tokenize
from repro.clang.parser import DEFAULT_MAX_DEPTH, parse_resilient
from repro.clang.serialize import ast_to_dfs_text

__all__ = [
    "truncate",
    "splice",
    "byte_flip",
    "token_delete",
    "MUTATORS",
    "mutate",
    "fuzz_corpus",
    "check_snippet",
]


def truncate(code: str, rng: random.Random) -> str:
    """Cut the snippet at a random point — a half-pasted loop."""
    if len(code) < 2:
        return code
    return code[: rng.randrange(1, len(code))]


def splice(code: str, rng: random.Random,
           other: Optional[str] = None) -> str:
    """Glue a random prefix of ``code`` to a random suffix of ``other``.

    With no ``other`` the snippet is spliced against itself, which still
    produces mismatched braces and duplicated headers.
    """
    donor = other if other is not None else code
    if not code or not donor:
        return code + donor
    cut_a = rng.randrange(len(code) + 1)
    cut_b = rng.randrange(len(donor) + 1)
    return code[:cut_a] + donor[cut_b:]


def byte_flip(code: str, rng: random.Random) -> str:
    """Flip 1-4 bits in the UTF-8 encoding — wire/disk corruption.

    The damaged bytes are replace-decoded back to ``str`` because that is
    exactly what the HTTP layer does to undecodable request bodies.
    """
    data = bytearray(code.encode("utf-8", errors="replace"))
    if not data:
        return code
    for _ in range(rng.randint(1, 4)):
        idx = rng.randrange(len(data))
        data[idx] ^= 1 << rng.randrange(8)
    return data.decode("utf-8", errors="replace")


def token_delete(code: str, rng: random.Random) -> str:
    """Drop 1-3 random tokens — a lost brace, semicolon, or operand.

    Lexes in recover mode so already-dirty input can be mutated further;
    the result is re-joined with spaces (pragmas keep their ``#``).
    """
    toks = [t for t in tokenize(code, recover=True)
            if t.kind is not TokenKind.EOF]
    if len(toks) < 2:
        return code
    for _ in range(rng.randint(1, min(3, len(toks) - 1))):
        toks.pop(rng.randrange(len(toks)))
    parts = []
    for t in toks:
        if t.kind is TokenKind.PRAGMA:
            parts.append(f"\n#{t.value}\n")
        else:
            parts.append(t.value)
    return " ".join(parts)


#: name -> mutator, in the order ``mutate`` draws from.
MUTATORS: Dict[str, Callable] = {
    "truncate": truncate,
    "splice": splice,
    "byte_flip": byte_flip,
    "token_delete": token_delete,
}


def mutate(code: str, rng: random.Random,
           corpus: Optional[Sequence[str]] = None) -> str:
    """Apply one randomly chosen mutator; splice draws its donor from
    ``corpus`` when given."""
    name = rng.choice(sorted(MUTATORS))
    if name == "splice":
        donor = rng.choice(list(corpus)) if corpus else None
        return splice(code, rng, donor)
    return MUTATORS[name](code, rng)


def fuzz_corpus(codes: Sequence[str], n: int, seed: int = 0,
                rounds: int = 2) -> List[str]:
    """Generate ``n`` deterministic mutants from seed snippets ``codes``.

    Each mutant is a seed snippet pushed through 1..``rounds`` mutators, so
    the output mixes mildly-dirty and badly-mangled input.  Same ``codes``
    + ``seed`` always yields the same list.
    """
    if not codes:
        raise ValueError("fuzz_corpus needs at least one seed snippet")
    rng = random.Random(seed)
    mutants: List[str] = []
    for _ in range(n):
        current = codes[rng.randrange(len(codes))]
        for _ in range(rng.randint(1, rounds)):
            current = mutate(current, rng, corpus=codes)
        mutants.append(current)
    return mutants


def check_snippet(code: str, max_depth: int = DEFAULT_MAX_DEPTH,
                  budget_s: float = 2.0) -> Dict[str, float]:
    """Assert the dirty-input contract on one snippet; returns evidence.

    Calls :func:`repro.clang.parser.parse_resilient` and serializes the
    result.  Any exception escaping this function is a frontend bug by
    definition — dirty input must surface as diagnostics, never raises.
    The returned dict carries ``diagnostics``, ``dfs_tokens`` (the partial
    AST still produced model input) and ``elapsed_s`` for budget checks.
    """
    start = time.monotonic()
    ast, diags = parse_resilient(code, max_depth=max_depth,
                                 budget_s=budget_s)
    dfs = ast_to_dfs_text(ast)
    return {
        "diagnostics": len(diags),
        "dfs_tokens": len(dfs.split()) if dfs else 0,
        "elapsed_s": time.monotonic() - start,
    }
