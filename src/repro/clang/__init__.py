"""C language substrate: lexer, recursive-descent parser, AST, OpenMP pragmas.

This package plays the role pycparser plays in the paper: it turns C loop
snippets into token streams and abstract syntax trees, serializes ASTs into
the paper's DFS textual form (Tables 2 and 6), and parses/unparses
``#pragma omp`` directives into a structured clause model.
"""

from repro.clang.lexer import Lexer, LexError, Token, TokenKind, tokenize
from repro.clang.nodes import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Break,
    Call,
    Cast,
    Compound,
    Constant,
    Continue,
    Decl,
    DoWhile,
    ErrorStmt,
    ExprStmt,
    For,
    FuncDef,
    Identifier,
    If,
    Node,
    Return,
    StructRef,
    TernaryOp,
    UnaryOp,
    While,
    walk,
)
from repro.clang.parser import (
    DEFAULT_MAX_DEPTH,
    Diagnostic,
    ParseBudgetExceeded,
    ParseError,
    Parser,
    parse,
    parse_expression,
    parse_resilient,
)
from repro.clang.pragma import Clause, OmpDirective, PragmaError, parse_pragma
from repro.clang.serialize import ast_to_dfs_text, unparse

__all__ = [
    "Lexer",
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "Node",
    "Identifier",
    "Constant",
    "BinaryOp",
    "UnaryOp",
    "TernaryOp",
    "Assignment",
    "ArrayRef",
    "StructRef",
    "Call",
    "Cast",
    "Decl",
    "Compound",
    "For",
    "While",
    "DoWhile",
    "If",
    "Return",
    "Break",
    "Continue",
    "ErrorStmt",
    "ExprStmt",
    "FuncDef",
    "walk",
    "Parser",
    "ParseError",
    "ParseBudgetExceeded",
    "Diagnostic",
    "DEFAULT_MAX_DEPTH",
    "parse",
    "parse_expression",
    "parse_resilient",
    "OmpDirective",
    "Clause",
    "PragmaError",
    "parse_pragma",
    "ast_to_dfs_text",
    "unparse",
]
