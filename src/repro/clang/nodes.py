"""AST node types for the C subset.

Node shapes and the labels used by :mod:`repro.clang.serialize` deliberately
mirror pycparser's (``For:``, ``Assignment: =``, ``ID: i``, ``Constant: int,
0``, ``UnaryOp: p++`` ...) because the paper's AST representation (Tables 2
and 6) is a DFS print of pycparser trees — matching the shapes keeps our
AST / R-AST model inputs faithful to the original.

All nodes are plain dataclasses; child order in :meth:`Node.children` defines
the DFS order used everywhere (serialization, identifier replacement,
dependence analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "Node",
    "Identifier",
    "Constant",
    "BinaryOp",
    "UnaryOp",
    "TernaryOp",
    "Assignment",
    "ArrayRef",
    "StructRef",
    "Call",
    "Cast",
    "Decl",
    "DeclList",
    "ExprList",
    "Compound",
    "For",
    "While",
    "DoWhile",
    "If",
    "Switch",
    "Case",
    "Default",
    "Return",
    "Break",
    "Continue",
    "Goto",
    "Label",
    "ExprStmt",
    "EmptyStmt",
    "ErrorStmt",
    "FuncDef",
    "Pragma",
    "walk",
]


@dataclass
class Node:
    """Base class for all AST nodes."""

    def children(self) -> Tuple["Node", ...]:
        """Ordered child nodes (DFS order)."""
        return ()

    def label(self) -> str:
        """The pycparser-style label used in the DFS textual serialization."""
        return type(self).__name__ + ":"


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Identifier(Node):
    """A variable or function name.  Serialized as ``ID: name``."""

    name: str

    def label(self) -> str:
        return f"ID: {self.name}"


@dataclass
class Constant(Node):
    """A literal.  ``ctype`` is 'int', 'float', 'char' or 'string'."""

    ctype: str
    value: str

    def label(self) -> str:
        return f"Constant: {self.ctype}, {self.value}"


@dataclass
class BinaryOp(Node):
    op: str
    left: Node
    right: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"BinaryOp: {self.op}"


@dataclass
class UnaryOp(Node):
    """``op`` follows pycparser: 'p++'/'p--' are postfix, '++'/'--' prefix."""

    op: str
    expr: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)

    def label(self) -> str:
        return f"UnaryOp: {self.op}"


@dataclass
class TernaryOp(Node):
    cond: Node
    iftrue: Node
    iffalse: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.iftrue, self.iffalse)

    def label(self) -> str:
        return "TernaryOp:"


@dataclass
class Assignment(Node):
    """Covers '=', '+=', '-=', etc."""

    op: str
    lvalue: Node
    rvalue: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.lvalue, self.rvalue)

    def label(self) -> str:
        return f"Assignment: {self.op}"


@dataclass
class ArrayRef(Node):
    array: Node
    subscript: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.array, self.subscript)

    def label(self) -> str:
        return "ArrayRef:"


@dataclass
class StructRef(Node):
    """``a.b`` (op='.') or ``a->b`` (op='->')."""

    obj: Node
    op: str
    field_name: str

    def children(self) -> Tuple[Node, ...]:
        return (self.obj,)

    def label(self) -> str:
        return f"StructRef: {self.op} {self.field_name}"


@dataclass
class Call(Node):
    func: Node
    args: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return (self.func, ExprList(list(self.args)))

    def label(self) -> str:
        return "FuncCall:"


@dataclass
class ExprList(Node):
    """Argument lists and comma expressions."""

    exprs: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.exprs)

    def label(self) -> str:
        return "ExprList:"


@dataclass
class Cast(Node):
    to_type: str
    expr: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)

    def label(self) -> str:
        return f"Cast: {self.to_type}"


# --------------------------------------------------------------------------
# Declarations and statements
# --------------------------------------------------------------------------


@dataclass
class Decl(Node):
    """A single declarator: ``int x = 0;`` / ``double a[N];``.

    ``quals`` holds 'const', 'static', 'register', ... ``array_dims`` holds
    one expression (or None for ``[]``) per dimension; ``ptr_depth`` counts
    leading ``*``.
    """

    name: str
    base_type: str
    quals: List[str] = field(default_factory=list)
    ptr_depth: int = 0
    array_dims: List[Optional[Node]] = field(default_factory=list)
    init: Optional[Node] = None

    def children(self) -> Tuple[Node, ...]:
        kids: List[Node] = [d for d in self.array_dims if d is not None]
        if self.init is not None:
            kids.append(self.init)
        return tuple(kids)

    def label(self) -> str:
        prefix = " ".join(self.quals + [self.base_type]) + "*" * self.ptr_depth
        return f"Decl: {prefix} {self.name}"


@dataclass
class DeclList(Node):
    """Multiple declarators in one statement: ``int i, j;``."""

    decls: List[Decl] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.decls)

    def label(self) -> str:
        return "DeclList:"


@dataclass
class Compound(Node):
    stmts: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.stmts)

    def label(self) -> str:
        return "Compound:"


@dataclass
class For(Node):
    init: Optional[Node]
    cond: Optional[Node]
    nxt: Optional[Node]
    body: Node
    pragma: Optional["Pragma"] = None

    def children(self) -> Tuple[Node, ...]:
        return tuple(c for c in (self.init, self.cond, self.nxt, self.body) if c is not None)

    def label(self) -> str:
        return "For:"


@dataclass
class While(Node):
    cond: Node
    body: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.body)

    def label(self) -> str:
        return "While:"


@dataclass
class DoWhile(Node):
    body: Node
    cond: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.body, self.cond)

    def label(self) -> str:
        return "DoWhile:"


@dataclass
class If(Node):
    cond: Node
    iftrue: Node
    iffalse: Optional[Node] = None

    def children(self) -> Tuple[Node, ...]:
        kids: List[Node] = [self.cond, self.iftrue]
        if self.iffalse is not None:
            kids.append(self.iffalse)
        return tuple(kids)

    def label(self) -> str:
        return "If:"


@dataclass
class Switch(Node):
    cond: Node
    body: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.body)

    def label(self) -> str:
        return "Switch:"


@dataclass
class Case(Node):
    expr: Node
    stmts: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,) + tuple(self.stmts)

    def label(self) -> str:
        return "Case:"


@dataclass
class Default(Node):
    stmts: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.stmts)

    def label(self) -> str:
        return "Default:"


@dataclass
class Return(Node):
    expr: Optional[Node] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,) if self.expr is not None else ()

    def label(self) -> str:
        return "Return:"


@dataclass
class Break(Node):
    def label(self) -> str:
        return "Break:"


@dataclass
class Continue(Node):
    def label(self) -> str:
        return "Continue:"


@dataclass
class Goto(Node):
    target: str

    def label(self) -> str:
        return f"Goto: {self.target}"


@dataclass
class Label(Node):
    name: str
    stmt: Optional[Node] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.stmt,) if self.stmt is not None else ()

    def label(self) -> str:
        return f"Label: {self.name}"


@dataclass
class ExprStmt(Node):
    """An expression used as a statement (``f(x);`` / ``i++;``)."""

    expr: Node

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)

    def label(self) -> str:
        # pycparser prints the expression node directly; we keep a thin label
        # out of the DFS text by delegating to the child in serialize.py.
        return "ExprStmt:"


@dataclass
class EmptyStmt(Node):
    def label(self) -> str:
        return "EmptyStatement:"


@dataclass
class ErrorStmt(Node):
    """A region the resilient parser could not parse (recovery mode only).

    ``message`` is the first diagnostic that triggered recovery; ``skipped``
    is the source text of the tokens consumed while resynchronising.  The
    node is a leaf so partial ASTs still serialize and tokenize — the DFS
    text shows a single ``ErrorStmt:`` label where the broken region was.
    """

    message: str = ""
    skipped: str = ""

    def label(self) -> str:
        return "ErrorStmt:"


@dataclass
class FuncDef(Node):
    name: str
    ret_type: str
    params: List[Decl] = field(default_factory=list)
    body: Compound = field(default_factory=Compound)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.params) + (self.body,)

    def label(self) -> str:
        return f"FuncDef: {self.ret_type} {self.name}"


@dataclass
class Pragma(Node):
    """A raw pragma attached to the statement that follows it."""

    text: str

    def label(self) -> str:
        return f"Pragma: {self.text}"


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants in DFS (pre-order)."""
    stack: List[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))
