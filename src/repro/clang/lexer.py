"""A C tokenizer sufficient for the loop snippets in the Open-OMP corpus.

The lexer recognises the full C operator set, keywords, identifiers, integer /
floating / character / string literals, comments (dropped), and preprocessor
lines.  ``#pragma`` lines are emitted as single :class:`Token` objects with
kind :data:`TokenKind.PRAGMA` so that downstream passes (corpus extraction,
the S2S compilers) can associate directives with the loop that follows them;
all other preprocessor lines are dropped, matching how the paper's pipeline
treats headers.

Tokens carry line/column information for error reporting and for the
"snippet length in lines" statistics of Table 4.

Two scanning modes share one code path.  In strict mode (the default)
malformed input — an unterminated string/character literal or comment, a
stray byte — raises :class:`LexError`, which is what the corpus pipeline
wants: a snippet that does not lex is not corpus material.  In *recover*
mode (``Lexer(source, recover=True)`` / ``tokenize(..., recover=True)``)
the same malformations are emitted as :data:`TokenKind.ERROR` tokens
carrying the offending text, and scanning continues at the next byte, so
the serving path can still hand *something* to the model for dirty
real-world input.  Recovery never loses progress: every ERROR token
consumes at least one character, so a recover-mode scan always
terminates in O(len(source)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["TokenKind", "Token", "LexError", "Lexer", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical classes produced by the lexer."""

    KEYWORD = "keyword"
    IDENT = "ident"
    INT_CONST = "int_const"
    FLOAT_CONST = "float_const"
    CHAR_CONST = "char_const"
    STRING = "string"
    OP = "op"
    PRAGMA = "pragma"
    EOF = "eof"
    #: recover-mode only: a malformed region (unterminated literal/comment,
    #: stray byte); ``value`` is the offending source text
    ERROR = "error"


#: C99 keywords plus the common POSIX/benchmark typedefs the SPEC-like suite
#: uses.  Typedef-like names are *not* keywords here — the parser treats any
#: identifier followed by a declarator as a type when it appears in
#: ``TYPE_NAMES`` — but true keywords must never be parsed as identifiers.
KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the exact source text (for PRAGMA tokens, the pragma line
    without the leading ``#`` and trailing newline).
    """

    kind: TokenKind
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.col})"


class LexError(ValueError):
    """Raised on malformed input (unterminated literal, stray byte, ...)."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at {line}:{col}")
        self.line = line
        self.col = col


class Lexer:
    """Single-pass scanner over a source string.

    ``recover=True`` switches malformed-input handling from raising
    :class:`LexError` to emitting :data:`TokenKind.ERROR` tokens (see the
    module docstring for the exact semantics).
    """

    def __init__(self, source: str, recover: bool = False) -> None:
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.recover = recover

    # -- low-level cursor helpers ------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.src[idx] if idx < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.src[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF (an EOF token is always the last yield)."""
        while True:
            err = self._skip_ws_and_comments()
            if err is not None:  # recover mode: unterminated comment
                yield err
            if self.pos >= len(self.src):
                yield Token(TokenKind.EOF, "", self.line, self.col)
                return
            start_line, start_col = self.line, self.col
            ch = self._peek()
            if ch == "#":
                tok = self._lex_preprocessor(start_line, start_col)
                if tok is not None:
                    yield tok
                continue
            if ch.isalpha() or ch == "_":
                yield self._lex_word(start_line, start_col)
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._lex_number(start_line, start_col)
            elif ch == '"':
                yield self._lex_string(start_line, start_col)
            elif ch == "'":
                yield self._lex_char(start_line, start_col)
            else:
                yield self._lex_operator(start_line, start_col)

    def _skip_ws_and_comments(self) -> Optional[Token]:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.src):
                    if self.recover:
                        return Token(TokenKind.ERROR, "/*",
                                     start_line, start_col)
                    raise LexError("unterminated comment", self.line, self.col)
                self._advance(2)
            else:
                return None
        return None

    def _lex_preprocessor(self, line: int, col: int) -> Optional[Token]:
        # Consume up to end of line, honouring backslash continuations.
        chars: List[str] = []
        self._advance()  # '#'
        while self.pos < len(self.src):
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                chars.append(" ")
                continue
            if self._peek() == "\n":
                break
            chars.append(self._advance())
        text = "".join(chars).strip()
        if text.startswith("pragma"):
            return Token(TokenKind.PRAGMA, text, line, col)
        return None  # includes, defines, etc. are dropped

    def _lex_word(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self.src[start : self.pos]
        kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
        return Token(kind, word, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." :
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # integer/float suffixes
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        text = self.src[start : self.pos]
        kind = TokenKind.FLOAT_CONST if is_float else TokenKind.INT_CONST
        return Token(kind, text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.src) and self._peek() != '"':
            if self.recover and self._peek() == "\n":
                # unterminated at end of line: don't swallow the rest of
                # the file — recover at the next line
                return Token(TokenKind.ERROR, self.src[start:self.pos],
                             line, col)
            if self._peek() == "\\":
                self._advance()
            if self.pos >= len(self.src):
                break
            self._advance()
        if self.pos >= len(self.src):
            if self.recover:
                return Token(TokenKind.ERROR, self.src[start:self.pos],
                             line, col)
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        return Token(TokenKind.STRING, self.src[start : self.pos], line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.src) and self._peek() != "'":
            if self.recover and self._peek() == "\n":
                return Token(TokenKind.ERROR, self.src[start:self.pos],
                             line, col)
            if self._peek() == "\\":
                self._advance()
            if self.pos >= len(self.src):
                break
            self._advance()
        if self.pos >= len(self.src):
            if self.recover:
                return Token(TokenKind.ERROR, self.src[start:self.pos],
                             line, col)
            raise LexError("unterminated character literal", line, col)
        self._advance()
        return Token(TokenKind.CHAR_CONST, self.src[start : self.pos], line, col)

    def _lex_operator(self, line: int, col: int) -> Token:
        for op in _OPERATORS:
            if self.src.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        if self.recover:
            return Token(TokenKind.ERROR, self._advance(), line, col)
        raise LexError(f"unexpected character {self._peek()!r}", line, col)


def tokenize(source: str, keep_pragmas: bool = True,
             recover: bool = False) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token.

    ``keep_pragmas=False`` drops PRAGMA tokens, which is what the model-input
    pipeline wants (the directive is the *label*, never a feature).
    ``recover=True`` emits :data:`TokenKind.ERROR` tokens for malformed
    regions instead of raising :class:`LexError` (serving-path mode).
    """
    toks = list(Lexer(source, recover=recover).tokens())
    if not keep_pragmas:
        toks = [t for t in toks if t.kind is not TokenKind.PRAGMA]
    return toks
