"""AST serialization: the paper's DFS textual form, and an unparser.

``ast_to_dfs_text`` produces the flat token sequence used as the *AST* and
*Replaced-AST* model representations (Table 6): a pre-order walk where each
node contributes its pycparser-style label, e.g. ::

    For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len ...

``unparse`` regenerates compilable C text from an AST; the corpus builder
uses it to normalize snippets before deduplication, and the parser/unparser
round-trip is property-tested.
"""

from __future__ import annotations

from typing import List

from repro.clang.nodes import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Break,
    Call,
    Case,
    Cast,
    Compound,
    Constant,
    Continue,
    Decl,
    DeclList,
    Default,
    DoWhile,
    EmptyStmt,
    ErrorStmt,
    ExprList,
    ExprStmt,
    For,
    FuncDef,
    Goto,
    Identifier,
    If,
    Label,
    Node,
    Pragma,
    Return,
    StructRef,
    Switch,
    TernaryOp,
    UnaryOp,
    While,
)

__all__ = ["ast_to_dfs_text", "unparse"]


def ast_to_dfs_text(node: Node) -> str:
    """Flatten ``node`` to the DFS label sequence of Tables 2/6.

    ``ExprStmt`` wrappers are transparent (pycparser has no such node),
    pragmas are skipped — directives are labels, never features — and a
    top-level Compound is treated as the snippet itself, not a block.
    """
    parts: List[str] = []
    if isinstance(node, Compound):
        for child in node.children():
            _dfs(child, parts)
    else:
        _dfs(node, parts)
    return " ".join(parts)


def _dfs(node: Node, out: List[str]) -> None:
    if isinstance(node, Pragma):
        return
    if isinstance(node, ExprStmt):
        _dfs(node.expr, out)
        return
    out.append(node.label())
    for child in node.children():
        _dfs(child, out)


# ---------------------------------------------------------------------------
# Unparser
# ---------------------------------------------------------------------------

_INDENT = "  "


def unparse(node: Node, indent: int = 0) -> str:
    """Regenerate C source text from an AST node.

    A top-level :class:`Compound` is treated as a snippet (statement list),
    not a braced block, so ``unparse(parse(x))`` is a fixed point under
    re-parsing.
    """
    if indent == 0 and isinstance(node, Compound):
        return "".join(_stmt(s, 0) for s in node.stmts).rstrip("\n")
    return _stmt(node, indent).rstrip("\n")


def _expr(node: Node) -> str:
    if isinstance(node, Identifier):
        return node.name
    if isinstance(node, Constant):
        return node.value
    if isinstance(node, BinaryOp):
        return f"({_expr(node.left)} {node.op} {_expr(node.right)})"
    if isinstance(node, UnaryOp):
        if node.op == "p++":
            return f"{_expr(node.expr)}++"
        if node.op == "p--":
            return f"{_expr(node.expr)}--"
        if node.op == "sizeof":
            return f"sizeof({_expr(node.expr)})"
        return f"{node.op}{_expr(node.expr)}"
    if isinstance(node, TernaryOp):
        return f"({_expr(node.cond)} ? {_expr(node.iftrue)} : {_expr(node.iffalse)})"
    if isinstance(node, Assignment):
        return f"{_expr(node.lvalue)} {node.op} {_expr(node.rvalue)}"
    if isinstance(node, ArrayRef):
        return f"{_expr(node.array)}[{_expr(node.subscript)}]"
    if isinstance(node, StructRef):
        return f"{_expr(node.obj)}{node.op}{node.field_name}"
    if isinstance(node, Call):
        args = ", ".join(_expr(a) for a in node.args)
        return f"{_expr(node.func)}({args})"
    if isinstance(node, Cast):
        return f"(({node.to_type}) {_expr(node.expr)})"
    if isinstance(node, ExprList):
        return ", ".join(_expr(e) for e in node.exprs)
    raise TypeError(f"cannot unparse {type(node).__name__} as an expression")


def _expr_top(node: Node) -> str:
    """Like :func:`_expr` but without redundant outer parentheses — used for
    condition positions so round-tripped code matches the paper's examples
    token-for-token."""
    if isinstance(node, BinaryOp):
        return f"{_expr(node.left)} {node.op} {_expr(node.right)}"
    if isinstance(node, TernaryOp):
        return f"{_expr(node.cond)} ? {_expr(node.iftrue)} : {_expr(node.iffalse)}"
    return _expr(node)


def _decl_text(decl: Decl) -> str:
    prefix = " ".join(decl.quals + [decl.base_type])
    stars = "*" * decl.ptr_depth
    dims = "".join(f"[{_expr(d)}]" if d is not None else "[]" for d in decl.array_dims)
    text = f"{prefix} {stars}{decl.name}{dims}"
    if decl.init is not None:
        if isinstance(decl.init, ExprList):
            inner = ", ".join(_expr(e) for e in decl.init.exprs)
            text += f" = {{{inner}}}"
        else:
            text += f" = {_expr(decl.init)}"
    return text


def _stmt(node: Node, indent: int) -> str:
    pad = _INDENT * indent
    if isinstance(node, Compound):
        inner = "".join(_stmt(s, indent + 1) for s in node.stmts)
        return f"{pad}{{\n{inner}{pad}}}\n"
    if isinstance(node, Pragma):
        return f"{pad}#{node.text}\n"
    if isinstance(node, Decl):
        return f"{pad}{_decl_text(node)};\n"
    if isinstance(node, DeclList):
        first = node.decls[0]
        prefix = " ".join(first.quals + [first.base_type])
        parts = []
        for d in node.decls:
            stars = "*" * d.ptr_depth
            dims = "".join(f"[{_expr(x)}]" if x is not None else "[]" for x in d.array_dims)
            p = f"{stars}{d.name}{dims}"
            if d.init is not None:
                p += f" = {_expr(d.init)}"
            parts.append(p)
        return f"{pad}{prefix} {', '.join(parts)};\n"
    if isinstance(node, For):
        init = ""
        if isinstance(node.init, (Decl, DeclList)):
            init = _stmt(node.init, 0).strip().rstrip(";")
        elif isinstance(node.init, ExprStmt):
            init = _expr(node.init.expr)
        elif node.init is not None:
            init = _expr(node.init)
        cond = _expr_top(node.cond) if node.cond is not None else ""
        nxt = _expr(node.nxt) if node.nxt is not None else ""
        header = f"{pad}for ({init}; {cond}; {nxt})\n"
        pragma = f"{pad}#{node.pragma.text}\n" if node.pragma is not None else ""
        return pragma + header + _stmt_as_body(node.body, indent)
    if isinstance(node, While):
        return f"{pad}while ({_expr_top(node.cond)})\n" + _stmt_as_body(node.body, indent)
    if isinstance(node, DoWhile):
        return f"{pad}do\n" + _stmt_as_body(node.body, indent) + f"{pad}while ({_expr_top(node.cond)});\n"
    if isinstance(node, If):
        text = f"{pad}if ({_expr_top(node.cond)})\n" + _stmt_as_body(node.iftrue, indent)
        if node.iffalse is not None:
            text += f"{pad}else\n" + _stmt_as_body(node.iffalse, indent)
        return text
    if isinstance(node, Switch):
        inner = "".join(_stmt(s, indent + 1) for s in node.body.stmts)
        return f"{pad}switch ({_expr_top(node.cond)}) {{\n{inner}{pad}}}\n"
    if isinstance(node, Case):
        body = "".join(_stmt(s, indent + 1) for s in node.stmts)
        return f"{pad}case {_expr(node.expr)}:\n{body}"
    if isinstance(node, Default):
        body = "".join(_stmt(s, indent + 1) for s in node.stmts)
        return f"{pad}default:\n{body}"
    if isinstance(node, Return):
        if node.expr is None:
            return f"{pad}return;\n"
        return f"{pad}return {_expr(node.expr)};\n"
    if isinstance(node, Break):
        return f"{pad}break;\n"
    if isinstance(node, Continue):
        return f"{pad}continue;\n"
    if isinstance(node, Goto):
        return f"{pad}goto {node.target};\n"
    if isinstance(node, Label):
        inner = _stmt(node.stmt, indent) if node.stmt is not None else ""
        return f"{pad}{node.name}:\n{inner}"
    if isinstance(node, ExprStmt):
        return f"{pad}{_expr(node.expr)};\n"
    if isinstance(node, EmptyStmt):
        return f"{pad};\n"
    if isinstance(node, ErrorStmt):
        # the broken region is already lost; unparse to a harmless no-op so
        # partial ASTs from parse_resilient still round-trip through _stmt
        return f"{pad};\n"
    if isinstance(node, FuncDef):
        params = ", ".join(_decl_text(p) for p in node.params)
        body = _stmt(node.body, indent)
        return f"{pad}{node.ret_type} {node.name}({params})\n{body}"
    # expression used in statement position (e.g. For.nxt round-trips)
    return f"{pad}{_expr(node)};\n"


def _stmt_as_body(node: Node, indent: int) -> str:
    """Render a loop/if body, indenting single statements one level."""
    if isinstance(node, Compound):
        return _stmt(node, indent)
    return _stmt(node, indent + 1)
