"""Structured model of OpenMP directives.

Parses ``#pragma omp ...`` text into an :class:`OmpDirective` with typed
clauses (``private``, ``firstprivate``, ``lastprivate``, ``shared``,
``reduction``, ``schedule``, ``num_threads``, ``collapse``, ``nowait``), and
unparses back to canonical text.  This is the label schema of the corpus:
Table 3's statistics and both classification tasks (RQ1/RQ2) are defined in
terms of these fields.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Clause", "OmpDirective", "PragmaError", "parse_pragma"]

#: Reduction operators accepted by OpenMP (C/C++ subset).
REDUCTION_OPS = frozenset(["+", "-", "*", "&", "|", "^", "&&", "||", "min", "max"])

_SCHEDULE_KINDS = frozenset(["static", "dynamic", "guided", "auto", "runtime"])


class PragmaError(ValueError):
    """Raised on malformed OpenMP pragma text."""


@dataclass(frozen=True)
class Clause:
    """A single OpenMP clause.

    ``name`` is the clause keyword; ``args`` is the raw comma-split argument
    list (empty for argument-less clauses such as ``nowait``).
    """

    name: str
    args: Tuple[str, ...] = ()

    def unparse(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(self.args)})"


@dataclass
class OmpDirective:
    """A parsed ``#pragma omp`` directive.

    Only loop-directives (``parallel for`` / ``for``) carry labels in the
    corpus, matching the paper's exclusion criteria (§3.1.2).
    """

    construct: str  # e.g. "parallel for", "parallel", "for", "critical", "task"
    clauses: List[Clause] = field(default_factory=list)

    # -- label accessors used by the datasets --------------------------------

    @property
    def is_parallel_for(self) -> bool:
        return self.construct in ("parallel for", "for")

    @property
    def private_vars(self) -> Tuple[str, ...]:
        return self._clause_args("private")

    @property
    def reduction_specs(self) -> Tuple[Tuple[str, str], ...]:
        """Tuples of (operator, variable) across all reduction clauses."""
        specs: List[Tuple[str, str]] = []
        for cl in self.clauses:
            if cl.name != "reduction":
                continue
            for arg in cl.args:
                if ":" not in arg:
                    raise PragmaError(f"malformed reduction argument {arg!r}")
                op, var = arg.split(":", 1)
                specs.append((op.strip(), var.strip()))
        return tuple(specs)

    @property
    def has_private(self) -> bool:
        return len(self.private_vars) > 0

    @property
    def has_reduction(self) -> bool:
        return len(self.reduction_specs) > 0

    @property
    def schedule(self) -> Optional[Tuple[str, Optional[int]]]:
        """(kind, chunk) of the schedule clause, or None."""
        for cl in self.clauses:
            if cl.name == "schedule" and cl.args:
                parts = [p.strip() for p in ",".join(cl.args).split(",")]
                kind = parts[0]
                chunk = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else None
                return kind, chunk
        return None

    @property
    def has_nowait(self) -> bool:
        return any(cl.name == "nowait" for cl in self.clauses)

    def _clause_args(self, name: str) -> Tuple[str, ...]:
        out: List[str] = []
        for cl in self.clauses:
            if cl.name == name:
                out.extend(a.strip() for a in cl.args)
        return tuple(out)

    def unparse(self) -> str:
        parts = [f"#pragma omp {self.construct}"]
        parts.extend(cl.unparse() for cl in self.clauses)
        return " ".join(parts)


_CONSTRUCTS = [
    # longest first for maximal munch
    "parallel for",
    "parallel sections",
    "parallel",
    "for",
    "sections",
    "section",
    "single",
    "master",
    "critical",
    "barrier",
    "atomic",
    "task",
    "taskwait",
    "simd",
    "threadprivate",
]

_CLAUSE_RE = re.compile(r"([a-z_]+)\s*(?:\(([^()]*)\))?", re.IGNORECASE)


def parse_pragma(text: str) -> OmpDirective:
    """Parse pragma text (with or without the leading ``#pragma``).

    Raises :class:`PragmaError` for non-OpenMP pragmas or unknown constructs.
    """
    body = text.strip()
    body = re.sub(r"^#\s*", "", body)
    body = re.sub(r"^pragma\s+", "", body)
    if not body.startswith("omp"):
        raise PragmaError(f"not an OpenMP pragma: {text!r}")
    body = body[len("omp"):].strip()

    construct = None
    for cand in _CONSTRUCTS:
        if body == cand or body.startswith(cand + " ") or body.startswith(cand + "("):
            construct = cand
            body = body[len(cand):].strip()
            break
    if construct is None:
        raise PragmaError(f"unknown OpenMP construct in {text!r}")

    clauses: List[Clause] = []
    pos = 0
    while pos < len(body):
        match = _CLAUSE_RE.match(body, pos)
        if match is None:
            if body[pos] in " ,\t":
                pos += 1
                continue
            raise PragmaError(f"cannot parse clause at {body[pos:]!r}")
        name = match.group(1).lower()
        raw_args = match.group(2)
        if raw_args is None:
            clauses.append(Clause(name))
        elif name == "reduction":
            # reduction(+ : a, b) expands to one arg per variable
            if ":" not in raw_args:
                raise PragmaError(f"malformed reduction clause {raw_args!r}")
            op, vars_part = raw_args.split(":", 1)
            op = op.strip()
            if op not in REDUCTION_OPS:
                raise PragmaError(f"unknown reduction operator {op!r}")
            args = tuple(f"{op}:{v.strip()}" for v in vars_part.split(",") if v.strip())
            clauses.append(Clause(name, args))
        elif name == "schedule":
            kind = raw_args.split(",")[0].strip()
            if kind not in _SCHEDULE_KINDS:
                raise PragmaError(f"unknown schedule kind {kind!r}")
            clauses.append(Clause(name, tuple(p.strip() for p in raw_args.split(","))))
        else:
            args = tuple(a.strip() for a in raw_args.split(",") if a.strip())
            clauses.append(Clause(name, args))
        pos = match.end()
    return OmpDirective(construct=construct, clauses=clauses)
