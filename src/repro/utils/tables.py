"""Minimal fixed-width text-table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them legibly without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    floatfmt: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
