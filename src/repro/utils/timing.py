"""Lightweight wall-clock timing, usable as a context manager.

Per the optimization workflow ("no optimization without measuring"), training
loops record per-epoch wall times through this class so regressions in the
NumPy hot paths are visible in experiment logs.
"""

from __future__ import annotations

import time
from typing import List, Optional


class Timer:
    """Accumulating timer.  ``with Timer() as t: ...; t.elapsed``."""

    def __init__(self) -> None:
        self.laps: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self._start = None
        return lap

    @property
    def elapsed(self) -> float:
        """Total accumulated time across laps."""
        return sum(self.laps)
