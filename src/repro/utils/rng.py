"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiment functions reproducible bit-for-bit and avoids the global
``numpy.random`` state entirely.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fixed default seed (0) rather than entropy from the OS:
    the library's contract is that *unseeded means deterministic*, which is
    what a reproduction harness wants.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(rng))


def spawn_rngs(rng: RngLike, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the SeedSequence spawning protocol so children are statistically
    independent regardless of how many draws the parent has made.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
