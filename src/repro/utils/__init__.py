"""Shared utilities: deterministic RNG handling, timing, and text tables."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timing import Timer

__all__ = ["ensure_rng", "spawn_rngs", "format_table", "Timer"]
