"""Evaluation: classification metrics (Tables 8–11) and the error-by-length
analysis (Figure 7)."""

from repro.eval.error_analysis import FIG7_BINS, error_rate_by_length
from repro.eval.metrics import BinaryMetrics, binary_metrics, confusion_matrix

__all__ = [
    "FIG7_BINS",
    "error_rate_by_length",
    "BinaryMetrics",
    "binary_metrics",
    "confusion_matrix",
]
