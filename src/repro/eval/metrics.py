"""Classification metrics: precision, recall, F1, accuracy (§5.2).

These are the columns of Tables 8–11.  Positive class is 1 ("directive /
clause needed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["BinaryMetrics", "binary_metrics", "confusion_matrix"]


@dataclass(frozen=True)
class BinaryMetrics:
    precision: float
    recall: float
    f1: float
    accuracy: float
    tp: int
    fp: int
    fn: int
    tn: int

    def as_row(self) -> tuple:
        """(precision, recall, f1, accuracy) — one table row."""
        return (self.precision, self.recall, self.f1, self.accuracy)

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }


def confusion_matrix(preds: np.ndarray, labels: np.ndarray):
    """(tp, fp, fn, tn) counts."""
    preds = np.asarray(preds)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {labels.shape}")
    tp = int(((preds == 1) & (labels == 1)).sum())
    fp = int(((preds == 1) & (labels == 0)).sum())
    fn = int(((preds == 0) & (labels == 1)).sum())
    tn = int(((preds == 0) & (labels == 0)).sum())
    return tp, fp, fn, tn


def binary_metrics(preds: np.ndarray, labels: np.ndarray) -> BinaryMetrics:
    """Precision/recall/F1/accuracy with zero-division-safe conventions."""
    tp, fp, fn, tn = confusion_matrix(preds, labels)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    accuracy = (tp + tn) / max(1, len(np.asarray(preds)))
    return BinaryMetrics(precision, recall, f1, accuracy, tp, fp, fn, tn)
