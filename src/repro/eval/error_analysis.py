"""Error analyses: prediction error rate by snippet length (Figure 7)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["error_rate_by_length", "FIG7_BINS"]

#: Figure 7's x-axis groups snippet line counts into coarse bins.
FIG7_BINS: Sequence[Tuple[int, int]] = ((0, 10), (11, 20), (21, 50), (51, 10**9))
FIG7_LABELS = ("<=10", "11-20", "21-50", ">50")


def error_rate_by_length(
    line_counts: Sequence[int],
    preds: np.ndarray,
    labels: np.ndarray,
    bins: Sequence[Tuple[int, int]] = FIG7_BINS,
    labels_for_bins: Sequence[str] = FIG7_LABELS,
) -> Dict[str, Dict[str, float]]:
    """Per-length-bin error statistics.

    Returns {bin label: {n, errors, error_rate, share_of_errors}} —
    ``share_of_errors`` is the fraction of *all* errors falling in the bin
    (the paper: '>80 % of incorrect predictions occurred for code with a
    length lower than 20')."""
    preds = np.asarray(preds)
    labels = np.asarray(labels)
    wrong = preds != labels
    total_errors = max(1, int(wrong.sum()))
    out: Dict[str, Dict[str, float]] = {}
    counts = np.asarray(line_counts)
    for (lo, hi), label in zip(bins, labels_for_bins):
        in_bin = (counts >= lo) & (counts <= hi)
        n = int(in_bin.sum())
        errors = int((wrong & in_bin).sum())
        out[label] = {
            "n": n,
            "errors": errors,
            "error_rate": errors / n if n else 0.0,
            "share_of_errors": errors / total_errors,
        }
    return out
