"""Explainability: LIME-style token importance (§5.4, Figure 8) and
attention-mass introspection."""

from repro.explain.attention import attention_by_token_class, cls_attention
from repro.explain.lime import Explanation, LimeExplainer

__all__ = ["Explanation", "LimeExplainer", "attention_by_token_class", "cls_attention"]
