"""Attention-based introspection (§5.4's claim: 'the attention mechanism of
the model focuses on variables, function names and statements rather than
other factors such as line count').

Summarizes, per input token, how much attention the CLS position pays to it
(averaged over heads, last layer) — a cheap complement to LIME that uses the
transformer's own internals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.clang.lexer import KEYWORDS
from repro.data.encoding import encode_batch
from repro.models.pragformer import PragFormer
from repro.tokenize import Vocab, text_tokens

__all__ = ["cls_attention", "attention_by_token_class"]

_OPERATOR_CHARS = set("+-*/%<>=!&|^~?:;,.()[]{}")


def cls_attention(model: PragFormer, vocab: Vocab, code: str,
                  max_len: int = 110) -> List[Tuple[str, float]]:
    """(token, attention mass) pairs for the CLS query in the last layer."""
    tokens = text_tokens(code)
    split = encode_batch([tokens], vocab, max_len)
    # inference mode drops attention maps by default; explicitly retain them
    model.predict_proba(split, retain_attention=True)
    # prediction ran in length-sorted batches of one row: safe to read maps
    maps = model.encoder.attention_maps()
    last = maps[-1]  # (1, H, L, L) for the trimmed length
    cls_row = last[0, :, 0, :].mean(axis=0)  # average heads, CLS query
    # position 0 is CLS itself; tokens start at 1
    n = min(len(tokens), cls_row.shape[0] - 1)
    return [(tokens[k], float(cls_row[k + 1])) for k in range(n)]


def _token_class(token: str) -> str:
    if token in KEYWORDS:
        return "keyword"
    if all(ch in _OPERATOR_CHARS for ch in token):
        return "operator"
    if token[0].isdigit() or (token[0] == "." and len(token) > 1):
        return "literal"
    if token.startswith('"') or token.startswith("'"):
        return "literal"
    return "identifier"


def attention_by_token_class(model: PragFormer, vocab: Vocab,
                             codes: Sequence[str],
                             max_len: int = 110) -> Dict[str, float]:
    """Average CLS-attention mass per token class over many snippets.

    The §5.4 claim predicts identifiers (variables/functions) receive a
    disproportionate share relative to their frequency."""
    mass: Dict[str, float] = {}
    count: Dict[str, int] = {}
    for code in codes:
        for token, att in cls_attention(model, vocab, code, max_len):
            cls_name = _token_class(token)
            mass[cls_name] = mass.get(cls_name, 0.0) + att
            count[cls_name] = count.get(cls_name, 0) + 1
    return {k: mass[k] / count[k] for k in mass}
