"""LIME-style local explanations (§5.4 / Figure 8).

Following Ribeiro et al. 2016 as the paper applies it: perturb the input by
removing random token subsets, query the model on each perturbation, and fit
a locally-weighted ridge regression from token presence to the predicted
positive-class probability.  Each token's coefficient is its signed
importance ('the probability that the keyword affected the prediction').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Explanation", "LimeExplainer"]


@dataclass
class Explanation:
    """Signed token importances for one prediction."""

    tokens: List[str]
    weights: np.ndarray  # same length as tokens
    base_probability: float  # model's P(positive) on the intact input

    def top(self, k: int = 6) -> List[Tuple[str, float]]:
        """The k tokens with largest |weight|, most influential first."""
        order = np.argsort(-np.abs(self.weights))
        return [(self.tokens[int(i)], float(self.weights[int(i)])) for i in order[:k]]

    def supporting(self, k: int = 6) -> List[Tuple[str, float]]:
        """Tokens pushing toward the positive class."""
        order = np.argsort(-self.weights)
        return [(self.tokens[int(i)], float(self.weights[int(i)]))
                for i in order[:k] if self.weights[int(i)] > 0]

    def opposing(self, k: int = 6) -> List[Tuple[str, float]]:
        """Tokens pushing toward the negative class."""
        order = np.argsort(self.weights)
        return [(self.tokens[int(i)], float(self.weights[int(i)]))
                for i in order[:k] if self.weights[int(i)] < 0]


class LimeExplainer:
    """Model-agnostic explainer over token sequences.

    ``predict_fn`` maps a list of token sequences to an array of positive-
    class probabilities; any of our models (PragFormer via vocab encoding,
    BoW) can be adapted with a small closure.
    """

    def __init__(self, predict_fn: Callable[[Sequence[List[str]]], np.ndarray],
                 n_samples: int = 300, kernel_width: float = 0.75,
                 ridge: float = 1e-3, rng: RngLike = None) -> None:
        self.predict_fn = predict_fn
        self.n_samples = n_samples
        self.kernel_width = kernel_width
        self.ridge = ridge
        self.rng = ensure_rng(rng)

    def explain(self, tokens: Sequence[str]) -> Explanation:
        tokens = list(tokens)
        n_tok = len(tokens)
        if n_tok == 0:
            raise ValueError("cannot explain an empty token sequence")
        # membership matrix: row 0 is the intact input
        z = self.rng.random((self.n_samples, n_tok)) < 0.5
        z[0, :] = True
        variants: List[List[str]] = []
        for row in z:
            kept = [t for t, keep in zip(tokens, row) if keep]
            variants.append(kept if kept else [tokens[0]])
        probs = np.asarray(self.predict_fn(variants), dtype=np.float64)
        if probs.shape != (self.n_samples,):
            raise ValueError(f"predict_fn returned shape {probs.shape}")

        # locality kernel on cosine-like distance from the intact input
        frac_kept = z.mean(axis=1)
        dist = 1.0 - frac_kept
        weights = np.exp(-(dist**2) / self.kernel_width**2)

        # weighted ridge regression: presence features -> probability
        x = z.astype(np.float64)
        x_aug = np.hstack([x, np.ones((self.n_samples, 1))])
        wx = x_aug * weights[:, None]
        gram = x_aug.T @ wx + self.ridge * np.eye(n_tok + 1)
        rhs = wx.T @ probs
        coefs = np.linalg.solve(gram, rhs)
        return Explanation(tokens=tokens, weights=coefs[:-1],
                           base_probability=float(probs[0]))
