"""Corpus record model and on-disk layout.

A record mirrors the paper's database entry (§3.1.2): the code segment
relevant to the directive (loop plus any callee implementations found), the
OpenMP directive (empty for negative records), and the pickled AST.  Records
are stored one directory each, as ``code.c`` / ``pragma.c`` / ``ast.pkl``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.clang import Compound, parse
from repro.clang.pragma import OmpDirective, parse_pragma

__all__ = ["Record", "Snippet", "save_records", "load_records"]


@dataclass
class Snippet:
    """Raw generator output, before corpus criteria are applied.

    ``directive`` is the full pragma text (``#pragma omp ...``) or ``None``
    for code that developers left unannotated.
    """

    code: str
    directive: Optional[str]
    family: str


@dataclass
class Record:
    """A corpus entry with its parsed artifacts and provenance metadata."""

    uid: int
    code: str
    directive: Optional[str]
    domain: str  # 'generic' | 'unknown' | 'benchmark' | 'testing'
    family: str
    meta: Dict[str, object] = field(default_factory=dict)

    _ast: Optional[Compound] = field(default=None, repr=False, compare=False)
    _parsed_directive: Optional[OmpDirective] = field(default=None, repr=False, compare=False)

    @property
    def has_omp(self) -> bool:
        return self.directive is not None

    @property
    def ast(self) -> Compound:
        """Parsed AST of the code segment (cached)."""
        if self._ast is None:
            self._ast = parse(self.code)
        return self._ast

    @property
    def omp(self) -> Optional[OmpDirective]:
        """Structured directive, or None for negative records."""
        if self.directive is None:
            return None
        if self._parsed_directive is None:
            self._parsed_directive = parse_pragma(self.directive)
        return self._parsed_directive

    @property
    def line_count(self) -> int:
        return len([ln for ln in self.code.splitlines() if ln.strip()])

    # -- clause labels for RQ2 ------------------------------------------------

    @property
    def label_private(self) -> Optional[bool]:
        """True/False for directive records, None for negatives."""
        omp = self.omp
        return None if omp is None else omp.has_private

    @property
    def label_reduction(self) -> Optional[bool]:
        omp = self.omp
        return None if omp is None else omp.has_reduction


def save_records(records: List[Record], root: Path) -> None:
    """Write records in the paper's per-record directory layout."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    for rec in records:
        d = root / f"record_{rec.uid:06d}"
        d.mkdir(exist_ok=True)
        (d / "code.c").write_text(rec.code)
        (d / "pragma.c").write_text(rec.directive or "")
        (d / "meta.txt").write_text(f"{rec.domain}\n{rec.family}\n")
        with open(d / "ast.pkl", "wb") as fh:
            pickle.dump(rec.ast, fh)


def load_records(root: Path) -> List[Record]:
    """Load records previously written by :func:`save_records`."""
    root = Path(root)
    records: List[Record] = []
    for d in sorted(root.glob("record_*")):
        uid = int(d.name.split("_")[1])
        code = (d / "code.c").read_text()
        pragma_text = (d / "pragma.c").read_text().strip() or None
        domain, family = (d / "meta.txt").read_text().splitlines()[:2]
        rec = Record(uid=uid, code=code, directive=pragma_text, domain=domain, family=family)
        ast_path = d / "ast.pkl"
        if ast_path.exists():
            with open(ast_path, "rb") as fh:
                rec._ast = pickle.load(fh)
        records.append(rec)
    return records
