"""Corpus construction: criteria, dedup, domains, and label noise.

Implements §3.1 of the paper:

* **Inclusion** — a record must parse as C and contain a for-loop; positive
  records must carry a loop directive (``parallel for``).
* **Exclusion** — ``task``-like constructs and non-loop directives are
  dropped; annotated *empty* loops (compiler-compatibility tests) are
  dropped; duplicate snippets are removed via a normalized (identifier-
  replaced) AST hash, catching copy-pasted code even when renamed.
* **Negative labelling** — negatives come only from "files that contain
  OpenMP elsewhere", which makes them *mostly* true negatives.  The residual
  noise (developers who simply didn't annotate a parallelizable loop — cf.
  Table 12 #4) is reproduced by stripping the directive from a configurable
  fraction of positive-family snippets.
* **Domains** — each record is tagged generic / unknown / benchmark /
  testing with Figure 3's proportions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.clang import Compound, For, parse, walk
from repro.clang.nodes import EmptyStmt
from repro.clang.pragma import PragmaError, parse_pragma
from repro.clang.serialize import ast_to_dfs_text
from repro.corpus.generators import sample_excluded_snippet, sample_snippet
from repro.corpus.records import Record, Snippet
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["CorpusConfig", "Corpus", "build_corpus", "record_from_snippet"]

#: Figure 3 proportions.
DOMAIN_WEIGHTS = {
    "generic": 0.43,
    "unknown": 0.335,
    "benchmark": 0.165,
    "testing": 0.07,
}


@dataclass
class CorpusConfig:
    """Knobs for corpus generation.

    ``n_records`` is the post-filter target size; the paper's raw database
    has 17,013 snippets of which 7,630 carry directives (44.8 % positive) —
    ``positive_fraction`` defaults to that ratio.  ``label_noise`` is the
    fraction of positive-family draws whose directive is stripped to form
    plausible-but-unannotated negatives.
    """

    n_records: int = 2000
    # 0.4485 is the paper's directive fraction (7,630 / 17,013); divide by
    # (1 - label_noise) so the post-noise fraction lands on it.
    positive_fraction: float = 0.472
    label_noise: float = 0.05
    include_excluded: bool = True
    #: 'structural' removes exact replicas (reformatting-insensitive);
    #: 'normalized' additionally removes renamed copies; 'none' disables.
    dedup: str = "structural"
    seed: int = 0


class Corpus:
    """An immutable list of records with filtering/statistics views."""

    def __init__(self, records: List[Record], config: Optional[CorpusConfig] = None) -> None:
        self.records = list(records)
        self.config = config
        self.n_rejected_by_criteria = 0
        self.n_rejected_duplicates = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx: int) -> Record:
        return self.records[idx]

    @property
    def positives(self) -> List[Record]:
        return [r for r in self.records if r.has_omp]

    @property
    def negatives(self) -> List[Record]:
        return [r for r in self.records if not r.has_omp]


def _contains_for(ast: Compound) -> bool:
    return any(isinstance(n, For) for n in walk(ast))


def _all_loops_empty(ast: Compound) -> bool:
    loops = [n for n in walk(ast) if isinstance(n, For)]
    if not loops:
        return True
    return all(
        isinstance(l.body, EmptyStmt)
        or (isinstance(l.body, Compound) and not l.body.stmts)
        for l in loops
    )


def _passes_criteria(snippet: Snippet) -> Optional[Compound]:
    """Inclusion/exclusion criteria of §3.1 on one raw snippet.

    Returns the parsed AST on success (reused downstream) or None.
    """
    try:
        ast = parse(snippet.code)
    except Exception:
        return None
    if not _contains_for(ast):
        return None
    if snippet.directive is not None:
        try:
            omp = parse_pragma(snippet.directive)
        except PragmaError:
            return None
        if not omp.is_parallel_for:
            return None
        if _all_loops_empty(ast):
            return None
    return ast


def _structural_hash(ast: Compound, directive: Optional[str]) -> str:
    """Exact-replica detection key: whitespace-insensitive DFS of the AST
    plus the directive text.  Copy-pasted snippets hash identically even if
    reformatted."""
    dfs = ast_to_dfs_text(ast)
    return hashlib.sha256(f"{dfs}\n{directive or ''}".encode()).hexdigest()


def _normalized_hash(ast: Compound) -> str:
    """Fuzzy 'similar entries' key: identifier-replaced DFS — two copies of
    the same kernel with renamed variables hash identically."""
    from repro.tokenize.replace import build_replacement_map, rename_ast

    renamed = rename_ast(ast, build_replacement_map(ast))
    return hashlib.sha256(ast_to_dfs_text(renamed).encode()).hexdigest()


def _draw_domain(rng: np.random.Generator) -> str:
    domains = list(DOMAIN_WEIGHTS)
    weights = np.array([DOMAIN_WEIGHTS[d] for d in domains])
    return str(domains[int(rng.choice(len(domains), p=weights / weights.sum()))])


def record_from_snippet(uid: int, snippet: Snippet, domain: str) -> Record:
    return Record(
        uid=uid,
        code=snippet.code,
        directive=snippet.directive,
        domain=domain,
        family=snippet.family,
    )


def build_corpus(config: Optional[CorpusConfig] = None, rng: RngLike = None) -> Corpus:
    """Generate, filter, and dedup a corpus per ``config``."""
    config = config or CorpusConfig()
    gen = ensure_rng(rng if rng is not None else config.seed)

    records: List[Record] = []
    seen_hashes: Dict[str, int] = {}
    n_rejected = 0
    n_dups = 0
    uid = 0

    # Interleave a stream of raw snippets (positives, negatives, and — to
    # exercise the criteria — excluded constructs) until the target size.
    max_attempts = config.n_records * 30 + 1000
    attempts = 0
    while len(records) < config.n_records and attempts < max_attempts:
        attempts += 1
        roll = gen.random()
        if config.include_excluded and roll < 0.03:
            snippet = sample_excluded_snippet(gen)
        else:
            positive = gen.random() < config.positive_fraction
            snippet = sample_snippet(gen, positive=positive)
            if positive and gen.random() < config.label_noise:
                # developer never annotated this parallelizable loop
                snippet = Snippet(snippet.code, None, snippet.family)
        ast = _passes_criteria(snippet)
        if ast is None:
            n_rejected += 1
            continue
        if config.dedup != "none":
            key = (_normalized_hash(ast) if config.dedup == "normalized"
                   else _structural_hash(ast, snippet.directive))
            if key in seen_hashes:
                n_dups += 1
                continue
            seen_hashes[key] = uid
        rec = record_from_snippet(uid, snippet, _draw_domain(gen))
        rec._ast = ast
        records.append(rec)
        uid += 1

    corpus = Corpus(records, config)
    corpus.n_rejected_by_criteria = n_rejected
    corpus.n_rejected_duplicates = n_dups
    return corpus
