"""Corpus statistics reproducing Tables 3–4 and Figure 3."""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.corpus.builder import Corpus

__all__ = ["directive_stats", "length_histogram", "domain_distribution"]


def directive_stats(corpus: Corpus) -> Dict[str, int]:
    """Table 3: directive and clause counts over the raw database.

    ``schedule static`` counts loops whose schedule is static *or default*
    (OpenMP's default policy), matching the paper where static ≈ all
    directives minus the explicit-dynamic ones.
    """
    n_directives = 0
    n_static = 0
    n_dynamic = 0
    n_reduction = 0
    n_private = 0
    for rec in corpus:
        omp = rec.omp
        if omp is None:
            continue
        n_directives += 1
        sched = omp.schedule
        if sched is not None and sched[0] == "dynamic":
            n_dynamic += 1
        else:
            n_static += 1
        if omp.has_reduction:
            n_reduction += 1
        if omp.has_private:
            n_private += 1
    return {
        "total_code_snippets": len(corpus),
        "for_loops_with_omp": n_directives,
        "schedule_static": n_static,
        "schedule_dynamic": n_dynamic,
        "reduction": n_reduction,
        "private": n_private,
    }


#: Table 4's bins.
LENGTH_BINS = [(0, 10), (11, 50), (51, 100), (101, 10**9)]
LENGTH_BIN_LABELS = ["< 10", "11-50", "51-100", "> 100"]


def length_histogram(corpus: Corpus) -> Dict[str, int]:
    """Table 4: snippet line counts binned as in the paper."""
    counts = dict.fromkeys(LENGTH_BIN_LABELS, 0)
    for rec in corpus:
        n = rec.line_count
        for (lo, hi), label in zip(LENGTH_BINS, LENGTH_BIN_LABELS):
            if lo <= n <= hi:
                counts[label] += 1
                break
    return counts


def domain_distribution(corpus: Corpus) -> Dict[str, float]:
    """Figure 3: fraction of snippets per source domain."""
    counter = Counter(rec.domain for rec in corpus)
    total = max(1, len(corpus))
    return {domain: counter.get(domain, 0) / total
            for domain in ("generic", "unknown", "benchmark", "testing")}
