"""Identifier naming pools for the synthetic Open-OMP corpus.

The paper observes (§5.1) that parallelizable loops in the wild share a
"unique" naming convention — iteration variables named ``i, j, k``, arrays
named ``A, B, C, vec, arr`` — and credits part of the raw-text model's edge
to recognising those names.  The generator therefore draws most names from
conventional pools, with a configurable fraction of idiosyncratic names
(camelCase, hungarian, underscored domain words) that are the main source of
out-of-vocabulary tokens in Table 7.
"""

from __future__ import annotations

from typing import List, Sequence


from repro.utils.rng import RngLike, ensure_rng

__all__ = ["NamePool", "CONVENTIONAL_ARRAYS", "CONVENTIONAL_SCALARS", "ITER_VARS"]

ITER_VARS: Sequence[str] = ("i", "j", "k", "l", "m", "ii", "jj", "kk", "idx", "t")

CONVENTIONAL_ARRAYS: Sequence[str] = (
    "A", "B", "C", "D", "a", "b", "c", "x", "y", "z", "u", "v", "w",
    "arr", "vec", "mat", "data", "buf", "grid", "field", "tmp", "out",
    "src", "dst", "in", "res", "img", "pix", "rows", "vals",
)

CONVENTIONAL_SCALARS: Sequence[str] = (
    "sum", "s", "acc", "total", "dot", "norm", "err", "res", "t", "val",
    "avg", "minv", "maxv", "count", "prod", "energy", "mass", "q",
)

CONVENTIONAL_FUNCS: Sequence[str] = (
    "compute", "calc", "update", "process", "f", "g", "kernel", "apply",
    "evaluate", "transform", "step", "accumulate",
)

CONVENTIONAL_BOUNDS: Sequence[str] = (
    "n", "N", "m", "M", "len", "size", "count", "rows", "cols", "dim",
    "nx", "ny", "nz", "npoints", "nsteps", "width", "height",
)

_IDIO_PREFIXES = (
    "my", "tmp", "local", "g_", "p_", "the", "cur", "prev", "next", "raw",
)
_IDIO_STEMS = (
    "Velocity", "Density", "Pressure", "Buffer", "Packet", "Index", "Weight",
    "Sample", "Signal", "Matrix", "Tensor", "Voxel", "Particle", "Cell",
    "Node", "Edge", "Flux", "Gradient", "Residual", "Momentum",
)
_IDIO_SUFFIXES = ("", "X", "Y", "Z", "0", "1", "2", "_new", "_old", "_loc")


class NamePool:
    """Draws fresh, non-colliding identifiers for one snippet.

    ``idiosyncratic`` is the probability that a non-iteration name is drawn
    from the idiosyncratic generator instead of the conventional pools.
    """

    def __init__(self, rng: RngLike = None, idiosyncratic: float = 0.12) -> None:
        self.rng = ensure_rng(rng)
        self.idio = float(idiosyncratic)
        self.used: set = set()

    def _fresh(self, candidates: Sequence[str]) -> str:
        order = self.rng.permutation(len(candidates))
        for pos in order:
            name = candidates[int(pos)]
            if name not in self.used:
                self.used.add(name)
                return name
        # all taken: derive a numbered variant
        base = candidates[int(self.rng.integers(len(candidates)))]
        k = 2
        while f"{base}{k}" in self.used:
            k += 1
        name = f"{base}{k}"
        self.used.add(name)
        return name

    def _idiosyncratic(self) -> str:
        prefix = _IDIO_PREFIXES[int(self.rng.integers(len(_IDIO_PREFIXES)))]
        stem = _IDIO_STEMS[int(self.rng.integers(len(_IDIO_STEMS)))]
        suffix = _IDIO_SUFFIXES[int(self.rng.integers(len(_IDIO_SUFFIXES)))]
        name = f"{prefix}{stem}{suffix}"
        if name in self.used:
            name = f"{name}_{int(self.rng.integers(100))}"
        self.used.add(name)
        return name

    def _draw(self, pool: Sequence[str]) -> str:
        if self.rng.random() < self.idio:
            return self._idiosyncratic()
        return self._fresh(pool)

    def iter_var(self) -> str:
        """Iteration variables are nearly always conventional in real code."""
        return self._fresh(ITER_VARS)

    def array(self) -> str:
        return self._draw(CONVENTIONAL_ARRAYS)

    def scalar(self) -> str:
        return self._draw(CONVENTIONAL_SCALARS)

    def func(self) -> str:
        return self._draw(CONVENTIONAL_FUNCS)

    def bound(self) -> str:
        return self._fresh(CONVENTIONAL_BOUNDS)

    def arrays(self, n: int) -> List[str]:
        return [self.array() for _ in range(n)]
