"""Synthetic snippet generators — the data-generating process of Open-OMP.

Each *family* is a parameterized template producing C loop snippets whose
ground-truth label (needs a directive / needs ``private`` / needs
``reduction``) follows from its dependence structure, exactly the way the
paper's labels follow from what developers annotated:

* **Positive families** emit a loop with no loop-carried dependences plus the
  directive a competent developer would write (``parallel for`` with
  ``private``/``reduction``/``schedule`` clauses as needed).
* **Negative families** emit loops that must not be parallelized — carried
  dependences, I/O, side effects, early exits — or where parallelization is
  counter-productive (low trip counts, §2.1.1).

The families deliberately overlap in surface vocabulary (``+=`` appears in
both reductions and prefix sums; literal bounds appear in both low-trip
negatives and first-touch positives) so that order-free models (BoW) are
measurably weaker than the transformer, as in Table 8.

Family weights are calibrated so the full-scale corpus reproduces Table 3's
clause proportions (private ≈ 45 % of directives, reduction ≈ 19 %,
``schedule(dynamic)`` ≈ 5 %).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.corpus.naming import NamePool
from repro.corpus.records import Snippet
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "POSITIVE_FAMILIES",
    "NEGATIVE_FAMILIES",
    "EXCLUDED_FAMILIES",
    "sample_snippet",
    "sample_excluded_snippet",
    "family_names",
]

GenFn = Callable[[np.random.Generator], Snippet]

#: Naming-convention signal (§5.1): parallelizable HPC loops overwhelmingly
#: use conventional names (i, j, k, A, B, arr ...), while general application
#: code is far more idiosyncratic.  The paper credits both PragFormer's and
#: BoW's accuracy partly to this correlation; genuine negatives therefore
#: draw idiosyncratic names ~5x more often.  Unannotated-parallel negatives
#: inherit positive-style naming, keeping them hard for every model.
_POS_IDIO = 0.04
_NEG_IDIO = 0.45

_PLAIN = "#pragma omp parallel for"


def _rint(rng: np.random.Generator, lo: int, hi: int) -> int:
    return int(rng.integers(lo, hi + 1))


def _pick(rng: np.random.Generator, items: Sequence) -> object:
    return items[int(rng.integers(len(items)))]


def _cmp(rng: np.random.Generator) -> str:
    return str(_pick(rng, ["<", "<", "<", "<="]))


def _incr(rng: np.random.Generator, var: str) -> str:
    return str(_pick(rng, [f"{var}++", f"++{var}", f"{var} += 1", f"{var} = {var} + 1"]))


def _arith_expr(rng: np.random.Generator, atoms: Sequence[str], depth: int = 2) -> str:
    """A random arithmetic expression over ``atoms``."""
    if depth <= 0 or rng.random() < 0.35:
        return str(_pick(rng, list(atoms) + [str(_rint(rng, 1, 9)), f"{_rint(rng, 1, 9)}.0"]))
    op = _pick(rng, ["+", "-", "*", "+", "*"])
    left = _arith_expr(rng, atoms, depth - 1)
    right = _arith_expr(rng, atoms, depth - 1)
    return f"({left} {op} {right})"


def _decl_preamble(rng: np.random.Generator, names: NamePool,
                   arrays: Sequence[str], scalars: Sequence[str],
                   bounds: Sequence[str]) -> str:
    """Optional declaration context preceding the loop, as real extracted
    snippets often include.  Inflates line counts toward Table 4's shape."""
    lines: List[str] = []
    dim = _pick(rng, bounds) if bounds else str(_rint(rng, 100, 4000))
    ctype = _pick(rng, ["double", "float", "int"])
    for arr in arrays:
        if rng.random() < 0.5:
            lines.append(f"{ctype} {arr}[{dim}];")
    for sc in scalars:
        if rng.random() < 0.5:
            lines.append(f"{ctype} {sc} = 0;")
    for b in bounds:
        if rng.random() < 0.3:
            lines.append(f"int {b} = {_rint(rng, 100, 5000)};")
    return "\n".join(lines)


def _with_preamble(rng: np.random.Generator, names: NamePool, code: str,
                   arrays: Sequence[str] = (), scalars: Sequence[str] = (),
                   bounds: Sequence[str] = (), prob: float = 0.35) -> str:
    if rng.random() >= prob:
        return code
    pre = _decl_preamble(rng, names, arrays, scalars, bounds)
    return f"{pre}\n{code}" if pre else code


# ===========================================================================
# Positive families
# ===========================================================================


def gen_init_1d(rng: np.random.Generator) -> Snippet:
    """Array initialization — parallel, no extra clauses."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, a, n = names.iter_var(), names.array(), names.bound()
    init = _pick(rng, ["0", i, f"{i} * {_rint(rng, 2, 9)}", f"{_rint(rng, 1, 99)}",
                       f"(double) {i} / {n}", f"{i} + 1"])
    code = f"for ({i} = 0; {i} {_cmp(rng)} {n}; {_incr(rng, i)})\n  {a}[{i}] = {init};"
    code = _with_preamble(rng, names, code, arrays=[a], bounds=[n])
    return Snippet(code, _PLAIN, "init_1d")


def gen_elementwise(rng: np.random.Generator) -> Snippet:
    """saxpy-style elementwise kernels — parallel, no extra clauses."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    dst, s1, s2 = names.array(), names.array(), names.array()
    kind = _rint(rng, 0, 3)
    if kind == 0:
        alpha = names.scalar()
        body = f"{dst}[{i}] = {alpha} * {s1}[{i}] + {dst}[{i}];"
    elif kind == 1:
        op = _pick(rng, ["+", "-", "*"])
        body = f"{dst}[{i}] = {s1}[{i}] {op} {s2}[{i}];"
    elif kind == 2:
        fn = _pick(rng, ["sqrt", "fabs", "exp", "log", "sin", "cos"])
        body = f"{dst}[{i}] = {fn}({s1}[{i}]);"
    else:
        body = f"{dst}[{i}] = {_arith_expr(rng, [f'{s1}[{i}]', f'{s2}[{i}]', i])};"
    extra = _rint(rng, 0, 4) if rng.random() < 0.35 else 0
    if extra:
        stmts = [body]
        for _ in range(extra):
            d2 = names.array()
            stmts.append(f"{d2}[{i}] = {_arith_expr(rng, [f'{s1}[{i}]', f'{s2}[{i}]', i], 1)};")
        inner = "\n  ".join(stmts)
        code = f"for ({i} = 0; {i} {_cmp(rng)} {n}; {_incr(rng, i)}) {{\n  {inner}\n}}"
    else:
        code = f"for ({i} = 0; {i} {_cmp(rng)} {n}; {_incr(rng, i)})\n  {body}"
    code = _with_preamble(rng, names, code, arrays=[dst, s1, s2], bounds=[n])
    return Snippet(code, _PLAIN, "elementwise")


def gen_copy_scale(rng: np.random.Generator) -> Snippet:
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, dst, src = names.iter_var(), names.bound(), names.array(), names.array()
    factor = _pick(rng, ["", f"{_rint(rng, 2, 9)} * ", "0.5 * ", "2.0 * "])
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {dst}[{i}] = {factor}{src}[{i}];"
    return Snippet(code, _PLAIN, "copy_scale")


def gen_nested_2d(rng: np.random.Generator) -> Snippet:
    """Doubly nested independent updates — needs private(j)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n, m = names.bound(), names.bound()
    dst, a, b = names.array(), names.array(), names.array()
    kind = _rint(rng, 0, 2)
    if kind == 0:
        body = f"{dst}[{i}][{j}] = {a}[{i}][{j}] {_pick(rng, ['+', '-', '*'])} {b}[{i}][{j}];"
    elif kind == 1:
        body = f"{dst}[{i}][{j}] = {_arith_expr(rng, [f'{a}[{i}][{j}]', i, j])};"
    else:
        body = f"{dst}[{i}][{j}] = ({i} + {j}) % {_rint(rng, 2, 16)};"
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = 0; {j} < {m}; {_incr(rng, j)})\n"
        f"    {body}"
    )
    code = _with_preamble(rng, names, code, scalars=[], bounds=[n, m])
    return Snippet(code, f"{_PLAIN} private({j})", "nested_2d")


def gen_polybench_style(rng: np.random.Generator) -> Snippet:
    """Benchmark-flavoured nested kernel with a bound macro (cf. Table 12 #1)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n = names.bound()
    x1, a, y1 = names.array(), names.array(), names.array()
    bound = _rint(rng, 500, 4000)
    code = (
        f"for ({i} = 0; {i} < POLYBENCH_LOOP_BOUND({bound}, {n}); {i}++)\n"
        f"  for ({j} = 0; {j} < POLYBENCH_LOOP_BOUND({bound}, {n}); {j}++)\n"
        f"    {x1}[{i}] = {x1}[{i}] + ({a}[{i}][{j}] * {y1}[{j}]);"
    )
    return Snippet(code, f"{_PLAIN} private({j})", "polybench_style")


def gen_matmul(rng: np.random.Generator) -> Snippet:
    """Triple-nested matrix multiply — needs private(j, k)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j, k = names.iter_var(), names.iter_var(), names.iter_var()
    n = names.bound()
    c, a, b = names.array(), names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = 0; {j} < {n}; {j}++) {{\n"
        f"    {c}[{i}][{j}] = 0;\n"
        f"    for ({k} = 0; {k} < {n}; {k}++)\n"
        f"      {c}[{i}][{j}] += {a}[{i}][{k}] * {b}[{k}][{j}];\n"
        f"  }}"
    )
    return Snippet(code, f"{_PLAIN} private({j}, {k})", "matmul")


def gen_stencil(rng: np.random.Generator) -> Snippet:
    """Jacobi-style stencil writing a separate output grid — private(j)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n, m = names.bound(), names.bound()
    new, old = names.array(), names.array()
    coef = _pick(rng, ["0.25", "0.2", "0.125"])
    code = (
        f"for ({i} = 1; {i} < {n} - 1; {i}++)\n"
        f"  for ({j} = 1; {j} < {m} - 1; {j}++)\n"
        f"    {new}[{i}][{j}] = {coef} * ({old}[{i}-1][{j}] + {old}[{i}+1][{j}]"
        f" + {old}[{i}][{j}-1] + {old}[{i}][{j}+1]);"
    )
    return Snippet(code, f"{_PLAIN} private({j})", "stencil")


def gen_stencil_1d(rng: np.random.Generator) -> Snippet:
    """1-D three-point stencil into a fresh array — no clause needed."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    new, old = names.array(), names.array()
    code = (
        f"for ({i} = 1; {i} < {n} - 1; {i}++)\n"
        f"  {new}[{i}] = ({old}[{i}-1] + {old}[{i}] + {old}[{i}+1]) / 3.0;"
    )
    return Snippet(code, _PLAIN, "stencil_1d")


def gen_image_op(rng: np.random.Generator) -> Snippet:
    """Per-pixel image transform — private(j)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    h, w = names.bound(), names.bound()
    img, out = names.array(), names.array()
    kind = _rint(rng, 0, 2)
    if kind == 0:
        thresh = _rint(rng, 50, 200)
        body = f"{out}[{i}][{j}] = {img}[{i}][{j}] > {thresh} ? 255 : 0;"
    elif kind == 1:
        gain = _rint(rng, 2, 5)
        body = f"{out}[{i}][{j}] = (int) ({img}[{i}][{j}] * {gain}) % 256;"
    else:
        body = f"{out}[{i}][{j}] = 255 - {img}[{i}][{j}];"
    code = (
        f"for ({i} = 0; {i} < {h}; {i}++)\n"
        f"  for ({j} = 0; {j} < {w}; {j}++)\n"
        f"    {body}"
    )
    return Snippet(code, f"{_PLAIN} private({j})", "image_op")


def gen_private_temp(rng: np.random.Generator) -> Snippet:
    """A scalar temporary written-then-read inside the body — private(t)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, t = names.iter_var(), names.bound(), names.scalar()
    a, b = names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {t} = {a}[{i}] {_pick(rng, ['*', '+'])} {_rint(rng, 2, 9)};\n"
        f"  {b}[{i}] = {t} * {t};\n"
        f"}}"
    )
    return Snippet(code, f"{_PLAIN} private({t})", "private_temp")


def gen_reduction_sum(rng: np.random.Generator) -> Snippet:
    """Scalar accumulation — reduction(+|*)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, acc, a = names.iter_var(), names.bound(), names.scalar(), names.array()
    op = _pick(rng, ["+", "+", "+", "*"])
    upd = f"{acc} += {a}[{i}];" if op == "+" else f"{acc} *= {a}[{i}];"
    if rng.random() < 0.3:
        upd = f"{acc} = {acc} {op} {a}[{i}];"
    code = f"for ({i} = 0; {i} {_cmp(rng)} {n}; {_incr(rng, i)})\n  {upd}"
    code = _with_preamble(rng, names, code, arrays=[a], scalars=[acc], bounds=[n])
    return Snippet(code, f"{_PLAIN} reduction({op}:{acc})", "reduction_sum")


def gen_dot_product(rng: np.random.Generator) -> Snippet:
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, acc = names.iter_var(), names.bound(), names.scalar()
    x, y = names.array(), names.array()
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {acc} += {x}[{i}] * {y}[{i}];"
    return Snippet(code, f"{_PLAIN} reduction(+:{acc})", "dot_product")


def gen_norm(rng: np.random.Generator) -> Snippet:
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, acc, x = names.iter_var(), names.bound(), names.scalar(), names.array()
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {acc} += {x}[{i}] * {x}[{i}];"
    return Snippet(code, f"{_PLAIN} reduction(+:{acc})", "norm")


def gen_minmax(rng: np.random.Generator) -> Snippet:
    """min/max reductions via if or ternary — S2S pattern-matchers miss these."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, best, a = names.iter_var(), names.bound(), names.scalar(), names.array()
    is_max = rng.random() < 0.5
    cmp_op = ">" if is_max else "<"
    red_op = "max" if is_max else "min"
    if rng.random() < 0.5:
        body = f"if ({a}[{i}] {cmp_op} {best})\n    {best} = {a}[{i}];"
    else:
        body = f"{best} = {a}[{i}] {cmp_op} {best} ? {a}[{i}] : {best};"
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {body}"
    return Snippet(code, f"{_PLAIN} reduction({red_op}:{best})", "minmax")


def gen_reduction_2d(rng: np.random.Generator) -> Snippet:
    """Nested accumulation — reduction(+) plus private(j)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n, m, acc, a = names.bound(), names.bound(), names.scalar(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = 0; {j} < {m}; {j}++)\n"
        f"    {acc} += {a}[{i}][{j}];"
    )
    return Snippet(code, f"{_PLAIN} private({j}) reduction(+:{acc})", "reduction_2d")


def gen_unbalanced(rng: np.random.Generator) -> Snippet:
    """Iteration cost depends on a condition — schedule(dynamic) (§1, Table 1 #2)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    cond_fn, heavy_fn = names.func(), names.func()
    chunk = _pick(rng, ["", f",{_rint(rng, 2, 8)}"])
    code = (
        f"for ({i} = 0; {i} {_cmp(rng)} {n}; {i}++)\n"
        f"  if ({cond_fn}({i}))\n"
        f"    {heavy_fn}({i});"
    )
    return Snippet(code, f"{_PLAIN} schedule(dynamic{chunk})", "unbalanced")


def gen_triangular(rng: np.random.Generator) -> Snippet:
    """Triangular iteration space — uneven work, schedule(dynamic) private(j)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n, a, dst = names.bound(), names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = {i} + 1; {j} < {n}; {j}++)\n"
        f"    {dst}[{i}][{j}] = {a}[{i}] * {a}[{j}];"
    )
    return Snippet(code, f"{_PLAIN} private({j}) schedule(dynamic)", "triangular")


def gen_pure_func_call(rng: np.random.Generator) -> Snippet:
    """Loop calling a pure function.  Half the time the callee implementation
    is included in the record (as the corpus builder does when it finds one);
    half the time it is not — the case where S2S compilers go conservative
    but developers annotate anyway."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    fn = names.func()
    a, b = names.array(), names.array()
    call = f"for ({i} = 0; {i} < {n}; {i}++)\n  {b}[{i}] = {fn}({a}[{i}]);"
    if rng.random() < 0.35:
        expr = _arith_expr(rng, ["v"], depth=2)
        code = f"double {fn}(double v) {{\n  return {expr};\n}}\n{call}"
    else:
        code = call
    return Snippet(code, _PLAIN, "pure_func_call")


def gen_helper_call(rng: np.random.Generator) -> Snippet:
    """Pure-by-convention helper calls whose implementations live in another
    file — developers annotate these, S2S compilers cannot associate the
    function and go conservative (§5.2: ComPar's main false-negative source).
    """
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, fn = names.iter_var(), names.bound(), names.func()
    a, b = names.array(), names.array()
    if rng.random() < 0.5:
        code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {b}[{i}] = {fn}({a}[{i}], {i});"
        directive = _PLAIN
    else:
        j, m = names.iter_var(), names.bound()
        code = (
            f"for ({i} = 0; {i} < {n}; {i}++)\n"
            f"  for ({j} = 0; {j} < {m}; {j}++)\n"
            f"    {b}[{i}][{j}] = {fn}({a}[{i}][{j}]);"
        )
        directive = f"{_PLAIN} private({j})"
    return Snippet(code, directive, "helper_call")


def gen_struct_update(rng: np.random.Generator) -> Snippet:
    """Independent per-element struct field updates."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    parts = _pick(rng, ["particles", "cells", "nodes", "bodies", "atoms"])
    dt = names.scalar()
    axis = _pick(rng, ["x", "y", "z"])
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {parts}[{i}].{axis} += {parts}[{i}].v{axis} * {dt};\n"
        f"  {parts}[{i}].v{axis} *= 0.99;\n"
        f"}}"
    )
    return Snippet(code, _PLAIN, "struct_update")


def gen_first_touch(rng: np.random.Generator) -> Snippet:
    """Small-bound initialization annotated for cc-NUMA first-touch (§2.1.1).

    Deterministic S2S profitability heuristics skip these — a designed
    false-negative source for ComPar."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, a = names.iter_var(), names.array()
    bound = _rint(rng, 64, 512)
    code = f"for ({i} = 0; {i} < {bound}; {i}++)\n  {a}[{i}] = 0;"
    return Snippet(code, _PLAIN, "first_touch")


def gen_multi_array(rng: np.random.Generator) -> Snippet:
    """Several independent writes per iteration (cf. Table 12 #4)."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n = names.bound()
    a1, a2, a3 = names.array(), names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = 0; {j} < {n}; {j}++) {{\n"
        f"    {a1}[{i}][{j}] = (int) (({i} + 1) * ({j} + 1));\n"
        f"    {a2}[{i}][{j}] = (((int) {i}) - {j}) / {n};\n"
        f"    {a3}[{i}][{j}] = (((int) {i}) * ({j} - 1)) / {n};\n"
        f"  }}"
    )
    return Snippet(code, f"{_PLAIN} private({j})", "multi_array")


def gen_long_elementwise(rng: np.random.Generator) -> Snippet:
    """Wide loop bodies (10–60 independent statements) — the 11–100+ line
    records of Table 4.  Needs private(t) when a temp scalar is used."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n = names.iter_var(), names.bound()
    n_stmts = _rint(rng, 8, 45)
    arrays = names.arrays(min(6, 2 + n_stmts // 8))
    use_temp = rng.random() < 0.4
    t = names.scalar() if use_temp else None
    lines = []
    if use_temp:
        lines.append(f"  {t} = {arrays[0]}[{i}] * {_rint(rng, 2, 9)};")
    for s in range(n_stmts):
        dst = arrays[s % len(arrays)]
        src = arrays[(s + 1) % len(arrays)]
        atoms = [f"{src}[{i}]", i]
        if use_temp:
            atoms.append(t)
        lines.append(f"  {dst}[{i}] = {_arith_expr(rng, atoms, depth=1)};")
    body = "\n".join(lines)
    code = f"for ({i} = 0; {i} < {n}; {i}++) {{\n{body}\n}}"
    directive = f"{_PLAIN} private({t})" if use_temp else _PLAIN
    return Snippet(code, directive, "long_elementwise")


def gen_big_pure_kernel(rng: np.random.Generator) -> Snippet:
    """A long pure helper function plus the loop that maps it — produces the
    50–150 line records."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, n, fn = names.iter_var(), names.bound(), names.func()
    a, b = names.array(), names.array()
    n_stmts = _rint(rng, 12, 60)
    lines = [f"  double w0 = v;"]
    for s in range(n_stmts):
        prev = f"w{s}"
        lines.append(f"  double w{s + 1} = {_arith_expr(rng, [prev, 'v'], depth=1)};")
    lines.append(f"  return w{n_stmts};")
    fn_body = "\n".join(lines)
    code = (
        f"double {fn}(double v) {{\n{fn_body}\n}}\n"
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  {b}[{i}] = {fn}({a}[{i}]);"
    )
    return Snippet(code, _PLAIN, "big_pure_kernel")


# ===========================================================================
# Negative families (no directive)
# ===========================================================================


def gen_recurrence(rng: np.random.Generator) -> Snippet:
    """Loop-carried flow dependence: A[i] depends on A[i-1]."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    lag = _pick(rng, ["1", "1", "1", "2"])
    expr = _pick(rng, [
        f"{a}[{i}-{lag}] + {_rint(rng, 1, 9)}",
        f"{a}[{i}-{lag}] * 0.5 + {a}[{i}]",
        f"{a}[{i}-1] + {a}[{i}-{lag}]",
    ])
    code = f"for ({i} = {lag}; {i} < {n}; {i}++)\n  {a}[{i}] = {expr};"
    return Snippet(code, None, "recurrence")


def gen_prefix_sum(rng: np.random.Generator) -> Snippet:
    """Running sum materialized per element — the value of the accumulator at
    iteration i is order-dependent, unlike a pure reduction."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, acc = names.iter_var(), names.bound(), names.scalar()
    a, b = names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {acc} += {a}[{i}];\n"
        f"  {b}[{i}] = {acc};\n"
        f"}}"
    )
    return Snippet(code, None, "prefix_sum")


def gen_io_loop(rng: np.random.Generator) -> Snippet:
    """Ordered I/O in the body (cf. Table 12 #2)."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, x = names.iter_var(), names.bound(), names.array()
    kind = _rint(rng, 0, 2)
    if kind == 0:
        body = f'printf("%d ", {x}[{i}]);'
    elif kind == 1:
        body = f'fprintf(stderr, "%0.2lf ", {x}[{i}]);'
    else:
        body = (
            f'fprintf(stderr, "%0.2lf ", {x}[{i}]);\n'
            f'  if (({i} % 20) == 0)\n'
            f'    fprintf(stderr, " \\n");'
        )
    brace_l, brace_r = ("{", "}") if "\n" in body else ("", "")
    code = f"for ({i} = 0; {i} < {n}; {i}++) {brace_l}\n  {body}\n{brace_r}".rstrip()
    return Snippet(code, None, "io_loop")


def gen_pointer_chase(rng: np.random.Generator) -> Snippet:
    """Linked-list traversal — inherently sequential."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    p = _pick(rng, ["p", "node", "cur", "it"])
    head = _pick(rng, ["head", "first", "list"])
    acc = names.scalar()
    code = (
        f"for ({p} = {head}; {p} != 0; {p} = {p}->next)\n"
        f"  {acc} += {p}->value;"
    )
    return Snippet(code, None, "pointer_chase")


def gen_low_trip(rng: np.random.Generator) -> Snippet:
    """Tiny literal trip count — thread-spawn overhead dominates (§2.1.1)."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, a = names.iter_var(), names.array()
    bound = _rint(rng, 2, 8)
    body = _pick(rng, [
        f"{a}[{i}] = {i};",
        f"{a}[{i}] = {a}[{i}] * 2;",
        f"{a}[{i}] = 0;",
    ])
    code = f"for ({i} = 0; {i} < {bound}; {i}++)\n  {body}"
    return Snippet(code, None, "low_trip")


def gen_early_exit(rng: np.random.Generator) -> Snippet:
    """Search loop with break — iteration order matters."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    key, pos = names.scalar(), names.scalar()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  if ({a}[{i}] == {key}) {{\n"
        f"    {pos} = {i};\n"
        f"    break;\n"
        f"  }}"
    )
    return Snippet(code, None, "early_exit")


def gen_rand_loop(rng: np.random.Generator) -> Snippet:
    """rand() carries hidden global state."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    modv = _rint(rng, 10, 1000)
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {a}[{i}] = rand() % {modv};"
    return Snippet(code, None, "rand_loop")


def gen_scalar_carried(rng: np.random.Generator) -> Snippet:
    """Scalar fixpoint iteration: x_{i+1} = f(x_i)."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, x, a = names.iter_var(), names.bound(), names.scalar(), names.array()
    expr = _pick(rng, [
        f"0.5 * ({x} + {a}[{i}] / {x})",
        f"{x} * 0.9 + {a}[{i}] * 0.1",
        f"{x} + {a}[{i}] * {x}",
    ])
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {x} = {expr};"
    return Snippet(code, None, "scalar_carried")


def gen_side_effect_call(rng: np.random.Generator) -> Snippet:
    """Callee mutates global state; implementation included in the record."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    fn = names.func()
    counter = _pick(rng, ["counter", "total_calls", "g_hits", "nseen"])
    code = (
        f"void {fn}(int v) {{\n"
        f"  {counter} += v;\n"
        f"}}\n"
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  {fn}({a}[{i}]);"
    )
    return Snippet(code, None, "side_effect_call")


def gen_anti_dep(rng: np.random.Generator) -> Snippet:
    """Carried anti-dependence: reads a[i+1] that a later iteration writes."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    expr = _pick(rng, [
        f"{a}[{i}+1] * 0.5",
        f"({a}[{i}] + {a}[{i}+1]) / 2",
        f"{a}[{i}+1]",
    ])
    code = f"for ({i} = 0; {i} < {n} - 1; {i}++)\n  {a}[{i}] = {expr};"
    return Snippet(code, None, "anti_dep")


def gen_indirect_write(rng: np.random.Generator) -> Snippet:
    """Scatter through an index array — possible write conflicts."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    a, b = names.array(), names.array()
    idx = _pick(rng, ["idx", "perm", "map", "bucket"])
    op = _pick(rng, ["+=", "=", "+="])
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {a}[{idx}[{i}]] {op} {b}[{i}];"
    return Snippet(code, None, "indirect_write")


def gen_char_state(rng: np.random.Generator) -> Snippet:
    """Character-by-character scan with carried state."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    s = _pick(rng, ["str", "text", "line", "buf"])
    state, count = names.scalar(), names.scalar()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  if ({s}[{i}] == ' ' && {state} == 0)\n"
        f"    {count}++;\n"
        f"  {state} = {s}[{i}] == ' ' ? 0 : 1;\n"
        f"}}"
    )
    return Snippet(code, None, "char_state")


def gen_file_read(rng: np.random.Generator) -> Snippet:
    """Sequential file reads."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, buf = names.iter_var(), names.bound(), names.array()
    fp = _pick(rng, ["fp", "infile", "stream"])
    kind = _rint(rng, 0, 1)
    if kind == 0:
        body = f"{buf}[{i}] = fgetc({fp});"
    else:
        body = f'fscanf({fp}, "%d", &{buf}[{i}]);'
    code = f"for ({i} = 0; {i} < {n}; {i}++)\n  {body}"
    return Snippet(code, None, "file_read")


def gen_running_stat(rng: np.random.Generator) -> Snippet:
    """Welford-style running statistic — order-dependent updates."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    a = names.array()
    mean, delta = names.scalar(), names.scalar()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {delta} = {a}[{i}] - {mean};\n"
        f"  {mean} += {delta} / ({i} + 1);\n"
        f"}}"
    )
    return Snippet(code, None, "running_stat")


def gen_malloc_loop(rng: np.random.Generator) -> Snippet:
    """Allocation and bookkeeping inside the loop."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    rows = names.array()
    m = names.bound()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {rows}[{i}] = malloc({m} * sizeof(double));\n"
        f"  nalloc++;\n"
        f"}}"
    )
    return Snippet(code, None, "malloc_loop")


def gen_max_index(rng: np.random.Generator) -> Snippet:
    """argmax keeps both value and index — devs rarely parallelize these."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n, a = names.iter_var(), names.bound(), names.array()
    best, besti = names.scalar(), names.scalar()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  if ({a}[{i}] > {best}) {{\n"
        f"    {best} = {a}[{i}];\n"
        f"    {besti} = {i};\n"
        f"  }}"
    )
    return Snippet(code, None, "max_index")


#: Trivial kernels are the ones developers skip annotating most often.
_UNANNOTATED_BIAS = {
    "gen_init_1d": 2.5,
    "gen_copy_scale": 2.5,
    "gen_elementwise": 2.0,
    "gen_stencil_1d": 2.0,
    "gen_first_touch": 3.0,
    "gen_low_trip": 0.0,
}


def gen_unannotated_parallel(rng: np.random.Generator) -> Snippet:
    """Dependence-parallelizable loops that developers never annotated.

    The paper's negatives are 'code without OpenMP directives in files where
    such directives exist elsewhere' (§3.1.1) — in real projects a large
    share of those *would* pass data-dependence tests.  This family is what
    drives the S2S compilers' low precision (Table 8).

    Why developers skip them is itself a signal learned models can use:
    these are trivial bookkeeping loops in non-HPC-style code (idiosyncratic
    naming, _NEG_IDIO), not numerical kernels.  Dependence analysis cannot
    see that distinction — ComPar inserts directives on all of them.
    """
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    dst, src = names.array(), names.array()
    kind = _rint(rng, 0, 4)
    if kind == 0:
        body = f"{dst}[{i}] = 0;"
    elif kind == 1:
        body = f"{dst}[{i}] = {src}[{i}];"
    elif kind == 2:
        body = f"{dst}[{i}] = {src}[{i}] {_pick(rng, ['+', '*', '-'])} {_rint(rng, 1, 9)};"
    elif kind == 3:
        body = f"{dst}[{i}] = {i} % {_rint(rng, 2, 32)};"
    else:
        body = f"{dst}[{i}] = ({src}[{i}] > 0) ? {src}[{i}] : 0;"
    code = f"for ({i} = 0; {i} {_cmp(rng)} {n}; {_incr(rng, i)})\n  {body}"
    return Snippet(code, None, "unannotated_parallel")


def gen_unannotated_hard(rng: np.random.Generator) -> Snippet:
    """A smaller truly-ambiguous mass: snippets drawn verbatim from the
    positive families with the directive stripped — indistinguishable from
    positives by any feature, setting a realistic error floor (Table 12 #4
    is exactly such a case)."""
    weights = np.array([
        w * _UNANNOTATED_BIAS.get(fn.__name__, 1.0) for w, fn in POSITIVE_FAMILIES
    ])
    weights /= weights.sum()
    idx = int(rng.choice(len(POSITIVE_FAMILIES), p=weights))
    snip = POSITIVE_FAMILIES[idx][1](rng)
    return Snippet(snip.code, None, f"unannotated_{snip.family}")


def gen_gauss_elim(rng: np.random.Generator) -> Snippet:
    """LU/Gaussian-elimination-style triangular update — carried dependence
    across the outer loop, despite thoroughly HPC-conventional style.
    Teaches models that naming alone does not imply parallelizability."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j, k = names.iter_var(), names.iter_var(), names.iter_var()
    n, a = names.bound(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++)\n"
        f"  for ({j} = 0; {j} < {i}; {j}++) {{\n"
        f"    for ({k} = 0; {k} < {j}; {k}++)\n"
        f"      {a}[{i}][{j}] -= {a}[{i}][{k}] * {a}[{k}][{j}];\n"
        f"    {a}[{i}][{j}] /= {a}[{j}][{j}];\n"
        f"  }}"
    )
    return Snippet(code, None, "gauss_elim")


def gen_back_subst(rng: np.random.Generator) -> Snippet:
    """Triangular solve: x[i] depends on all earlier x[j] — sequential."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n = names.bound()
    x, b, l = names.array(), names.array(), names.array()
    code = (
        f"for ({i} = 0; {i} < {n}; {i}++) {{\n"
        f"  {x}[{i}] = {b}[{i}];\n"
        f"  for ({j} = 0; {j} < {i}; {j}++)\n"
        f"    {x}[{i}] -= {l}[{i}][{j}] * {x}[{j}];\n"
        f"  {x}[{i}] = {x}[{i}] / {l}[{i}][{i}];\n"
        f"}}"
    )
    return Snippet(code, None, "back_subst")


def gen_wavefront(rng: np.random.Generator) -> Snippet:
    """Wavefront/Seidel-style in-place stencil: reads neighbours written by
    earlier iterations of the same loop — carried in both dimensions."""
    names = NamePool(rng, idiosyncratic=_POS_IDIO)
    i, j = names.iter_var(), names.iter_var()
    n, a = names.bound(), names.array()
    kind = _rint(rng, 0, 1)
    if kind == 0:
        body = f"{a}[{i}][{j}] = ({a}[{i}-1][{j}] + {a}[{i}][{j}-1]) * 0.5;"
    else:
        body = (f"{a}[{i}][{j}] = ({a}[{i}-1][{j}-1] + {a}[{i}-1][{j}] + "
                f"{a}[{i}][{j}-1] + {a}[{i}][{j}]) / 4.0;")
    code = (
        f"for ({i} = 1; {i} < {n}; {i}++)\n"
        f"  for ({j} = 1; {j} < {n}; {j}++)\n"
        f"    {body}"
    )
    return Snippet(code, None, "wavefront")


def gen_long_sequential(rng: np.random.Generator) -> Snippet:
    """A wide loop body with one carried dependence buried among independent
    statements — a hard negative for order-free models."""
    names = NamePool(rng, idiosyncratic=_NEG_IDIO)
    i, n = names.iter_var(), names.bound()
    n_stmts = _rint(rng, 8, 40)
    arrays = names.arrays(min(5, 2 + n_stmts // 8))
    carrier = arrays[0]
    dep_pos = _rint(rng, 0, n_stmts - 1)
    lines = []
    for s in range(n_stmts):
        if s == dep_pos:
            lines.append(f"  {carrier}[{i}] = {carrier}[{i}-1] + {arrays[-1]}[{i}];")
        else:
            dst = arrays[s % len(arrays)]
            src = arrays[(s + 1) % len(arrays)]
            lines.append(f"  {dst}[{i}] = {_arith_expr(rng, [f'{src}[{i}]', i], depth=1)};")
    body = "\n".join(lines)
    code = f"for ({i} = 1; {i} < {n}; {i}++) {{\n{body}\n}}"
    return Snippet(code, None, "long_sequential")


# ===========================================================================
# Families excluded by the corpus criteria (§3.1.2) — generated only to
# exercise the builder's exclusion logic.
# ===========================================================================


def gen_empty_loop_omp(rng: np.random.Generator) -> Snippet:
    """Compiler-compatibility test snippets: annotated empty loops."""
    names = NamePool(rng)
    i, n = names.iter_var(), names.bound()
    code = f"for ({i} = 0; {i} < {n}; {i}++);"
    return Snippet(code, _PLAIN, "empty_loop_omp")


def gen_task_directive(rng: np.random.Generator) -> Snippet:
    """``task`` construct — excluded because it needs program-logic knowledge."""
    names = NamePool(rng)
    fn = names.func()
    x = names.scalar()
    code = f"{fn}({x});"
    return Snippet(code, "#pragma omp task", "task_directive")


def gen_non_loop_directive(rng: np.random.Generator) -> Snippet:
    """A non-loop OpenMP construct (critical section)."""
    names = NamePool(rng)
    acc, x = names.scalar(), names.scalar()
    code = f"{acc} = {acc} + {x};"
    return Snippet(code, "#pragma omp critical", "non_loop_directive")


# ===========================================================================
# Registries
# ===========================================================================

#: (weight, generator); weights are normalized at sampling time.  Calibrated
#: against Table 3: ~45 % of directives carry private, ~19 % reduction,
#: ~5 % schedule(dynamic).
POSITIVE_FAMILIES: List[Tuple[float, GenFn]] = [
    (0.10, gen_init_1d),
    (0.11, gen_elementwise),
    (0.06, gen_copy_scale),
    (0.12, gen_nested_2d),
    (0.03, gen_polybench_style),
    (0.05, gen_matmul),
    (0.07, gen_stencil),
    (0.04, gen_stencil_1d),
    (0.05, gen_image_op),
    (0.05, gen_private_temp),
    (0.05, gen_reduction_sum),
    (0.03, gen_dot_product),
    (0.02, gen_norm),
    (0.05, gen_minmax),
    (0.03, gen_reduction_2d),
    (0.05, gen_unbalanced),
    (0.02, gen_triangular),
    (0.06, gen_pure_func_call),
    (0.08, gen_helper_call),
    (0.03, gen_struct_update),
    (0.03, gen_first_touch),
    (0.03, gen_multi_array),
    (0.07, gen_long_elementwise),
    (0.04, gen_big_pure_kernel),
]

NEGATIVE_FAMILIES: List[Tuple[float, GenFn]] = [
    (0.12, gen_recurrence),
    (0.08, gen_prefix_sum),
    (0.13, gen_io_loop),
    (0.05, gen_pointer_chase),
    (0.10, gen_low_trip),
    (0.08, gen_early_exit),
    (0.05, gen_rand_loop),
    (0.07, gen_scalar_carried),
    (0.07, gen_side_effect_call),
    (0.06, gen_anti_dep),
    (0.06, gen_indirect_write),
    (0.04, gen_char_state),
    (0.04, gen_file_read),
    (0.04, gen_running_stat),
    (0.02, gen_malloc_loop),
    (0.03, gen_max_index),
    (0.10, gen_long_sequential),
    # HPC-styled carried-dependence kernels (LU, trisolv, Seidel): naming
    # looks parallel, the subscripts say otherwise
    (0.07, gen_gauss_elim),
    (0.06, gen_back_subst),
    (0.06, gen_wavefront),
    # ~35 % of negatives are parallelizable-but-unannotated: mostly trivial
    # non-HPC-style loops (learnable), plus a truly ambiguous error floor
    (0.60, gen_unannotated_parallel),
    (0.16, gen_unannotated_hard),
]

EXCLUDED_FAMILIES: List[Tuple[float, GenFn]] = [
    (0.5, gen_empty_loop_omp),
    (0.3, gen_task_directive),
    (0.2, gen_non_loop_directive),
]


def _sample_from(rng: np.random.Generator, families: List[Tuple[float, GenFn]]) -> Snippet:
    weights = np.array([w for w, _ in families], dtype=np.float64)
    weights /= weights.sum()
    idx = int(rng.choice(len(families), p=weights))
    return families[idx][1](rng)


def sample_snippet(rng: RngLike, positive: bool) -> Snippet:
    """Draw one snippet from the positive or negative family mixture."""
    gen = ensure_rng(rng)
    return _sample_from(gen, POSITIVE_FAMILIES if positive else NEGATIVE_FAMILIES)


def sample_excluded_snippet(rng: RngLike) -> Snippet:
    """Draw a snippet that the corpus criteria must reject."""
    return _sample_from(ensure_rng(rng), EXCLUDED_FAMILIES)


def family_names() -> List[str]:
    """All family identifiers, for stratified reporting."""
    out = []
    for _, fn in POSITIVE_FAMILIES + NEGATIVE_FAMILIES:
        out.append(fn.__name__.replace("gen_", ""))
    return out
