"""The Open-OMP corpus substrate: synthetic snippet generation, criteria,
deduplication, on-disk records, and the statistics of Tables 3–4 / Figure 3.
"""

from repro.corpus.builder import Corpus, CorpusConfig, build_corpus
from repro.corpus.generators import (
    NEGATIVE_FAMILIES,
    POSITIVE_FAMILIES,
    family_names,
    sample_excluded_snippet,
    sample_snippet,
)
from repro.corpus.naming import NamePool
from repro.corpus.records import Record, Snippet, load_records, save_records
from repro.corpus.stats import directive_stats, domain_distribution, length_histogram

__all__ = [
    "Corpus",
    "CorpusConfig",
    "build_corpus",
    "POSITIVE_FAMILIES",
    "NEGATIVE_FAMILIES",
    "family_names",
    "sample_snippet",
    "sample_excluded_snippet",
    "NamePool",
    "Record",
    "Snippet",
    "save_records",
    "load_records",
    "directive_stats",
    "length_histogram",
    "domain_distribution",
]
