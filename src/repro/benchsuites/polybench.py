"""A PolyBench-like suite (§5.4, Table 11).

30 kernels modelled on the polyhedral benchmark suite, yielding — as in the
paper — **64 snippets with OpenMP directives and 83 without**.  Parallel
snippets are the outer loops of gemm/jacobi/atax-style kernels annotated as
in PolyBench-ACC; sequential ones are the carried-dependence kernels
(cholesky, durbin, lu, seidel, trisolv, nussinov …).

PolyBench's signature ``POLYBENCH_LOOP_BOUND`` macros and ``_PB_*`` bound
names are kept: they are exactly what breaks the S2S compilers' parsers
(ComPar scores 0.43 here, Table 11) while remaining ordinary tokens for the
learned models.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.corpus.records import Record

__all__ = ["polybench_suite", "POLYBENCH_KERNELS"]

_P = "#pragma omp parallel for"

#: dataset-size variants PolyBench ships; used to derive snippet variants
_SIZES = ["MINI", "SMALL", "MEDIUM", "LARGE", "EXTRALARGE"]

# (kernel, parallel?, directive, code template with {n} bound placeholder)
POLYBENCH_KERNELS: List[Tuple[str, bool, str, str]] = [
    ("gemm", True, f"{_P} private(j, k)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, ni); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, nj); j++) {{\n"
     "    C[i][j] *= beta;\n"
     "    for (k = 0; k < POLYBENCH_LOOP_BOUND({n}, nk); k++)\n"
     "      C[i][j] += alpha * A[i][k] * B[k][j];\n"
     "  }}"),
    ("2mm", True, f"{_P} private(j, k)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, ni); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, nj); j++) {{\n"
     "    tmp[i][j] = 0;\n"
     "    for (k = 0; k < POLYBENCH_LOOP_BOUND({n}, nk); ++k)\n"
     "      tmp[i][j] += alpha * A[i][k] * B[k][j];\n"
     "  }}"),
    ("3mm", True, f"{_P} private(j, k)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, ni); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, nj); j++) {{\n"
     "    E[i][j] = 0;\n"
     "    for (k = 0; k < POLYBENCH_LOOP_BOUND({n}, nk); ++k)\n"
     "      E[i][j] += A[i][k] * B[k][j];\n"
     "  }}"),
    ("atax", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, nx); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, ny); j++)\n"
     "    tmp[i] = tmp[i] + (A[i][j] * x[j]);"),
    ("bicg", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, nx); i++) {{\n"
     "  q[i] = 0;\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, ny); j++)\n"
     "    q[i] = q[i] + (A[i][j] * p[j]);\n"
     "}}"),
    ("mvt", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, n); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++)\n"
     "    x1[i] = x1[i] + (A[i][j] * y_1[j]);"),
    ("gemver", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, n); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++)\n"
     "    A[i][j] = A[i][j] + (u1[i] * v1[j]) + (u2[i] * v2[j]);"),
    ("gesummv", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, n); i++) {{\n"
     "  tmp[i] = 0;\n"
     "  y[i] = 0;\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++) {{\n"
     "    tmp[i] = (A[i][j] * x[j]) + tmp[i];\n"
     "    y[i] = (B[i][j] * x[j]) + y[i];\n"
     "  }}\n"
     "}}"),
    ("syrk", True, f"{_P} private(j, k)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, n); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++) {{\n"
     "    C[i][j] *= beta;\n"
     "    for (k = 0; k < POLYBENCH_LOOP_BOUND({n}, m); k++)\n"
     "      C[i][j] += alpha * A[i][k] * A[j][k];\n"
     "  }}"),
    ("syr2k", True, f"{_P} private(j, k)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, n); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++)\n"
     "    for (k = 0; k < POLYBENCH_LOOP_BOUND({n}, m); k++)\n"
     "      C[i][j] += A[j][k] * B[i][k] + B[j][k] * A[i][k];"),
    ("doitgen", True, f"{_P} private(q, p, s)",
     "for (r = 0; r < POLYBENCH_LOOP_BOUND({n}, nr); r++)\n"
     "  for (q = 0; q < POLYBENCH_LOOP_BOUND({n}, nq); q++)\n"
     "    for (p = 0; p < POLYBENCH_LOOP_BOUND({n}, np); p++) {{\n"
     "      sum[r][q][p] = 0;\n"
     "      for (s = 0; s < POLYBENCH_LOOP_BOUND({n}, np); s++)\n"
     "        sum[r][q][p] += A[r][q][s] * C4[s][p];\n"
     "    }}"),
    ("jacobi-1d", True, _P,
     "for (i = 1; i < POLYBENCH_LOOP_BOUND({n}, n) - 1; i++)\n"
     "  B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);"),
    ("jacobi-2d", True, f"{_P} private(j)",
     "for (i = 1; i < POLYBENCH_LOOP_BOUND({n}, n) - 1; i++)\n"
     "  for (j = 1; j < POLYBENCH_LOOP_BOUND({n}, n) - 1; j++)\n"
     "    B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][1+j] + A[1+i][j] + A[i-1][j]);"),
    ("fdtd-2d", True, f"{_P} private(j)",
     "for (i = 1; i < POLYBENCH_LOOP_BOUND({n}, nx); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, ny); j++)\n"
     "    hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);"),
    ("heat-3d", True, f"{_P} private(j, k)",
     "for (i = 1; i < POLYBENCH_LOOP_BOUND({n}, n) - 1; i++)\n"
     "  for (j = 1; j < POLYBENCH_LOOP_BOUND({n}, n) - 1; j++)\n"
     "    for (k = 1; k < POLYBENCH_LOOP_BOUND({n}, n) - 1; k++)\n"
     "      B[i][j][k] = 0.125 * (A[i+1][j][k] - 2.0 * A[i][j][k] + A[i-1][j][k])"
     " + A[i][j][k];"),
    ("correlation", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, m); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++)\n"
     "    data[i][j] = (data[i][j] - mean[j]) / stddev[j];"),
    ("covariance", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, m); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, n); j++)\n"
     "    data[i][j] -= mean[j];"),
    ("deriche", True, f"{_P} private(j)",
     "for (i = 0; i < POLYBENCH_LOOP_BOUND({n}, w); i++)\n"
     "  for (j = 0; j < POLYBENCH_LOOP_BOUND({n}, h); j++)\n"
     "    imgOut[i][j] = c1 * (y1[i][j] + y2[i][j]);"),
    # -- sequential kernels (no directive in PolyBench-ACC) ------------------
    ("cholesky", False, "",
     "for (i = 0; i < _PB_N; i++) {{\n"
     "  for (j = 0; j < i; j++) {{\n"
     "    for (k = 0; k < j; k++)\n"
     "      A[i][j] -= A[i][k] * A[j][k];\n"
     "    A[i][j] /= A[j][j];\n"
     "  }}\n"
     "}}"),
    ("durbin", False, "",
     "for (k = 1; k < _PB_N; k++) {{\n"
     "  beta = (1 - alpha * alpha) * beta;\n"
     "  sum = 0.0;\n"
     "  for (i = 0; i < k; i++)\n"
     "    sum += r[k - i - 1] * y[i];\n"
     "  alpha = -(r[k] + sum) / beta;\n"
     "}}"),
    ("gramschmidt", False, "",
     "for (k = 0; k < _PB_N; k++) {{\n"
     "  nrm = 0.0;\n"
     "  for (i = 0; i < _PB_M; i++)\n"
     "    nrm += A[i][k] * A[i][k];\n"
     "  R[k][k] = sqrt(nrm);\n"
     "}}"),
    ("lu", False, "",
     "for (i = 0; i < _PB_N; i++)\n"
     "  for (j = 0; j < i; j++) {{\n"
     "    for (k = 0; k < j; k++)\n"
     "      A[i][j] -= A[i][k] * A[k][j];\n"
     "    A[i][j] /= A[j][j];\n"
     "  }}"),
    ("ludcmp", False, "",
     "for (i = 0; i < _PB_N; i++) {{\n"
     "  w = b[i];\n"
     "  for (j = 0; j < i; j++)\n"
     "    w -= A[i][j] * y[j];\n"
     "  y[i] = w;\n"
     "}}"),
    ("trisolv", False, "",
     "for (i = 0; i < _PB_N; i++) {{\n"
     "  x[i] = b[i];\n"
     "  for (j = 0; j < i; j++)\n"
     "    x[i] -= L[i][j] * x[j];\n"
     "  x[i] = x[i] / L[i][i];\n"
     "}}"),
    ("trmm", False, "",
     "for (i = 0; i < _PB_M; i++)\n"
     "  for (j = 0; j < _PB_N; j++) {{\n"
     "    for (k = i + 1; k < _PB_M; k++)\n"
     "      B[i][j] += A[k][i] * B[k][j];\n"
     "    B[i][j] = alpha * B[i][j];\n"
     "  }}"),
    ("symm", False, "",
     "for (i = 0; i < _PB_M; i++)\n"
     "  for (j = 0; j < _PB_N; j++) {{\n"
     "    temp2 = 0;\n"
     "    for (k = 0; k < i; k++) {{\n"
     "      C[k][j] += alpha * B[i][j] * A[i][k];\n"
     "      temp2 += B[k][j] * A[i][k];\n"
     "    }}\n"
     "    C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;\n"
     "  }}"),
    ("seidel-2d", False, "",
     "for (i = 1; i <= _PB_N - 2; i++)\n"
     "  for (j = 1; j <= _PB_N - 2; j++)\n"
     "    A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1] + A[i][j-1]"
     " + A[i][j] + A[i][j+1] + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0;"),
    ("adi", False, "",
     "for (i = 1; i < _PB_N - 1; i++) {{\n"
     "  v[0][i] = 1.0;\n"
     "  p[i][0] = 0.0;\n"
     "  for (j = 1; j < _PB_N - 1; j++)\n"
     "    p[i][j] = -c / (a * p[i][j-1] + b);\n"
     "}}"),
    ("floyd-warshall", False, "",
     "for (k = 0; k < _PB_N; k++)\n"
     "  for (i = 0; i < _PB_N; i++)\n"
     "    for (j = 0; j < _PB_N; j++)\n"
     "      path[i][j] = path[i][j] < path[i][k] + path[k][j]"
     " ? path[i][j] : path[i][k] + path[k][j];"),
    ("nussinov", False, "",
     "for (i = _PB_N - 1; i >= 0; i--)\n"
     "  for (j = i + 1; j < _PB_N; j++)\n"
     "    table[i][j] = table[i][j] > table[i][j-1] ? table[i][j] : table[i][j-1];"),
]


def polybench_suite() -> List[Record]:
    """The 147 snippets: 64 with directives, 83 without (Table 11 counts).

    Variants are derived deterministically from the kernels by instantiating
    PolyBench dataset sizes; sequential kernels additionally get epilogue /
    initialization variants (also unannotated in the original suite).
    """
    records: List[Record] = []
    uid = 0
    parallel = [k for k in POLYBENCH_KERNELS if k[1]]
    sequential = [k for k in POLYBENCH_KERNELS if not k[1]]

    # 64 positives: cycle kernels x sizes
    sizes = [s for s in ("16", "400", "1000", "4000")]
    while len(records) < 64:
        kernel, _, directive, template = parallel[len(records) % len(parallel)]
        size = sizes[(len(records) // len(parallel)) % len(sizes)]
        code = template.format(n=size)
        records.append(Record(uid, code, directive, "benchmark", f"poly_{kernel}"))
        uid += 1

    # 83 negatives: sequential kernels + their init/print epilogues
    neg_extras = [
        "for (i = 0; i < _PB_N; i++) {{\n"
        "  fprintf(stderr, \"%0.2lf \", x[{v}]);\n"
        "  if ((i % 20) == 0)\n    fprintf(stderr, \" \\n\");\n}}",
        "for (i = 0; i < {s}; i++)\n  A[i] = i;",
        "for (i = 1; i < _PB_N; i++)\n  x[i] = x[i-1] * 0.5 + b[i];",
    ]
    n_neg = 0
    while n_neg < 83:
        if n_neg % 3 != 2:
            kernel, _, _, template = sequential[n_neg % len(sequential)]
            code = template.format(n="4000")
            # derive distinct variants by renaming the bound macro
            suffix = n_neg // len(sequential)
            if suffix:
                code = code.replace("_PB_N", f"_PB_N{suffix}").replace("_PB_M", f"_PB_M{suffix}")
            records.append(Record(uid, code, None, "benchmark", f"poly_{kernel}"))
        else:
            tmpl = neg_extras[(n_neg // 3) % len(neg_extras)]
            code = tmpl.format(v="i", s=str(4 + (n_neg % 5)))
            records.append(Record(uid, code, None, "benchmark", "poly_util"))
        uid += 1
        n_neg += 1
    return records
