"""A SPEC-OMP-like suite (§5.4, Table 11): 113 snippets with OpenMP and 174
without, bearing production-code traits — ``register`` qualifiers,
``ssize_t``/``IndexPacket`` typedefs, struct member loops (the ImageMagick
example of Table 12 #3) — that break S2S parsers ('ComPar failed to parse
287 snippets from the SPEC-OMP benchmark mainly due to unrecognized
keywords, such as register')."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.corpus.records import Record
from repro.corpus.generators import sample_snippet

__all__ = ["specomp_suite", "SPEC_TEMPLATES"]

_P = "#pragma omp parallel for"

# (name, directive-or-None, code); production-flavoured snippets
SPEC_TEMPLATES: List[Tuple[str, str, str]] = [
    ("magick_colormap", f"{_P} schedule(dynamic,4)",
     "for (i = 0; i < ((ssize_t) image->colors); i++)\n"
     "  image->colormap[i].opacity = (IndexPacket) i;"),
    ("pixel_scale", f"{_P} private(j)",
     "for (y = 0; y < (ssize_t) rows; y++)\n"
     "  for (x = 0; x < (ssize_t) columns; x++)\n"
     "    pixels[y][x] = (Quantum) (scale * pixels[y][x]);"),
    ("register_sum", f"{_P} reduction(+:total)",
     "register int idx;\n"
     "for (idx = 0; idx < nelems; idx++)\n"
     "  total += samples[idx];"),
    ("grid_update", f"{_P} private(j)",
     "for (i = 0; i < grid->nx; i++)\n"
     "  for (j = 0; j < grid->ny; j++)\n"
     "    grid->cells[i][j] = grid->cells[i][j] * damp;"),
    ("energy_accum", f"{_P} reduction(+:energy)",
     "for (i = 0; i < natoms; i++)\n"
     "  energy += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i]);"),
    ("flux_kernel", f"{_P} private(j)",
     "for (i = 1; i < imax - 1; i++)\n"
     "  for (j = 1; j < jmax - 1; j++)\n"
     "    flux[i][j] = 0.5 * (state[i+1][j] - state[i-1][j]) / dx;"),
    ("wave_step", _P,
     "for (i = 1; i < npts - 1; i++)\n"
     "  unew[i] = 2.0 * ucur[i] - uold[i] + c2 * (ucur[i-1] - 2.0 * ucur[i] + ucur[i+1]);"),
    ("smooth_pass", f"{_P} private(x)",
     "for (y = 1; y < (ssize_t) (height - 1); y++)\n"
     "  for (x = 1; x < (ssize_t) (width - 1); x++)\n"
     "    out[y][x] = 0.25 * (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]);"),
    # -- unannotated production code -----------------------------------------
    ("histogram_scan", None,
     "register long i;\n"
     "for (i = 0; i < nbins; i++)\n"
     "  cdf[i] = (i > 0 ? cdf[i-1] : 0) + hist[i];"),
    ("list_walk", None,
     "for (node = queue->head; node != 0; node = node->next)\n"
     "  pending += node->weight;"),
    ("log_flush", None,
     "for (i = 0; i < nmsgs; i++)\n"
     "  fprintf(logfp, \"%s\\n\", messages[i]);"),
    ("token_scan", None,
     "for (i = 0; i < (ssize_t) length; i++) {{\n"
     "  if (text[i] == delim && depth == 0)\n"
     "    ntokens++;\n"
     "  depth = text[i] == open_ch ? depth + 1 : depth;\n"
     "}}"),
    ("checkpoint_write", None,
     "for (i = 0; i < nranks; i++)\n"
     "  fwrite(&state[i], sizeof(double), 1, ckpt);"),
    ("retry_probe", None,
     "for (attempt = 0; attempt < 8; attempt++)\n"
     "  if (probe(attempt))\n    break;"),
    ("pool_alloc", None,
     "for (i = 0; i < npages; i++) {{\n"
     "  pool[i] = malloc(pagesize);\n"
     "  nlive++;\n"
     "}}"),
    ("seed_noise", None,
     "register int k;\n"
     "for (k = 0; k < nsamples; k++)\n"
     "  noise[k] = rand() % 4096;"),
    ("running_mean", None,
     "for (i = 0; i < nticks; i++) {{\n"
     "  delta = price[i] - avg;\n"
     "  avg += delta / (i + 1);\n"
     "}}"),
    ("packet_chain", None,
     "for (i = 1; i < (ssize_t) npackets; i++)\n"
     "  offsets[i] = offsets[i-1] + sizes[i-1];"),
]


def specomp_suite(seed: int = 1234) -> List[Record]:
    """287 snippets: 113 with OpenMP, 174 without (Table 11 counts).

    Template variants are padded with corpus-family draws re-flavoured with
    production traits so the suite reaches the paper's exact counts while
    staying out-of-distribution relative to Open-OMP training data.
    """
    rng = np.random.default_rng(seed)
    records: List[Record] = []
    uid = 0
    pos_templates = [t for t in SPEC_TEMPLATES if t[1] is not None]
    neg_templates = [t for t in SPEC_TEMPLATES if t[1] is None]

    def flavor(code: str, k: int) -> str:
        """Inject production traits into corpus-sampled padding snippets."""
        if k % 3 == 0:
            return "register int _r = 0;\n" + code
        if k % 3 == 1:
            return code.replace("(double)", "(ssize_t)")
        return code

    n_pos = 0
    while n_pos < 113:
        if n_pos < len(pos_templates) * 8:
            name, directive, code = pos_templates[n_pos % len(pos_templates)]
            variant = n_pos // len(pos_templates)
            if variant:
                code = code.replace("i++", f"i += {1}").replace("0.5", f"0.{4 + variant % 5}")
            records.append(Record(uid, code, directive, "benchmark", f"spec_{name}"))
        else:
            snip = sample_snippet(rng, positive=True)
            records.append(Record(uid, flavor(snip.code, n_pos), snip.directive,
                                  "benchmark", f"spec_{snip.family}"))
        uid += 1
        n_pos += 1

    n_neg = 0
    while n_neg < 174:
        if n_neg < len(neg_templates) * 10:
            name, _, code = neg_templates[n_neg % len(neg_templates)]
            variant = n_neg // len(neg_templates)
            if variant:
                code = code.replace("i <", f"i + {variant} <", 1) if "i <" in code else code
            records.append(Record(uid, code, None, "benchmark", f"spec_{name}"))
        else:
            snip = sample_snippet(rng, positive=False)
            records.append(Record(uid, flavor(snip.code, n_neg), None,
                                  "benchmark", f"spec_{snip.family}"))
        uid += 1
        n_neg += 1
    return records
