"""Out-of-distribution evaluation suites: PolyBench-like (64 OpenMP / 83
without) and SPEC-OMP-like (113 / 174), matching Table 11's denominators."""

from repro.benchsuites.polybench import POLYBENCH_KERNELS, polybench_suite
from repro.benchsuites.specomp import SPEC_TEMPLATES, specomp_suite

__all__ = ["POLYBENCH_KERNELS", "polybench_suite", "SPEC_TEMPLATES", "specomp_suite"]
