"""Command-line interface.

Subcommands::

    repro build-corpus --records 2000 --out corpus_dir
    repro train --epochs 8 --save model.npz
    repro advise file.c            # on-the-fly advisor (§2.1)
    repro compar file.c            # run the S2S combiner on a snippet
    repro reproduce table8         # regenerate a paper table/figure
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.tables import format_table

__all__ = ["main"]


def _cmd_build_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig, build_corpus, directive_stats, save_records

    corpus = build_corpus(CorpusConfig(n_records=args.records, seed=args.seed))
    stats = directive_stats(corpus)
    print(format_table(["statistic", "amount"], list(stats.items()),
                       title="Open-OMP corpus (Table 3 statistics)"))
    if args.out:
        save_records(corpus.records, Path(args.out))
        print(f"wrote {len(corpus)} records to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.pipeline import get_context
    from repro.eval import binary_metrics

    ctx = get_context()
    model = ctx.pragformer
    enc = ctx.encoded()
    metrics = binary_metrics(model.predict(enc.test), enc.test.labels)
    print(format_table(["metric", "value"], list(metrics.as_dict().items()),
                       title="PragFormer on the directive test split"))
    if args.save:
        from repro.models import save_pragformer

        save_pragformer(model, enc.vocab, args.save)
        print(f"saved model + vocabulary to {args.save}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.pipeline import get_context
    from repro.tokenize import text_tokens
    from repro.pipeline.experiments import _suite_split
    from repro.corpus.records import Record

    source = Path(args.file).read_text()
    ctx = get_context()
    rec = Record(0, source, None, "unknown", "cli")
    split = _suite_split([rec], ctx)
    proba = float(ctx.pragformer.predict_proba(split)[0, 1])
    verdict = "needs an OpenMP directive" if proba > 0.5 else "no directive needed"
    print(f"PragFormer: {verdict} (p = {proba:.3f})")
    if proba > 0.5:
        for clause in ("private", "reduction"):
            model = ctx.clause_model(clause)
            enc = ctx.clause_encoded(clause)
            ids = enc.vocab.encode(text_tokens(source), max_len=enc.max_len)
            import numpy as np
            from repro.data.encoding import EncodedSplit

            mat = np.full((1, enc.max_len), enc.vocab.pad_id, dtype=np.int64)
            mask = np.zeros((1, enc.max_len))
            mat[0, : len(ids)] = ids
            mask[0, : len(ids)] = 1.0
            p = float(model.predict_proba(EncodedSplit(mat, mask, np.zeros(1, dtype=np.int64)))[0, 1])
            if p > 0.5:
                print(f"  suggest a {clause} clause (p = {p:.3f})")
    return 0


def _cmd_compar(args: argparse.Namespace) -> int:
    from repro.s2s import ComPar

    source = Path(args.file).read_text()
    result = ComPar().run(source)
    if result.parse_failed:
        print("ComPar: parse failure in every sub-compiler")
        for name, res in result.per_compiler.items():
            print(f"  {name}: {res.failure}")
        return 1
    if result.inserted:
        print(f"ComPar inserts: {result.directive}")
    else:
        print("ComPar: no directive (loop judged not parallelizable)")
        for name, res in result.per_compiler.items():
            if res.analysis is not None and res.analysis.reasons:
                print(f"  {name}: {'; '.join(res.analysis.reasons)}")
    return 0


_EXPERIMENTS = {
    "table3": "exp_table3", "table4": "exp_table4", "fig3": "exp_fig3",
    "table5": "exp_table5", "table7": "exp_table7", "fig456": "exp_fig456",
    "table8": "exp_table8", "fig7": "exp_fig7", "table9": "exp_table9",
    "table10": "exp_table10", "table11": "exp_table11",
    "table12": "exp_table12_fig8",
}


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.pipeline import experiments

    fn = getattr(experiments, _EXPERIMENTS[args.experiment])
    result = fn()
    print(json.dumps(result, indent=2, default=str))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PragFormer reproduction: corpus, models, S2S compilers, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("build-corpus", help="generate the Open-OMP corpus")
    p_corpus.add_argument("--records", type=int, default=2000)
    p_corpus.add_argument("--seed", type=int, default=0)
    p_corpus.add_argument("--out", type=str, default="")
    p_corpus.set_defaults(fn=_cmd_build_corpus)

    p_train = sub.add_parser("train", help="train PragFormer on the directive task")
    p_train.add_argument("--save", type=str, default="")
    p_train.set_defaults(fn=_cmd_train)

    p_advise = sub.add_parser("advise", help="advise OpenMP use for a C snippet file")
    p_advise.add_argument("file")
    p_advise.set_defaults(fn=_cmd_advise)

    p_compar = sub.add_parser("compar", help="run the ComPar S2S combiner on a file")
    p_compar.add_argument("file")
    p_compar.set_defaults(fn=_cmd_compar)

    p_rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p_rep.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    p_rep.set_defaults(fn=_cmd_reproduce)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
