"""Command-line interface.

Subcommands::

    repro build-corpus --records 2000 --out corpus_dir
    repro train --epochs 8 --save model.npz
    repro advise file.c            # on-the-fly advisor (§2.1)
    repro advise --batch *.c       # batched advisor over many snippets
    repro serve < requests.jsonl   # JSON-lines serving loop on stdin
    repro compar file.c            # run the S2S combiner on a snippet
    repro reproduce table8         # regenerate a paper table/figure

Serving (``serve`` and ``advise --batch``) goes through
:class:`repro.serve.InferenceEngine`: snippets are tokenized once, packed
into length-sorted micro-batches (``--batch-size``, default 128) so padding
work is bounded by each bucket's longest row, and predictions are memoized
in a bounded LRU keyed by the token-id digest (``--cache-size``, default
4096; 0 disables).  ``serve`` reads one JSON object per stdin line —
``{"id": ..., "code": "..."}``, or a bare path to a C file — and writes one
JSON verdict per line; ``--stats`` dumps engine counters to stderr at EOF.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.tables import format_table

__all__ = ["main"]


def _cmd_build_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig, build_corpus, directive_stats, save_records

    corpus = build_corpus(CorpusConfig(n_records=args.records, seed=args.seed))
    stats = directive_stats(corpus)
    print(format_table(["statistic", "amount"], list(stats.items()),
                       title="Open-OMP corpus (Table 3 statistics)"))
    if args.out:
        save_records(corpus.records, Path(args.out))
        print(f"wrote {len(corpus)} records to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.pipeline import get_context
    from repro.eval import binary_metrics

    ctx = get_context()
    model = ctx.pragformer
    enc = ctx.encoded()
    metrics = binary_metrics(model.predict(enc.test), enc.test.labels)
    print(format_table(["metric", "value"], list(metrics.as_dict().items()),
                       title="PragFormer on the directive test split"))
    if args.save:
        from repro.models import save_pragformer

        save_pragformer(model, enc.vocab, args.save)
        print(f"saved model + vocabulary to {args.save}")
    return 0


def _make_engine(args: argparse.Namespace):
    from repro.pipeline import get_context
    from repro.serve import EngineConfig, InferenceEngine

    ctx = get_context()
    enc = ctx.encoded()
    config = EngineConfig(max_batch_size=getattr(args, "batch_size", 128),
                          cache_capacity=getattr(args, "cache_size", 4096))
    engine = InferenceEngine(ctx.pragformer, enc.vocab,
                             max_len=ctx.scale.pragformer.max_len, config=config)
    return ctx, engine


def _clause_suggestions(ctx, sources):
    """Per-source list of (clause, probability) suggestions, batched per
    clause model."""
    from repro.data.encoding import encode_batch
    from repro.tokenize import text_tokens

    suggestions = [[] for _ in sources]
    if not sources:
        return suggestions
    for clause in ("private", "reduction"):
        model = ctx.clause_model(clause)
        enc = ctx.clause_encoded(clause)
        split = encode_batch([text_tokens(s) for s in sources], enc.vocab, enc.max_len)
        probs = model.predict_proba(split)[:, 1]
        for i, p in enumerate(probs):
            if p > 0.5:
                suggestions[i].append((clause, float(p)))
    return suggestions


def _cmd_advise(args: argparse.Namespace) -> int:
    paths = [Path(f) for f in args.files]
    sources = [p.read_text() for p in paths]
    ctx, engine = _make_engine(args)
    advice = engine.advise_many(sources)
    positive = [i for i, a in enumerate(advice) if a.needs_directive]
    per_source = _clause_suggestions(ctx, [sources[i] for i in positive])
    clause_rows = dict(zip(positive, per_source))
    prefix_paths = args.batch or len(paths) > 1
    for i, (path, a) in enumerate(zip(paths, advice)):
        verdict = "needs an OpenMP directive" if a.needs_directive else "no directive needed"
        lead = f"{path}: " if prefix_paths else "PragFormer: "
        print(f"{lead}{verdict} (p = {a.probability:.3f})")
        for clause, p in clause_rows.get(i, []):
            print(f"  suggest a {clause} clause (p = {p:.3f})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    ctx, engine = _make_engine(args)

    def requests():
        # one bad request must not kill the serving loop: parse errors are
        # reported as JSON error lines and the stream continues
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            req = None
            try:
                if line.startswith("{"):
                    req = json.loads(line)
                    if not isinstance(req.get("code"), str):
                        raise ValueError("request needs a string 'code' field")
                else:
                    req = {"id": line, "code": Path(line).read_text()}
            except (OSError, ValueError) as exc:
                rid = req.get("id") if isinstance(req, dict) else line[:80]
                print(json.dumps({"id": rid, "error": str(exc)}))
                continue
            yield req

    batch = []

    def flush():
        if not batch:
            return
        for req, advice in zip(batch, engine.advise_many([r["code"] for r in batch])):
            print(json.dumps({
                "id": req.get("id"),
                "needs_directive": advice.needs_directive,
                "p_directive": round(advice.probability, 6),
            }))
        sys.stdout.flush()
        batch.clear()

    for req in requests():
        batch.append(req)
        if len(batch) >= args.batch_size:
            flush()
    flush()
    if args.stats:
        print(json.dumps(engine.stats.as_dict()), file=sys.stderr)
    return 0


def _cmd_compar(args: argparse.Namespace) -> int:
    from repro.s2s import ComPar

    source = Path(args.file).read_text()
    result = ComPar().run(source)
    if result.parse_failed:
        print("ComPar: parse failure in every sub-compiler")
        for name, res in result.per_compiler.items():
            print(f"  {name}: {res.failure}")
        return 1
    if result.inserted:
        print(f"ComPar inserts: {result.directive}")
    else:
        print("ComPar: no directive (loop judged not parallelizable)")
        for name, res in result.per_compiler.items():
            if res.analysis is not None and res.analysis.reasons:
                print(f"  {name}: {'; '.join(res.analysis.reasons)}")
    return 0


_EXPERIMENTS = {
    "table3": "exp_table3", "table4": "exp_table4", "fig3": "exp_fig3",
    "table5": "exp_table5", "table7": "exp_table7", "fig456": "exp_fig456",
    "table8": "exp_table8", "fig7": "exp_fig7", "table9": "exp_table9",
    "table10": "exp_table10", "table11": "exp_table11",
    "table12": "exp_table12_fig8",
}


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.pipeline import experiments

    fn = getattr(experiments, _EXPERIMENTS[args.experiment])
    result = fn()
    print(json.dumps(result, indent=2, default=str))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PragFormer reproduction: corpus, models, S2S compilers, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("build-corpus", help="generate the Open-OMP corpus")
    p_corpus.add_argument("--records", type=int, default=2000)
    p_corpus.add_argument("--seed", type=int, default=0)
    p_corpus.add_argument("--out", type=str, default="")
    p_corpus.set_defaults(fn=_cmd_build_corpus)

    p_train = sub.add_parser("train", help="train PragFormer on the directive task")
    p_train.add_argument("--save", type=str, default="")
    p_train.set_defaults(fn=_cmd_train)

    p_advise = sub.add_parser("advise", help="advise OpenMP use for C snippet file(s)")
    p_advise.add_argument("files", nargs="+")
    p_advise.add_argument("--batch", action="store_true",
                          help="batched output (implied by multiple files)")
    p_advise.add_argument("--batch-size", type=int, default=128)
    p_advise.add_argument("--cache-size", type=int, default=4096)
    p_advise.set_defaults(fn=_cmd_advise)

    p_serve = sub.add_parser(
        "serve", help="JSON-lines advisor loop on stdin (see module docstring)")
    p_serve.add_argument("--batch-size", type=int, default=128,
                         help="micro-batch size for the inference engine")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="LRU prediction-cache capacity (0 disables)")
    p_serve.add_argument("--stats", action="store_true",
                         help="dump engine counters to stderr at EOF")
    p_serve.set_defaults(fn=_cmd_serve)

    p_compar = sub.add_parser("compar", help="run the ComPar S2S combiner on a file")
    p_compar.add_argument("file")
    p_compar.set_defaults(fn=_cmd_compar)

    p_rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p_rep.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    p_rep.set_defaults(fn=_cmd_reproduce)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
