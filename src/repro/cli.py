"""Command-line interface.

Subcommands::

    repro build-corpus --records 2000 --out corpus_dir
    repro train --epochs 8 --save model.npz
    repro advise file.c            # on-the-fly advisor (§2.1)
    repro advise --batch *.c       # batched advisor over many snippets
    repro serve < requests.jsonl   # JSON-lines serving loop on stdin
    repro serve --http 8080        # multi-model advisor over HTTP
    repro compar file.c            # run the S2S combiner on a snippet
    repro reproduce table8         # regenerate a paper table/figure

Serving (``serve`` and ``advise``) goes through the :mod:`repro.serve`
stack: snippets are tokenized once, packed into length-sorted micro-batches
(``--batch-size``, default 128) so padding work is bounded by each bucket's
longest row, and predictions are memoized in a bounded LRU keyed by the
token-id digest (``--cache-size``, default 4096; 0 disables).

``serve`` has two front-ends.  The default reads one JSON object per stdin
line — ``{"id": ..., "code": "..."}``, or a bare path to a C file — and
writes one JSON directive verdict per line; ``--stats`` dumps engine
counters to stderr at EOF.  ``--http PORT`` instead loads the directive
*and* ``private``/``reduction`` clause models behind one
:class:`repro.serve.MultiModelEngine` and serves ``POST /advise``,
``POST /advise/batch``, ``POST /reload``, ``GET /healthz``, and
``GET /stats`` — each also mounted under ``/v1/`` with the v1 result
schema (schemas in ``docs/serving.md``).  In either mode
``--shards N`` partitions traffic across N worker processes with
digest-hash routing (:class:`repro.serve.ShardedEngine`; a sharded
advisor loaded from ``--watch`` maps one shared read-only weight copy
fleet-wide unless ``--no-shared-weights``), and
``--min-shards``/``--max-shards`` turn on queue-depth autoscaling between
those bounds.  ``--http`` additionally supports ``--watch DIR`` (start
from — and hot-reload on changes to — an advisor checkpoint directory
written by ``ModelRegistry.save``), ``--gate-margin M`` (clause heads
only see snippets whose directive probability clears ``0.5 - M``), and
``--canary DIR`` / ``--canary-fraction F`` (serve a second checkpoint to
a deterministic digest slice of traffic next to the primary; finish the
rollout over ``POST /canary/promote`` / ``/canary/rollback``).
Fault tolerance: sharded serving carries per-request deadlines
(``--request-timeout SECONDS``, default 30, ``0`` disables — timed-out
or fault-hit requests are retried then answered with degraded verdicts),
and the HTTP front-end enforces admission control
(``--max-body-bytes N`` for the 413 body cap; batch caps, load shedding,
and the circuit breaker use :class:`repro.serve.AdmissionConfig`
defaults).  The operator's guide is ``docs/operations.md``.

``advise`` fans each positive snippet out to the clause models through the
same multi-model engine and prints the suggested clauses.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.tables import format_table

__all__ = ["main"]


def _cmd_build_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig, build_corpus, directive_stats, save_records

    corpus = build_corpus(CorpusConfig(n_records=args.records, seed=args.seed))
    stats = directive_stats(corpus)
    print(format_table(["statistic", "amount"], list(stats.items()),
                       title="Open-OMP corpus (Table 3 statistics)"))
    if args.out:
        save_records(corpus.records, Path(args.out))
        print(f"wrote {len(corpus)} records to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.pipeline import get_context
    from repro.eval import binary_metrics

    ctx = get_context()
    if getattr(args, "workers", 0):
        # shared-memory data-parallel fits (repro.train.ddp); training is
        # bit-identical at any worker count, so this is purely a perf knob
        ctx.train_workers = args.workers
    model = ctx.pragformer
    enc = ctx.encoded()
    metrics = binary_metrics(model.predict(enc.test), enc.test.labels)
    print(format_table(["metric", "value"], list(metrics.as_dict().items()),
                       title="PragFormer on the directive test split"))
    if args.save:
        from repro.models import save_pragformer

        save_pragformer(model, enc.vocab, args.save)
        print(f"saved model + vocabulary to {args.save}")
    return 0


def _engine_config(args: argparse.Namespace):
    from repro.serve import EngineConfig

    kwargs = {}
    max_snippet = getattr(args, "max_snippet_bytes", None)
    if max_snippet is not None:
        kwargs["max_snippet_bytes"] = int(max_snippet)
    return EngineConfig(max_batch_size=getattr(args, "batch_size", 128),
                        cache_capacity=getattr(args, "cache_size", 4096),
                        gate_margin=getattr(args, "gate_margin", None),
                        **kwargs)


def _autoscale_config(args: argparse.Namespace):
    """:class:`AutoscaleConfig` from ``--min-shards``/``--max-shards``, or
    ``None`` when neither flag was given (fixed shard count)."""
    from repro.serve import AutoscaleConfig

    min_shards = getattr(args, "min_shards", None)
    max_shards = getattr(args, "max_shards", None)
    if min_shards is None and max_shards is None:
        return None
    min_shards = min_shards or 1
    return AutoscaleConfig(
        min_shards=min_shards,
        max_shards=max_shards or max(min_shards, getattr(args, "shards", 1)))


def _supervisor_config(args: argparse.Namespace):
    """:class:`SupervisorConfig` from ``--request-timeout``, or ``None``
    (engine defaults) when the flag was not given.  ``0`` disables
    per-request deadlines entirely — calls wait as long as they must."""
    from repro.serve import SupervisorConfig

    timeout = getattr(args, "request_timeout", None)
    if timeout is None:
        return None
    return SupervisorConfig(
        request_timeout_s=None if timeout == 0 else float(timeout))


def _admission_config(args: argparse.Namespace):
    """:class:`AdmissionConfig` from ``--max-body-bytes``, or ``None``
    (server defaults) when the flag was not given."""
    from repro.serve import AdmissionConfig

    max_body = getattr(args, "max_body_bytes", None)
    if max_body is None:
        return None
    return AdmissionConfig(max_body_bytes=int(max_body))


def _make_engine(args: argparse.Namespace):
    """Directive-only engine (the stdin serving loop's workhorse)."""
    from repro.pipeline import get_context
    from repro.serve import InferenceEngine

    ctx = get_context()
    enc = ctx.encoded()
    engine = InferenceEngine(ctx.pragformer, enc.vocab,
                             max_len=ctx.scale.pragformer.max_len,
                             config=_engine_config(args))
    return ctx, engine


def _build_multi_engine(registry, config):
    """Worker-side builder for sharded serving (module-level so it stays
    picklable under the ``spawn`` start method; under ``fork`` the trained
    weights are shared copy-on-write)."""
    from repro.serve import MultiModelEngine

    return MultiModelEngine(registry, config=config)


def _build_directive_engine(model, vocab, max_len, config):
    """Worker-side builder for the directive-only sharded stdin loop."""
    from repro.serve import InferenceEngine

    return InferenceEngine(model, vocab, max_len=max_len, config=config)


def _make_full_advisor(args: argparse.Namespace):
    """Multi-model advisor (directive + clause heads), optionally sharded.

    With ``--shards N > 1`` (or autoscaling bounds) each worker process
    builds its own :class:`MultiModelEngine` from the registry.  With
    ``--watch DIR`` pointing at an existing advisor checkpoint, the
    registry is loaded from it instead of training via the experiment
    context — the deployment path: train elsewhere, ``ModelRegistry.save``,
    serve from the checkpoint and hot-reload on updates.

    A sharded advisor loaded from a checkpoint maps the weights **once**
    into a shared segment (``--no-shared-weights`` opts out): the parent
    binds the registry onto it before the workers spawn, so the whole
    fleet serves from one physical copy, and later ``/reload`` /
    ``/canary`` rollouts publish their checkpoints the same way."""
    import functools

    from repro.serve import ModelRegistry, ShardedEngine

    config = _engine_config(args)
    watch = getattr(args, "watch", None)
    autoscale = _autoscale_config(args)
    shards = getattr(args, "shards", 1)
    sharded = shards > 1 or autoscale is not None
    share = bool(getattr(args, "share_weights", True))
    registry = None
    shared = None
    if watch:
        try:
            if share and sharded:
                registry, shared = ModelRegistry.from_checkpoint(
                    watch, share=True)
            else:
                registry = ModelRegistry.from_checkpoint(watch)
        except FileNotFoundError:
            registry = None  # no checkpoint yet: train, serve, watch for one
    if registry is None:
        from repro.pipeline import get_context

        registry = ModelRegistry.from_context(get_context())
    factory = functools.partial(_build_multi_engine, registry, config)
    if sharded:
        try:
            return ShardedEngine(factory, n_shards=shards,
                                 autoscale=autoscale,
                                 supervisor=_supervisor_config(args),
                                 ipc=getattr(args, "ipc", "shm"),
                                 share_weights=share,
                                 shared_weights=shared)
        except BaseException:
            # a fleet that failed to come up must not leak its segment
            if shared is not None:
                import contextlib

                with contextlib.suppress(Exception):
                    shared.close()
                with contextlib.suppress(Exception):
                    shared.unlink()
            raise
    return factory()


def _cmd_advise(args: argparse.Namespace) -> int:
    paths = [Path(f) for f in args.files]
    sources = [p.read_text() for p in paths]
    # directive verdicts first: the clause models only need training when a
    # snippet is directive-positive, so the common all-negative invocation
    # never pays for them
    ctx, engine = _make_engine(args)
    advice = engine.advise_many(sources)
    positive = [i for i, a in enumerate(advice) if a.needs_directive]
    full_rows = {}
    if positive:
        from repro.serve import ModelRegistry, MultiModelEngine

        registry = ModelRegistry.from_context(ctx)
        with MultiModelEngine(registry, config=_engine_config(args)) as advisor:
            # directive verdicts are already in hand; only clause heads run
            full = advisor.advise_full_many(
                [sources[i] for i in positive],
                directive=[advice[i] for i in positive])
        full_rows = dict(zip(positive, full))
    prefix_paths = args.batch or len(paths) > 1
    for i, (path, a) in enumerate(zip(paths, advice)):
        verdict = "needs an OpenMP directive" if a.needs_directive else "no directive needed"
        lead = f"{path}: " if prefix_paths else "PragFormer: "
        print(f"{lead}{verdict} (p = {a.probability:.3f})")
        full = full_rows.get(i)
        if full is not None:
            for clause in full.recommended_clauses():
                print(f"  suggest a {clause} clause "
                      f"(p = {full.clauses[clause].probability:.3f})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http is not None:
        from repro.serve import checkpoint_mtime, serve_forever

        # baseline captured BEFORE the (slow) advisor load: a checkpoint
        # written while models load still differs from it, so the watcher's
        # first poll picks the rollout up instead of absorbing it
        baseline = checkpoint_mtime(args.watch) if args.watch else None
        advisor = _make_full_advisor(args)
        if args.canary:
            version = advisor.start_canary(args.canary, args.canary_fraction)
            print(f"canary {version} serving "
                  f"{args.canary_fraction:.0%} of traffic "
                  f"(POST /canary/promote or /canary/rollback to finish)")
        serve_forever(advisor, args.host, args.http,
                      watch_dir=args.watch,
                      watch_interval=args.watch_interval,
                      watch_baseline=baseline,
                      admission=_admission_config(args))
        return 0
    if args.watch:
        print("--watch requires --http (the stdin loop ends at EOF, "
              "nothing long-lived to reload)", file=sys.stderr)
        return 2
    if args.canary:
        print("--canary requires --http (canary rollouts split the "
              "multi-model advisor's traffic; the stdin loop serves the "
              "directive head only)", file=sys.stderr)
        return 2
    if args.gate_margin is not None:
        print("--gate-margin requires --http (the stdin loop serves the "
              "directive head only; there are no clause heads to gate)",
              file=sys.stderr)
        return 2
    autoscale = _autoscale_config(args)
    if args.shards > 1 or autoscale is not None:
        import functools

        from repro.pipeline import get_context
        from repro.serve import ShardedEngine

        ctx = get_context()
        enc = ctx.encoded()
        engine = ShardedEngine(
            functools.partial(_build_directive_engine, ctx.pragformer,
                              enc.vocab, ctx.scale.pragformer.max_len,
                              _engine_config(args)),
            n_shards=args.shards, autoscale=autoscale,
            supervisor=_supervisor_config(args),
            ipc=getattr(args, "ipc", "shm"))
    else:
        _, engine = _make_engine(args)

    def requests():
        # one bad request must not kill the serving loop: parse errors are
        # reported as JSON error lines and the stream continues
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            req = None
            try:
                if line.startswith("{"):
                    req = json.loads(line)
                    if not isinstance(req.get("code"), str):
                        raise ValueError("request needs a string 'code' field")
                else:
                    req = {"id": line, "code": Path(line).read_text()}
            except (OSError, ValueError) as exc:
                rid = req.get("id") if isinstance(req, dict) else line[:80]
                print(json.dumps({"id": rid, "error": str(exc)}))
                continue
            yield req

    batch = []

    def flush():
        if not batch:
            return
        for req, advice in zip(batch, engine.advise_many([r["code"] for r in batch])):
            print(json.dumps({
                "id": req.get("id"),
                "needs_directive": advice.needs_directive,
                "p_directive": round(advice.probability, 6),
            }))
        sys.stdout.flush()
        batch.clear()

    for req in requests():
        batch.append(req)
        if len(batch) >= args.batch_size:
            flush()
    flush()
    if args.stats:
        from repro.serve import snapshot_stats

        print(json.dumps(snapshot_stats(engine)), file=sys.stderr)
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return 0


def _cmd_compar(args: argparse.Namespace) -> int:
    from repro.s2s import ComPar

    source = Path(args.file).read_text()
    result = ComPar().run(source)
    if result.parse_failed:
        print("ComPar: parse failure in every sub-compiler")
        for name, res in result.per_compiler.items():
            print(f"  {name}: {res.failure}")
        return 1
    if result.inserted:
        print(f"ComPar inserts: {result.directive}")
    else:
        print("ComPar: no directive (loop judged not parallelizable)")
        for name, res in result.per_compiler.items():
            if res.analysis is not None and res.analysis.reasons:
                print(f"  {name}: {'; '.join(res.analysis.reasons)}")
    return 0


_EXPERIMENTS = {
    "table3": "exp_table3", "table4": "exp_table4", "fig3": "exp_fig3",
    "table5": "exp_table5", "table7": "exp_table7", "fig456": "exp_fig456",
    "table8": "exp_table8", "fig7": "exp_fig7", "table9": "exp_table9",
    "table10": "exp_table10", "table11": "exp_table11",
    "table12": "exp_table12_fig8",
}


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.pipeline import experiments

    fn = getattr(experiments, _EXPERIMENTS[args.experiment])
    result = fn()
    print(json.dumps(result, indent=2, default=str))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PragFormer reproduction: corpus, models, S2S compilers, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("build-corpus", help="generate the Open-OMP corpus")
    p_corpus.add_argument("--records", type=int, default=2000)
    p_corpus.add_argument("--seed", type=int, default=0)
    p_corpus.add_argument("--out", type=str, default="")
    p_corpus.set_defaults(fn=_cmd_build_corpus)

    p_train = sub.add_parser("train", help="train PragFormer on the directive task")
    p_train.add_argument("--save", type=str, default="")
    p_train.add_argument("--workers", type=int, default=0,
                         help="data-parallel training workers (0 = legacy "
                              "single-process loop; N-worker runs are "
                              "bit-identical to 1-worker)")
    p_train.set_defaults(fn=_cmd_train)

    p_advise = sub.add_parser("advise", help="advise OpenMP use for C snippet file(s)")
    p_advise.add_argument("files", nargs="+")
    p_advise.add_argument("--batch", action="store_true",
                          help="batched output (implied by multiple files)")
    p_advise.add_argument("--batch-size", type=int, default=128)
    p_advise.add_argument("--cache-size", type=int, default=4096)
    p_advise.set_defaults(fn=_cmd_advise)

    p_serve = sub.add_parser(
        "serve", help="advisor service: JSON-lines on stdin, or --http PORT")
    p_serve.add_argument("--batch-size", type=int, default=128,
                         help="micro-batch size for the inference engine")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="LRU prediction-cache capacity (0 disables)")
    p_serve.add_argument("--stats", action="store_true",
                         help="dump engine counters to stderr at EOF (stdin mode)")
    p_serve.add_argument("--http", type=int, default=None, metavar="PORT",
                         help="serve the multi-model advisor over HTTP on PORT "
                              "(directive + clause heads; /advise, /advise/batch, "
                              "/reload, /healthz, /stats)")
    p_serve.add_argument("--host", type=str, default="127.0.0.1",
                         help="bind address for --http (default 127.0.0.1)")
    p_serve.add_argument("--shards", type=int, default=1, metavar="N",
                         help="partition traffic across N worker processes "
                              "(digest-hash routing; 1 = in-process)")
    p_serve.add_argument("--ipc", choices=("queue", "shm"), default="shm",
                         help="sharded-fleet data-plane transport: 'shm' "
                              "(default) sends serving batches over "
                              "shared-memory rings as pre-encoded token "
                              "ids; 'queue' pins everything to pickled "
                              "multiprocessing queues (escape hatch)")
    p_serve.add_argument("--min-shards", type=int, default=None, metavar="N",
                         help="lower bound for queue-depth shard autoscaling "
                              "(giving --min-shards or --max-shards enables it)")
    p_serve.add_argument("--max-shards", type=int, default=None, metavar="N",
                         help="upper bound for queue-depth shard autoscaling")
    p_serve.add_argument("--watch", type=str, default=None, metavar="DIR",
                         help="with --http: serve the advisor checkpoint in DIR "
                              "and hot-reload whenever a new checkpoint lands "
                              "(mtime polling; also the default for POST /reload)")
    p_serve.add_argument("--watch-interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="poll interval for --watch (default 2.0)")
    p_serve.add_argument("--gate-margin", type=float, default=None, metavar="M",
                         help="gate clause heads on the directive verdict: only "
                              "snippets with P(directive) > 0.5 - M fan out "
                              "(default: gating off)")
    p_serve.add_argument("--canary", type=str, default=None, metavar="DIR",
                         help="with --http: start serving the advisor "
                              "checkpoint in DIR as a canary next to the "
                              "primary (finish with POST /canary/promote or "
                              "/canary/rollback)")
    p_serve.add_argument("--canary-fraction", type=float, default=0.1,
                         metavar="F",
                         help="fraction of the digest space the canary "
                              "serves (default 0.1)")
    p_serve.add_argument("--request-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="deadline for each sharded serving request; "
                              "requests that miss it are retried on a "
                              "healthy shard then answered with a degraded "
                              "verdict (default 30, 0 disables)")
    p_serve.add_argument("--max-body-bytes", type=int, default=None,
                         metavar="N",
                         help="with --http: largest accepted request body; "
                              "bigger bodies get 413 (default 4 MiB)")
    p_serve.add_argument("--max-snippet-bytes", type=int, default=None,
                         metavar="N",
                         help="largest snippet the engine will lex; bigger "
                              "snippets get a neutral degraded verdict "
                              "(default 256 KiB, 0 disables)")
    p_serve.add_argument("--no-shared-weights", dest="share_weights",
                         action="store_false", default=True,
                         help="sharded serving: load a private weight copy "
                              "per worker instead of mapping one shared "
                              "read-only segment fleet-wide (the default "
                              "one-copy mode; see docs/operations.md for "
                              "/dev/shm sizing)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_compar = sub.add_parser("compar", help="run the ComPar S2S combiner on a file")
    p_compar.add_argument("file")
    p_compar.set_defaults(fn=_cmd_compar)

    p_rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p_rep.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    p_rep.set_defaults(fn=_cmd_reproduce)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
