"""Parameter and Module base classes for the pure-NumPy NN substrate.

The substrate uses explicit, layer-local backpropagation rather than a tape:
every module's ``forward`` caches exactly the activations its ``backward``
needs, and ``backward`` accumulates parameter gradients in place and returns
the gradient with respect to its input.  This keeps the hot path free of
graph bookkeeping and lets every step be expressed as a handful of large
BLAS calls, per the NumPy performance guidance (vectorize; avoid copies).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.dtype import get_dtype

__all__ = ["Parameter", "Module", "ParameterArena"]


class Parameter:
    """A trainable tensor with an in-place-accumulated gradient."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=get_dtype())
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Module:
    """Base class: parameter discovery, train/eval/inference mode, state dicts.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; discovery walks ``__dict__`` (and lists of modules)
    recursively in deterministic attribute order.

    Three compute modes:

    * ``train()`` — stochastic layers active, forwards cache for backward;
    * ``eval()`` — deterministic forwards that still cache, so gradients can
      be checked against a dropout-free pass;
    * ``inference_mode()`` — deterministic forwards that cache *nothing*
      (no activations, no attention maps, no dropout masks).  ``backward``
      after an inference forward is an error; this is the serving fast path.
    """

    def __init__(self) -> None:
        self.training = True
        self.inference = False

    # -- mode ---------------------------------------------------------------

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
            m.inference = False
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
            m.inference = False
        return self

    def inference_mode(self, enabled: bool = True) -> "Module":
        """Eval mode plus cache-free forwards (see class docstring)."""
        for m in self.modules():
            m.training = False
            m.inference = enabled
        return self

    # -- discovery ------------------------------------------------------------

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialization ------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def _upgrade_state(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Rewrite legacy checkpoint keys in ``state`` in place.

        The base implementation only recurses into submodules with the same
        prefixing scheme as :meth:`named_parameters`; modules whose parameter
        layout changed (e.g. the fused QKV projection) override this to
        translate their old keys, then call ``super()``.
        """
        for name, value in self.__dict__.items():
            if isinstance(value, Module):
                value._upgrade_state(state, f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._upgrade_state(state, f"{prefix}{name}.{i}.")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        state = dict(state)
        self._upgrade_state(state)
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
            p.data[...] = state[name]

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    def parameter_arena(self) -> "ParameterArena":
        """Flatten this module's parameters into one contiguous arena."""
        return ParameterArena(self)


class ParameterArena:
    """All of a model's parameters (and gradients) as one flat buffer.

    Each :class:`Parameter`'s ``data``/``grad`` is rebound to a reshaped
    slice of two contiguous arrays, so layer-local in-place updates
    (``p.grad += ...``, ``p.data[...] = ...``) keep working unchanged while
    whole-model operations — an AdamW step, gradient clipping, ``zero_grad``
    — become a handful of vectorized calls over one array instead of a
    Python loop over ~30 (see :class:`repro.nn.optim.FusedAdamW`).

    Accepts a :class:`Module` or anything exposing ``named_parameters()``
    (e.g. the encoder+head adapters the training loops use).  Construction
    preserves parameter values exactly, so ``state_dict`` round-trips are
    unchanged; ``decay_mask`` is 1.0 on multi-dimensional parameters and
    0.0 on biases/LayerNorm vectors, encoding the §4.3 decoupled
    weight-decay rule as a single elementwise multiply.
    """

    def __init__(self, model) -> None:
        pairs = list(model.named_parameters())
        if not pairs:
            raise ValueError("model has no parameters to flatten")
        dtype = pairs[0][1].data.dtype
        total = sum(p.data.size for _, p in pairs)
        self.data = np.empty(total, dtype=dtype)
        self.grad = np.zeros(total, dtype=dtype)
        self.decay_mask = np.empty(total, dtype=dtype)
        self.slices: List[Tuple[str, slice, Tuple[int, ...]]] = []
        self._params: List[Parameter] = [p for _, p in pairs]
        offset = 0
        for name, p in pairs:
            if p.data.dtype != dtype:
                raise TypeError(
                    f"parameter {name} has dtype {p.data.dtype}, arena is {dtype}")
            region = slice(offset, offset + p.data.size)
            data_view = self.data[region].reshape(p.data.shape)
            grad_view = self.grad[region].reshape(p.data.shape)
            data_view[...] = p.data
            grad_view[...] = p.grad
            p.data = data_view
            p.grad = grad_view
            self.decay_mask[region] = 1.0 if p.data.ndim > 1 else 0.0
            self.slices.append((name, region, p.data.shape))
            offset += p.data.size

    @property
    def size(self) -> int:
        return int(self.data.size)

    def rebind(self, data: np.ndarray = None, grad: np.ndarray = None,
               copy: bool = True) -> None:
        """Move the arena onto new backing buffers.

        ``data``/``grad`` must be flat arrays of the arena's size and
        dtype — e.g. views over a ``multiprocessing.shared_memory``
        segment (to share parameters across forked workers) or fresh
        private arrays (to detach before the segment is unlinked).  With
        ``copy=True`` (the default) the current bytes are copied into the
        target first; with ``copy=False`` the target's existing contents
        are *adopted* — the mode serving workers use to map a checkpoint
        blob that is already resident in a shared segment without ever
        materialising a private copy.  Either way every
        :class:`Parameter`'s views are re-pointed, so layer-local
        in-place updates keep hitting the new storage.
        """
        for attr, target in (("data", data), ("grad", grad)):
            if target is None:
                continue
            current = getattr(self, attr)
            if target.shape != current.shape or target.dtype != current.dtype:
                raise ValueError(
                    f"rebind {attr}: need shape {current.shape} dtype "
                    f"{current.dtype}, got {target.shape} {target.dtype}")
            if copy:
                target[...] = current
            setattr(self, attr, target)
        for p, (_name, region, shape) in zip(self._params, self.slices):
            if data is not None:
                p.data = self.data[region].reshape(shape)
            if grad is not None:
                p.grad = self.grad[region].reshape(shape)

    def zero_grad(self) -> None:
        """One flat fill instead of one per parameter."""
        self.grad.fill(0.0)

    def grad_norm(self) -> float:
        """Global L2 gradient norm as a single dot product."""
        return float(np.sqrt(np.dot(self.grad, self.grad)))

    def clip_grad_norm(self, max_norm: float) -> float:
        """Fused equivalent of :func:`repro.nn.optim.clip_grad_norm`."""
        norm = self.grad_norm()
        if norm > max_norm > 0:
            self.grad *= max_norm / (norm + 1e-12)
        return norm
