"""Losses: softmax cross-entropy for classification and masked-position MLM.

For the binary tasks, softmax CE over two logits is exactly the paper's
binary cross-entropy (Eq. 1) with ``p`` the softmax probability of the
positive class.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "cross_entropy", "masked_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean CE over a batch.

    logits: (B, C); labels: (B,) int.  Returns (loss, dlogits) where
    ``dlogits`` already includes the 1/B batch normalization.
    """
    b = logits.shape[0]
    probs = softmax(logits)
    picked = probs[np.arange(b), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    dlogits = probs
    dlogits[np.arange(b), labels] -= 1.0
    dlogits /= b
    return loss, dlogits


def masked_cross_entropy(
    logits: np.ndarray, targets: np.ndarray, loss_mask: np.ndarray
) -> Tuple[float, np.ndarray]:
    """CE averaged over masked positions only (the MLM objective).

    logits: (B, L, V); targets: (B, L) int; loss_mask: (B, L) with 1 at
    positions that contribute to the loss.
    """
    b, l, v = logits.shape
    flat_logits = logits.reshape(-1, v)
    flat_targets = targets.reshape(-1)
    flat_mask = loss_mask.reshape(-1).astype(bool)
    n = int(flat_mask.sum())
    dlogits = np.zeros_like(flat_logits)
    if n == 0:
        return 0.0, dlogits.reshape(b, l, v)
    sel_logits = flat_logits[flat_mask]
    sel_targets = flat_targets[flat_mask]
    probs = softmax(sel_logits)
    picked = probs[np.arange(n), sel_targets]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    dsel = probs
    dsel[np.arange(n), sel_targets] -= 1.0
    dsel /= n
    dlogits[flat_mask] = dsel
    return loss, dlogits.reshape(b, l, v)
