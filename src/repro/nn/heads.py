"""Task heads: sequence classification (PragFormer's FC stack) and MLM.

The classification head follows §4.3 exactly: two dense layers with a ReLU
between them, dropout for regularization, softmax output over two classes,
reading the encoder's CLS position.
"""

from __future__ import annotations


import numpy as np

from repro.nn.layers import Dropout, Linear, ReLU
from repro.nn.module import Module
from repro.nn.scratch import BufferPool
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["ClassificationHead", "MLMHead"]


class ClassificationHead(Module):
    """CLS-position classifier: Dense -> ReLU -> Dropout -> Dense."""

    def __init__(self, d_model: int, d_hidden: int, n_classes: int = 2,
                 dropout: float = 0.1, rng: RngLike = None) -> None:
        super().__init__()
        r1, r2, r3 = spawn_rngs(rng, 3)
        self.fc1 = Linear(d_model, d_hidden, rng=r1)
        self.act = ReLU()
        self.drop = Dropout(dropout, rng=r2)
        self.fc2 = Linear(d_hidden, n_classes, rng=r3)
        self._seq_shape = None
        self._pool = BufferPool()

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """hidden: (B, L, D) encoder output; uses position 0 (CLS).

        Returns logits (B, n_classes)."""
        self._seq_shape = None if self.inference else hidden.shape
        cls = hidden[:, 0, :]
        return self.fc2.forward(self.drop.forward(self.act.forward(self.fc1.forward(cls))))

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        """Returns gradient w.r.t. the full (B, L, D) hidden sequence."""
        dcls = self.fc1.backward(self.act.backward(self.drop.backward(self.fc2.backward(dlogits))))
        dhidden = self._pool.get("dhidden", self._seq_shape, dcls.dtype)
        dhidden.fill(0.0)
        dhidden[:, 0, :] = dcls
        return dhidden


class MLMHead(Module):
    """Masked-language-model head: per-position projection to the vocab.

    Weight tying with the token embedding is optional; we keep an untied
    Linear for simplicity (the transfer effect measured in the ablation does
    not hinge on tying)."""

    def __init__(self, d_model: int, vocab_size: int, rng: RngLike = None) -> None:
        super().__init__()
        (r1,) = spawn_rngs(rng, 1)
        self.proj = Linear(d_model, vocab_size, rng=r1)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """hidden (B, L, D) -> logits (B, L, V)."""
        return self.proj.forward(hidden)

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        return self.proj.backward(dlogits)
