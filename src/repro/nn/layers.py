"""Core layers: Linear, Embedding, LayerNorm, Dropout, activations.

Every layer implements ``forward`` (caching what backward needs) and
``backward`` (accumulating parameter grads in place, returning the input
gradient).  All operations are batched matmuls or elementwise NumPy ops —
no Python loops over tokens.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.scratch import BufferPool, mean_lastaxis, sum_leading
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Linear", "Embedding", "LayerNorm", "ResidualLayerNorm", "Dropout",
           "ReLU", "GELU"]


class Linear(Module):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(self, d_in: int, d_out: int, rng: RngLike = None, bias: bool = True) -> None:
        super().__init__()
        gen = ensure_rng(rng)
        # Glorot/Xavier uniform keeps activations in range for tanh/GELU nets
        bound = np.sqrt(6.0 / (d_in + d_out))
        self.W = Parameter(gen.uniform(-bound, bound, size=(d_in, d_out)))
        self.b = Parameter(np.zeros(d_out)) if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = None if self.inference else x
        W = self.W.data
        if x.ndim > 2:
            # collapse leading axes: one large GEMM instead of a stacked
            # batch of (L, d_in) @ W matmuls — BLAS tiles far better
            y = (x.reshape(-1, x.shape[-1]) @ W).reshape(*x.shape[:-1], W.shape[1])
        else:
            y = x @ W
        if self.b is not None:
            y += self.b.data
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        # collapse all leading axes into one batch axis for the grad matmuls
        x2 = x.reshape(-1, x.shape[-1])
        dy2 = dy.reshape(-1, dy.shape[-1])
        self.W.grad += x2.T @ dy2
        if self.b is not None:
            self.b.grad += sum_leading(dy2)
        return (dy2 @ self.W.data.T).reshape(x.shape)


class Embedding(Module):
    """Token-id lookup table: ids (…,) -> vectors (…, d).

    Ids arrive as int32 end-to-end (``repro.data.encoding.ID_DTYPE``); any
    integer dtype works for the gather, but int32 halves the index traffic
    for both the forward lookup and the backward argsort."""

    def __init__(self, n_embeddings: int, d: int, rng: RngLike = None,
                 scale: float = 0.02) -> None:
        super().__init__()
        gen = ensure_rng(rng)
        self.W = Parameter(gen.normal(0.0, scale, size=(n_embeddings, d)))
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = None if self.inference else ids
        return self.W.data[ids]

    def backward(self, dy: np.ndarray) -> None:
        flat_ids = self._ids.reshape(-1)
        flat_dy = dy.reshape(-1, dy.shape[-1])
        # segmented sum via sort + reduceat: ~10x faster than the unbuffered
        # scatter np.add.at for thousands of rows
        order = np.argsort(flat_ids, kind="stable")
        sorted_ids = flat_ids[order]
        sorted_dy = flat_dy[order]
        starts = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate(([0], starts))
        sums = np.add.reduceat(sorted_dy, starts, axis=0)
        self.W.grad[sorted_ids[starts]] += sums
        return None  # ids are not differentiable


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, d: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(d))
        self.beta = Parameter(np.zeros(d))
        self.eps = eps
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = None if self.inference else (x_hat, inv_std)
        return x_hat * self.gamma.data + self.beta.data

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        axes = tuple(range(dy.ndim - 1))
        self.gamma.grad += (dy * x_hat).sum(axis=axes)
        self.beta.grad += dy.sum(axis=axes)
        dxhat = dy * self.gamma.data
        # dL/dx = inv_std * (dxhat - mean(dxhat) - x_hat * mean(dxhat * x_hat))
        m1 = dxhat.mean(axis=-1, keepdims=True)
        m2 = (dxhat * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (dxhat - m1 - x_hat * m2)


class ResidualLayerNorm(Module):
    """Fused post-LN residual connection: ``y = LN(x + sublayer)``.

    The unfused form (``LayerNorm.forward(x + s)``) materializes the
    residual sum, the centered tensor, and the normalized tensor as three
    full-size temporaries per call; this computes the same values with
    in-place arithmetic on one pooled scratch buffer — two fewer
    (B, L, D) allocations per encoder block per direction.

    Parameters are named ``gamma``/``beta`` exactly like :class:`LayerNorm`,
    so swapping this in for an encoder block's ``ln1``/``ln2`` keeps
    state-dict keys (and every existing checkpoint) unchanged.

    ``backward`` returns the gradient with respect to the residual *sum*
    ``x + sublayer`` — which is mathematically the gradient w.r.t. each
    addend — matching how the encoder block routes it to both branches.
    """

    def __init__(self, d: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(d))
        self.beta = Parameter(np.zeros(d))
        self.eps = eps
        self._cache = None
        self._pool = BufferPool()

    def forward(self, x: np.ndarray, sublayer: np.ndarray) -> np.ndarray:
        s = self._pool.get("sum", x.shape, x.dtype)
        np.add(x, sublayer, out=s)
        mean = mean_lastaxis(s)
        s -= mean
        sq = self._pool.get("sq", x.shape, x.dtype)
        np.multiply(s, s, out=sq)
        var = mean_lastaxis(sq)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        s *= inv_std  # s is now x_hat, in place
        self._cache = None if self.inference else (s, inv_std)
        out = self._pool.get("out", x.shape, x.dtype)
        np.multiply(s, self.gamma.data, out=out)
        out += self.beta.data
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        scratch = self._pool.get("bscratch", dy.shape, dy.dtype)
        np.multiply(dy, x_hat, out=scratch)
        self.gamma.grad += sum_leading(scratch.reshape(-1, d))
        self.beta.grad += sum_leading(dy.reshape(-1, d))
        # the residual-sum gradient is returned (and later accumulated into
        # in place by the encoder block), so it gets a fresh array — only
        # the inner temporaries go through the pool
        dxhat = dy * self.gamma.data
        # d(x+s) = inv_std * (dxhat - mean(dxhat) - x_hat * mean(dxhat * x_hat))
        m1 = mean_lastaxis(dxhat)
        np.multiply(dxhat, x_hat, out=scratch)
        m2 = mean_lastaxis(scratch)
        dxhat -= m1
        np.multiply(x_hat, m2, out=scratch)
        dxhat -= scratch
        dxhat *= inv_std
        return dxhat


class Dropout(Module):
    """Inverted dropout; identity in eval mode (§4.3 regularization).

    The uniform draw, the mask, and the output live in pooled scratch
    buffers reused across steps with the same batch shape — the attention
    dropout's (B, H, L, L) mask is the training loop's single largest
    allocation, and it now happens once per bucket shape instead of once
    per step.
    """

    def __init__(self, p: float, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = ensure_rng(rng)
        self._mask: Optional[np.ndarray] = None
        self._pool = BufferPool()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = x.dtype.type(1.0 - self.p)
        draw_dtype = x.dtype if x.dtype == np.float32 else np.float64
        uniform = self._pool.get("uniform", x.shape, draw_dtype)
        self.rng.random(out=uniform, dtype=draw_dtype)
        mask = self._pool.get("mask", x.shape, x.dtype)
        np.less(uniform, keep, out=mask)  # float 0/1 indicator
        np.divide(mask, keep, out=mask)
        self._mask = mask
        out = self._pool.get("out", x.shape, x.dtype)
        return np.multiply(x, mask, out=out)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        out = self._pool.get("dout", dy.shape, dy.dtype)
        return np.multiply(dy, self._mask, out=out)


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            self._mask = None
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._mask


class GELU(Module):
    """tanh-approximated GELU (the transformer FFN activation).

    The (B, L, d_ff)-sized temporaries — the largest activations in the
    FFN — run through pooled scratch buffers with in-place arithmetic."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        super().__init__()
        self._cache = None
        self._pool = BufferPool()

    def forward(self, x: np.ndarray) -> np.ndarray:
        c = x.dtype.type(self._C)
        a = x.dtype.type(0.044715)
        x2 = self._pool.get("x2", x.shape, x.dtype)
        np.multiply(x, x, out=x2)
        # t = tanh(c * (x + a * x^3)), built in place in one buffer
        t = self._pool.get("t", x.shape, x.dtype)
        np.multiply(x2, x, out=t)
        t *= a
        t += x
        t *= c
        np.tanh(t, out=t)
        self._cache = None if self.inference else (x, x2, t)
        out = self._pool.get("out", x.shape, x.dtype)
        # 0.5 * x * (1 + t)
        np.add(t, 1.0, out=out)
        out *= x
        out *= 0.5
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, x2, t = self._cache
        c = x.dtype.type(self._C)
        a3 = x.dtype.type(3 * 0.044715)
        # du = c * (1 + 3a * x^2)
        du = self._pool.get("du", x.shape, x.dtype)
        np.multiply(x2, a3, out=du)
        du += 1.0
        du *= c
        # dt = (1 - t^2) * du
        dt = self._pool.get("dt", x.shape, x.dtype)
        np.multiply(t, t, out=dt)
        np.subtract(1.0, dt, out=dt)
        dt *= du
        # dy * 0.5 * (1 + t + x*dt), assembled in the du buffer
        np.multiply(x, dt, out=du)
        du += t
        du += 1.0
        du *= 0.5
        out = self._pool.get("dout", x.shape, x.dtype)
        return np.multiply(dy, du, out=out)
