"""Core layers: Linear, Embedding, LayerNorm, Dropout, activations.

Every layer implements ``forward`` (caching what backward needs) and
``backward`` (accumulating parameter grads in place, returning the input
gradient).  All operations are batched matmuls or elementwise NumPy ops —
no Python loops over tokens.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "ReLU", "GELU"]


class Linear(Module):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(self, d_in: int, d_out: int, rng: RngLike = None, bias: bool = True) -> None:
        super().__init__()
        gen = ensure_rng(rng)
        # Glorot/Xavier uniform keeps activations in range for tanh/GELU nets
        bound = np.sqrt(6.0 / (d_in + d_out))
        self.W = Parameter(gen.uniform(-bound, bound, size=(d_in, d_out)))
        self.b = Parameter(np.zeros(d_out)) if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = None if self.inference else x
        W = self.W.data
        if x.ndim > 2:
            # collapse leading axes: one large GEMM instead of a stacked
            # batch of (L, d_in) @ W matmuls — BLAS tiles far better
            y = (x.reshape(-1, x.shape[-1]) @ W).reshape(*x.shape[:-1], W.shape[1])
        else:
            y = x @ W
        if self.b is not None:
            y += self.b.data
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        # collapse all leading axes into one batch axis for the grad matmuls
        x2 = x.reshape(-1, x.shape[-1])
        dy2 = dy.reshape(-1, dy.shape[-1])
        self.W.grad += x2.T @ dy2
        if self.b is not None:
            self.b.grad += dy2.sum(axis=0)
        return (dy2 @ self.W.data.T).reshape(x.shape)


class Embedding(Module):
    """Token-id lookup table: ids (…,) -> vectors (…, d)."""

    def __init__(self, n_embeddings: int, d: int, rng: RngLike = None,
                 scale: float = 0.02) -> None:
        super().__init__()
        gen = ensure_rng(rng)
        self.W = Parameter(gen.normal(0.0, scale, size=(n_embeddings, d)))
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = None if self.inference else ids
        return self.W.data[ids]

    def backward(self, dy: np.ndarray) -> None:
        flat_ids = self._ids.reshape(-1)
        flat_dy = dy.reshape(-1, dy.shape[-1])
        # segmented sum via sort + reduceat: ~10x faster than the unbuffered
        # scatter np.add.at for thousands of rows
        order = np.argsort(flat_ids, kind="stable")
        sorted_ids = flat_ids[order]
        sorted_dy = flat_dy[order]
        starts = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate(([0], starts))
        sums = np.add.reduceat(sorted_dy, starts, axis=0)
        self.W.grad[sorted_ids[starts]] += sums
        return None  # ids are not differentiable


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, d: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(d))
        self.beta = Parameter(np.zeros(d))
        self.eps = eps
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = None if self.inference else (x_hat, inv_std)
        return x_hat * self.gamma.data + self.beta.data

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        axes = tuple(range(dy.ndim - 1))
        self.gamma.grad += (dy * x_hat).sum(axis=axes)
        self.beta.grad += dy.sum(axis=axes)
        dxhat = dy * self.gamma.data
        # dL/dx = inv_std * (dxhat - mean(dxhat) - x_hat * mean(dxhat * x_hat))
        m1 = dxhat.mean(axis=-1, keepdims=True)
        m2 = (dxhat * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (dxhat - m1 - x_hat * m2)


class Dropout(Module):
    """Inverted dropout; identity in eval mode (§4.3 regularization)."""

    def __init__(self, p: float, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = ensure_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = x.dtype.type(1.0 - self.p)
        uniform = self.rng.random(x.shape, dtype=x.dtype if x.dtype == np.float32 else np.float64)
        self._mask = (uniform < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            self._mask = None
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._mask


class GELU(Module):
    """tanh-approximated GELU (the transformer FFN activation)."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        c = x.dtype.type(self._C)
        a = x.dtype.type(0.044715)
        x2 = x * x
        t = np.tanh(c * (x + a * x2 * x))
        self._cache = None if self.inference else (x, x2, t)
        return 0.5 * x * (1.0 + t)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, x2, t = self._cache
        c = x.dtype.type(self._C)
        a3 = x.dtype.type(3 * 0.044715)
        du = c * (1.0 + a3 * x2)
        dt = (1.0 - t * t) * du
        return dy * (0.5 * (1.0 + t) + 0.5 * x * dt)
