"""Pure-NumPy neural-network substrate: modules, transformer encoder, task
heads, losses, and AdamW — the role HuggingFace transformers + PyTorch play
in the paper, built from scratch with explicit backpropagation."""

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.heads import ClassificationHead, MLMHead
from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    ResidualLayerNorm,
)
from repro.nn.losses import cross_entropy, masked_cross_entropy, softmax
from repro.nn.module import Module, Parameter, ParameterArena
from repro.nn.optim import AdamW, FusedAdamW, WarmupSchedule, clip_grad_norm
from repro.nn.scratch import BufferPool, pooling_disabled, pooling_enabled
from repro.nn.transformer import (
    EncoderConfig,
    FeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "MultiHeadSelfAttention",
    "ClassificationHead",
    "MLMHead",
    "Dropout",
    "Embedding",
    "GELU",
    "LayerNorm",
    "Linear",
    "ReLU",
    "ResidualLayerNorm",
    "cross_entropy",
    "masked_cross_entropy",
    "softmax",
    "Module",
    "Parameter",
    "ParameterArena",
    "AdamW",
    "FusedAdamW",
    "WarmupSchedule",
    "clip_grad_norm",
    "BufferPool",
    "pooling_disabled",
    "pooling_enabled",
    "EncoderConfig",
    "FeedForward",
    "TransformerEncoder",
    "TransformerEncoderLayer",
]
