"""Pure-NumPy neural-network substrate: modules, transformer encoder, task
heads, losses, and AdamW — the role HuggingFace transformers + PyTorch play
in the paper, built from scratch with explicit backpropagation."""

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.heads import ClassificationHead, MLMHead
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear, ReLU
from repro.nn.losses import cross_entropy, masked_cross_entropy, softmax
from repro.nn.module import Module, Parameter
from repro.nn.optim import AdamW, WarmupSchedule, clip_grad_norm
from repro.nn.transformer import (
    EncoderConfig,
    FeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "MultiHeadSelfAttention",
    "ClassificationHead",
    "MLMHead",
    "Dropout",
    "Embedding",
    "GELU",
    "LayerNorm",
    "Linear",
    "ReLU",
    "cross_entropy",
    "masked_cross_entropy",
    "softmax",
    "Module",
    "Parameter",
    "AdamW",
    "WarmupSchedule",
    "clip_grad_norm",
    "EncoderConfig",
    "FeedForward",
    "TransformerEncoder",
    "TransformerEncoderLayer",
]
