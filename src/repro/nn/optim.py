"""Optimizers: AdamW (§4.3) with decoupled weight decay, plus gradient
clipping and a linear-warmup schedule.

All state updates are in place on preallocated moment buffers — no
per-step allocation in the training hot loop.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["AdamW", "clip_grad_norm", "WarmupSchedule"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm."""
    total = 0.0
    for p in params:
        total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class AdamW:
    """AdamW (Loshchilov & Hutter): Adam step + decoupled weight decay.

    Decay is skipped for 1-D parameters (biases, LayerNorm scales), the
    standard practice the paper's training setup inherits from RoBERTa.
    """

    def __init__(self, model: Module, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01) -> None:
        self.named = list(model.named_parameters())
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for _, p in self.named]
        self._v = [np.zeros_like(p.data) for _, p in self.named]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        step_size = self.lr / bias1
        for (name, p), m, v in zip(self.named, self._m, self._v):
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            denom = np.sqrt(v / bias2) + self.eps
            p.data -= step_size * (m / denom)
            if self.weight_decay and p.data.ndim > 1:
                p.data -= self.lr * self.weight_decay * p.data

    def zero_grad(self) -> None:
        for _, p in self.named:
            p.zero_grad()


class WarmupSchedule:
    """Linear warmup to ``peak_lr`` over ``warmup_steps``, then constant or
    linear decay to zero at ``total_steps`` (if given)."""

    def __init__(self, optimizer: AdamW, peak_lr: float, warmup_steps: int,
                 total_steps: int = 0) -> None:
        self.opt = optimizer
        self.peak = peak_lr
        self.warmup = max(1, warmup_steps)
        self.total = total_steps
        self.step_num = 0

    def step(self) -> float:
        self.step_num += 1
        if self.step_num <= self.warmup:
            lr = self.peak * self.step_num / self.warmup
        elif self.total > self.warmup:
            frac = (self.total - self.step_num) / max(1, self.total - self.warmup)
            lr = self.peak * max(0.0, frac)
        else:
            lr = self.peak
        self.opt.lr = lr
        return lr
