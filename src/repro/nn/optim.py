"""Optimizers: AdamW (§4.3) with decoupled weight decay, plus gradient
clipping and a linear-warmup schedule.

Two implementations of the same update rule:

* :class:`AdamW` — the legacy per-parameter stepper (a Python loop over
  every parameter array).  Kept as the reference implementation and for
  models that cannot be flattened.
* :class:`FusedAdamW` — steps a :class:`~repro.nn.module.ParameterArena`
  with ~10 whole-arena vectorized calls and a single scratch buffer,
  regardless of parameter count.  Elementwise operations are issued in the
  exact order of the legacy loop, so given identical gradients the two
  produce bit-identical parameters (see ``tests/test_nn_arena.py``).

All state updates are in place on preallocated moment buffers — no
per-step allocation in the training hot loop.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.nn.module import Module, Parameter, ParameterArena

__all__ = ["AdamW", "FusedAdamW", "clip_grad_norm", "WarmupSchedule"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm."""
    total = 0.0
    for p in params:
        total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class AdamW:
    """AdamW (Loshchilov & Hutter): Adam step + decoupled weight decay.

    Decay is skipped for 1-D parameters (biases, LayerNorm scales), the
    standard practice the paper's training setup inherits from RoBERTa.
    """

    def __init__(self, model: Module, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01) -> None:
        self.named = list(model.named_parameters())
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for _, p in self.named]
        self._v = [np.zeros_like(p.data) for _, p in self.named]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        step_size = self.lr / bias1
        for (name, p), m, v in zip(self.named, self._m, self._v):
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            denom = np.sqrt(v / bias2) + self.eps
            p.data -= step_size * (m / denom)
            if self.weight_decay and p.data.ndim > 1:
                p.data -= self.lr * self.weight_decay * p.data

    def zero_grad(self) -> None:
        for _, p in self.named:
            p.zero_grad()


class FusedAdamW:
    """AdamW over a flat :class:`~repro.nn.module.ParameterArena`.

    The legacy :class:`AdamW` issues ~10 NumPy calls (plus several
    temporaries) *per parameter* per step; at small model scales that
    dispatch overhead rivals the actual arithmetic.  Here the whole model
    is one contiguous buffer, so a step is ~10 calls total, reusing one
    preallocated scratch array: no per-step allocation at all.

    Decoupled weight decay is applied through the arena's ``decay_mask``
    (1.0 on matrices, 0.0 on 1-D parameters), preserving the bias/LayerNorm
    exemption as a single multiply.  The operation order matches the legacy
    loop elementwise, so trajectories are bit-comparable.
    """

    def __init__(self, model: Union[Module, ParameterArena], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        self.arena = model if isinstance(model, ParameterArena) else ParameterArena(model)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = np.zeros_like(self.arena.data)
        self._v = np.zeros_like(self.arena.data)
        self._tmp = np.empty_like(self.arena.data)

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        step_size = self.lr / bias1
        data, grad = self.arena.data, self.arena.grad
        m, v, tmp = self._m, self._v, self._tmp
        # m = b1*m + (1-b1)*g
        m *= b1
        np.multiply(grad, 1.0 - b1, out=tmp)
        m += tmp
        # v = b2*v + (1-b2)*g*g   (legacy evaluates ((1-b2)*g)*g)
        v *= b2
        np.multiply(grad, 1.0 - b2, out=tmp)
        tmp *= grad
        v += tmp
        # p -= step_size * m / (sqrt(v/bias2) + eps)
        np.divide(v, bias2, out=tmp)
        np.sqrt(tmp, out=tmp)
        tmp += self.eps
        np.divide(m, tmp, out=tmp)
        tmp *= step_size
        data -= tmp
        if self.weight_decay:
            # p -= (lr*wd) * p, matrices only (mask zeroes the rest)
            np.multiply(data, self.lr * self.weight_decay, out=tmp)
            tmp *= self.arena.decay_mask
            data -= tmp

    def zero_grad(self) -> None:
        self.arena.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Whole-arena clip: one dot product and (at most) one scale."""
        return self.arena.clip_grad_norm(max_norm)

    def state_dict(self) -> dict:
        """Snapshot the *full* optimization state: parameters AND moments.

        Checkpointing the arena bytes alone is not enough to resume a run
        bit-identically — the step count drives bias correction and the
        moment buffers carry momentum, so a resume without them diverges
        from an uninterrupted run on the first step.  This snapshot (plus
        the data-order rng) makes resume exact; see the DDP resume
        regression in ``tests/test_train_ddp.py``.
        """
        return {
            "t": np.asarray(self.t, dtype=np.int64),
            "m": self._m.copy(),
            "v": self._v.copy(),
            "data": self.arena.data.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Writes into the existing buffers (``[...] =``) rather than
        rebinding, so parameter views — and any shared-memory segment the
        arena currently lives in — stay valid."""
        missing = {"t", "m", "v", "data"} - set(state)
        if missing:
            raise KeyError(f"optimizer state missing keys: {sorted(missing)}")
        for key in ("m", "v", "data"):
            if state[key].shape != self.arena.data.shape:
                raise ValueError(
                    f"optimizer state {key!r} has shape {state[key].shape}, "
                    f"arena is {self.arena.data.shape}")
        self.t = int(state["t"])
        self._m[...] = state["m"]
        self._v[...] = state["v"]
        self.arena.data[...] = state["data"]


class WarmupSchedule:
    """Linear warmup to ``peak_lr`` over ``warmup_steps``, then constant or
    linear decay to zero at ``total_steps`` (if given)."""

    def __init__(self, optimizer: Union[AdamW, FusedAdamW], peak_lr: float,
                 warmup_steps: int, total_steps: int = 0) -> None:
        self.opt = optimizer
        self.peak = peak_lr
        self.warmup = max(1, warmup_steps)
        self.total = total_steps
        self.step_num = 0

    def step(self) -> float:
        self.step_num += 1
        if self.step_num <= self.warmup:
            lr = self.peak * self.step_num / self.warmup
        elif self.total > self.warmup:
            frac = (self.total - self.step_num) / max(1, self.total - self.warmup)
            lr = self.peak * max(0.0, frac)
        else:
            lr = self.peak
        self.opt.lr = lr
        return lr
