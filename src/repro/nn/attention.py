"""Multi-head self-attention with key-padding masking.

The Q/K/V projections are fused into a single ``(D, 3D)`` matmul: one BLAS
call replaces three, which matters on the serving hot path where batches are
small and per-call overhead dominates.  Checkpoints written before the
fusion (separate ``q_proj``/``k_proj``/``v_proj`` entries) still load — see
:meth:`MultiHeadSelfAttention._upgrade_state`.

The attention weights of the last forward pass can be kept on the module
(``last_attention``) so the explainability tooling (§5.4) can inspect where
the model attends without re-running a hooked forward pass.  In
``inference_mode`` retention is opt-in via ``retain_attention``; training
and plain ``eval`` forwards always retain (the backward pass needs the
weights anyway).  Since the scores live in a pooled scratch buffer, the
retained maps are only valid until this module's next forward — consumers
that hold maps across forwards must set ``retain_attention``, which
stores a private copy in every mode.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.scratch import BufferPool, sum_lastaxis
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

__all__ = ["MultiHeadSelfAttention"]

_NEG_INF = -1e9


def _softmax_lastaxis(scores: np.ndarray) -> np.ndarray:
    """In-place softmax over the last axis; returns ``scores`` itself."""
    scores -= scores.max(axis=-1, keepdims=True)
    # clamp before exp: masked keys sit at ~-1e9, and exp() of such extreme
    # arguments can fall off the vectorized path into scalar libm calls
    # (observed ~100x slower on padded buckets).  exp(-60) ~ 9e-27 is an
    # exact zero weight after renormalization, far below any tolerance.
    np.maximum(scores, -60.0, out=scores)
    np.exp(scores, out=scores)
    scores /= sum_lastaxis(scores)
    return scores


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over (B, L, D) inputs."""

    def __init__(self, d_model: int, n_heads: int, dropout: float = 0.1,
                 rng: RngLike = None) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        r_q, r_k, r_v, r_o, r_d = spawn_rngs(rng, 5)
        self.qkv_proj = Linear(d_model, 3 * d_model, rng=0)
        # overwrite the fused init (drawn from a throwaway rng above) with
        # three per-projection Glorot draws so fresh models are
        # weight-identical to the historical separate q/k/v Linears
        # (same untouched rngs, same square-matrix bound)
        bound = np.sqrt(6.0 / (2 * d_model))
        self.qkv_proj.W.data[...] = np.concatenate(
            [ensure_rng(r).uniform(-bound, bound, size=(d_model, d_model))
             for r in (r_q, r_k, r_v)], axis=1)
        self.out_proj = Linear(d_model, d_model, rng=r_o)
        self.attn_dropout = Dropout(dropout, rng=r_d)
        self.retain_attention = False
        self.last_attention: Optional[np.ndarray] = None  # (B, H, L, L)
        self._cache = None
        self._pool = BufferPool()

    def _upgrade_state(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Fuse legacy per-projection checkpoint entries into ``qkv_proj``."""
        legacy_w = [f"{prefix}{n}_proj.W" for n in "qkv"]
        if all(k in state for k in legacy_w) and f"{prefix}qkv_proj.W" not in state:
            state[f"{prefix}qkv_proj.W"] = np.concatenate(
                [state.pop(k) for k in legacy_w], axis=1)
            legacy_b = [f"{prefix}{n}_proj.b" for n in "qkv"]
            if all(k in state for k in legacy_b):
                state[f"{prefix}qkv_proj.b"] = np.concatenate(
                    [state.pop(k) for k in legacy_b], axis=0)
        super()._upgrade_state(state, prefix)

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, L, D) -> (B, H, L, d_head) view; matmul handles the strides."""
        b, l, _ = x.shape
        return x.reshape(b, l, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, L, d_head) -> (B, L, D)."""
        b, h, l, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, l, h * dh)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """``mask`` is either (B, L) with 1 for real tokens and 0 for padding,
        or a precomputed additive bias broadcastable to (B, H, L, L) — the
        encoder stack passes the latter so the bias is built once per forward
        instead of once per layer."""
        b, l, _ = x.shape
        qkv = self.qkv_proj.forward(x)  # (B, L, 3D)
        qkv = qkv.reshape(b, l, 3, self.n_heads, self.d_head).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (B, H, L, d_head) views

        # python float, not np.float64: a strong float64 scalar would upcast
        # the entire score/softmax/context chain out of the compute dtype
        scale = 1.0 / float(np.sqrt(self.d_head))
        # pre-scale q (an L x d_head pass) instead of the L x L score matrix;
        # backward compensates by scaling dq once — dk needs no scale at all
        # because it contracts against the already-scaled q
        q *= scale
        # scores live in a pooled buffer reused across steps with the same
        # bucket shape; the softmax then runs in place on it, so one
        # (B, H, L, L) buffer serves the whole score -> attention chain
        scores = self._pool.get("scores", (b, self.n_heads, l, l), x.dtype)
        np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
        if mask is not None:
            if mask.ndim == 2:
                # broadcast over heads and query positions; pad keys get -inf
                mask = (1.0 - mask[:, None, None, :]) * _NEG_INF
            scores += mask
        attn = _softmax_lastaxis(scores)
        if self.retain_attention:
            # callers that set the flag (explain tooling) may hold the maps
            # across later forwards, so hand them a private copy in every
            # mode, never the pooled buffer
            self.last_attention = attn.copy()
        elif not self.inference:
            # backward reads this through _cache; the pooled buffer is valid
            # until this module's next forward, which cannot precede this
            # step's backward — but it IS overwritten by the next forward,
            # so cross-batch consumers must set retain_attention
            self.last_attention = attn
        else:
            self.last_attention = None
        attn_dropped = self.attn_dropout.forward(attn)
        context = self._pool.get("context", (b, self.n_heads, l, self.d_head), x.dtype)
        np.matmul(attn_dropped, v, out=context)
        merged = self._pool.get("merged", (b, l, self.d_model), x.dtype)
        np.copyto(merged.reshape(b, l, self.n_heads, self.d_head),
                  context.transpose(0, 2, 1, 3))
        out = self.out_proj.forward(merged)
        self._cache = None if self.inference else (q, k, v, attn, attn_dropped, scale)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        q, k, v, attn, attn_dropped, scale = self._cache
        b, h, l, dh = q.shape
        pool = self._pool
        dtype = dy.dtype
        dcontext = self._split(self.out_proj.backward(dy))
        dattn_dropped = pool.get("d_attn", (b, h, l, l), dtype)
        np.matmul(dcontext, v.transpose(0, 1, 3, 2), out=dattn_dropped)
        dv = pool.get("dv", (b, h, l, dh), dtype)
        np.matmul(attn_dropped.transpose(0, 1, 3, 2), dcontext, out=dv)
        dattn = self.attn_dropout.backward(dattn_dropped)
        # softmax backward, in place on dattn (a scratch buffer either way —
        # the dropout's pooled output or d_attn itself in eval):
        # ds = attn * (dattn - sum(dattn * attn))
        tmp = pool.get("d_tmp", (b, h, l, l), dtype)
        np.multiply(dattn, attn, out=tmp)
        inner = sum_lastaxis(tmp)
        dattn -= inner
        dattn *= attn
        dscores = dattn
        # masked positions have attn == 0, so dscores is already 0 there.
        # q in the cache is pre-scaled, so dk comes out fully scaled from the
        # contraction and only dq needs the explicit scale factor
        dq = pool.get("dq", (b, h, l, dh), dtype)
        np.matmul(dscores, k, out=dq)
        dq *= scale
        dk = pool.get("dk", (b, h, l, dh), dtype)
        np.matmul(dscores.transpose(0, 1, 3, 2), q, out=dk)
        # write the three head-merged gradients straight into one (B, L, 3D)
        # buffer — the old concatenate built three merge copies plus a fourth
        # array for the result
        dqkv = pool.get("dqkv", (b, l, 3 * self.d_model), dtype)
        dqkv5 = dqkv.reshape(b, l, 3, h, dh)
        np.copyto(dqkv5[:, :, 0], dq.transpose(0, 2, 1, 3))
        np.copyto(dqkv5[:, :, 1], dk.transpose(0, 2, 1, 3))
        np.copyto(dqkv5[:, :, 2], dv.transpose(0, 2, 1, 3))
        return self.qkv_proj.backward(dqkv)
