"""Multi-head self-attention with key-padding masking.

The attention weights of the last forward pass are kept on the module
(``last_attention``) so the explainability tooling (§5.4) can inspect where
the model attends without re-running a hooked forward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

__all__ = ["MultiHeadSelfAttention"]

_NEG_INF = -1e9


def _softmax_lastaxis(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over (B, L, D) inputs."""

    def __init__(self, d_model: int, n_heads: int, dropout: float = 0.1,
                 rng: RngLike = None) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        r_q, r_k, r_v, r_o, r_d = spawn_rngs(rng, 5)
        self.q_proj = Linear(d_model, d_model, rng=r_q)
        self.k_proj = Linear(d_model, d_model, rng=r_k)
        self.v_proj = Linear(d_model, d_model, rng=r_v)
        self.out_proj = Linear(d_model, d_model, rng=r_o)
        self.attn_dropout = Dropout(dropout, rng=r_d)
        self.last_attention: Optional[np.ndarray] = None  # (B, H, L, L)
        self._cache = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, L, D) -> (B, H, L, d_head), contiguous for the matmuls."""
        b, l, _ = x.shape
        return np.ascontiguousarray(
            x.reshape(b, l, self.n_heads, self.d_head).transpose(0, 2, 1, 3)
        )

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, L, d_head) -> (B, L, D)."""
        b, h, l, dh = x.shape
        return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(b, l, h * dh)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """``mask`` is (B, L) with 1 for real tokens, 0 for padding."""
        q = self._split(self.q_proj.forward(x))
        k = self._split(self.k_proj.forward(x))
        v = self._split(self.v_proj.forward(x))

        scale = 1.0 / np.sqrt(self.d_head)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, L, L)
        if mask is not None:
            # broadcast over heads and query positions; pad keys get -inf
            scores = scores + (1.0 - mask[:, None, None, :]) * _NEG_INF
        attn = _softmax_lastaxis(scores)
        self.last_attention = attn
        attn_dropped = self.attn_dropout.forward(attn)
        context = attn_dropped @ v  # (B, H, L, d_head)
        out = self.out_proj.forward(self._merge(context))
        self._cache = (q, k, v, attn, attn_dropped, scale)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        q, k, v, attn, attn_dropped, scale = self._cache
        dcontext = self._split(self.out_proj.backward(dy))
        dattn_dropped = dcontext @ v.transpose(0, 1, 3, 2)
        dv = attn_dropped.transpose(0, 1, 3, 2) @ dcontext
        dattn = self.attn_dropout.backward(dattn_dropped)
        # softmax backward: ds = attn * (dattn - sum(dattn * attn))
        inner = (dattn * attn).sum(axis=-1, keepdims=True)
        dscores = attn * (dattn - inner)
        # masked positions have attn == 0, so dscores is already 0 there
        dq = (dscores @ k) * scale
        dk = (dscores.transpose(0, 1, 3, 2) @ q) * scale
        dx = self.q_proj.backward(self._merge(dq))
        dx += self.k_proj.backward(self._merge(dk))
        dx += self.v_proj.backward(self._merge(dv))
        return dx
