"""Global compute dtype for the NN substrate.

float32 halves memory traffic and roughly doubles BLAS/transcendental
throughput versus float64 — the difference between a usable and an unusable
CPU training loop at our scales.  Gradient-check tests switch to float64,
where central differences are meaningful.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = ["get_dtype", "set_dtype", "use_dtype", "assert_compute_dtype"]

_DTYPE = np.dtype(np.float32)


def get_dtype() -> np.dtype:
    """The dtype every Parameter and activation uses."""
    return _DTYPE


def set_dtype(dtype) -> None:
    global _DTYPE
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported compute dtype {dt}")
    _DTYPE = dt


def assert_compute_dtype(*arrays, context: str = "") -> None:
    """Raise if any floating array strays from the compute dtype.

    The purity guard behind the no-float64 regression tests: a single
    float64 array in the hot path silently upcasts everything downstream,
    doubling memory traffic.  Non-float arrays (ids, labels) are ignored.
    """
    expected = get_dtype()
    for i, arr in enumerate(arrays):
        if arr is None:
            continue
        arr = np.asarray(arr)
        if arr.dtype.kind == "f" and arr.dtype != expected:
            where = f" ({context})" if context else ""
            raise TypeError(
                f"array {i}{where} is {arr.dtype}, compute dtype is {expected}")


@contextmanager
def use_dtype(dtype):
    """Temporarily switch the compute dtype (used by gradcheck tests)."""
    previous = get_dtype()
    set_dtype(dtype)
    try:
        yield
    finally:
        set_dtype(previous)
