"""Reusable scratch buffers for the training hot path.

Training replays a small set of ``(batch, length)`` bucket shapes over and
over (``_length_bucketed_batches`` + ``trim_batch`` produce them), yet the
layers used to allocate every large temporary — attention scores, dropout
masks, residual sums — fresh on every step.  At bench scale those are
multi-megabyte arrays, so each step paid allocator and page-fault costs
for memory it had just released.  A :class:`BufferPool` keeps **one**
grow-only allocation per named slot and hands back a view of the right
shape, so after the largest bucket has been seen once, no step allocates.

Keying by slot (not by exact shape) matters: bucket trim lengths vary
batch to batch, and a shape-keyed cache would either thrash or pin one
multi-megabyte buffer per distinct length.  One flat buffer per slot
serves every shape whose element count fits, and memory stays bounded by
the largest bucket.

Ownership rule: every module owns its *own* pool, and a pooled view is
only valid from one ``forward`` until the same module's next ``forward``.
That is exactly the lifetime of the layer-local activation caches the
backward pass reads, so training (forward → backward → next forward) and
batched inference (forward → next forward) both stay safe.  Buffers must
never be returned to callers that may retain them across batches — see
``MultiHeadSelfAttention.retain_attention``, which copies for that reason.

``pooling_disabled()`` switches every pool to plain ``np.empty`` — an A/B
switch for isolating the effect of buffer reuse, and a debugging aid when
an aliasing bug is suspected (any pooled-lifetime violation disappears
under it).
"""

from __future__ import annotations

from contextlib import contextmanager
from math import prod
from typing import Dict, Tuple

import numpy as np

__all__ = ["BufferPool", "pooling_enabled", "pooling_disabled",
           "sum_lastaxis", "mean_lastaxis", "sum_leading"]

_POOLING = True


def pooling_enabled() -> bool:
    """Whether :meth:`BufferPool.get` reuses buffers (default) or allocates."""
    return _POOLING


@contextmanager
def pooling_disabled():
    """Temporarily fall back to fresh ``np.empty`` allocations everywhere."""
    global _POOLING
    previous = _POOLING
    _POOLING = False
    try:
        yield
    finally:
        _POOLING = previous


class BufferPool:
    """Named slots of grow-only scratch storage.

    ``get(slot, shape, dtype)`` returns an uninitialized array of ``shape``
    viewing the slot's flat buffer, growing it when a larger request
    arrives (contents are always stale — callers must fully overwrite,
    e.g. via ``out=``).  Successive calls to the same slot alias the same
    memory, which is the point: only one shape per slot is live at a time.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def get(self, slot: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` view of ``slot``'s buffer."""
        n = prod(shape)
        if not _POOLING:
            return np.empty(shape, dtype)
        key = (slot, np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < n:
            buffer = np.empty(n, dtype)
            self._buffers[key] = buffer
        return buffer[:n].reshape(shape)

    def __getstate__(self):
        """Scratch never travels: pickling a model (e.g. shipping it to a
        ShardedEngine worker) must not serialize megabytes of stale
        buffers."""
        return True

    def __setstate__(self, state) -> None:
        self._buffers = {}

    def nbytes(self) -> int:
        """Total bytes currently held across all slots."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


# -- matmul reductions -------------------------------------------------------
# ufunc.reduce over a short trailing axis (d_model, a trimmed sequence
# length) pays ~5x more dispatch/loop overhead than handing BLAS a GEMV
# against a cached ones vector.  The LayerNorm means, softmax row sums, and
# bias-gradient column sums are the hottest reductions in training, so they
# route through these helpers.

_ONES: Dict[Tuple[int, np.dtype], np.ndarray] = {}


def _ones_vector(n: int, dtype) -> np.ndarray:
    key = (n, np.dtype(dtype))
    ones = _ONES.get(key)
    if ones is None:
        ones = np.ones(n, dtype)
        _ONES[key] = ones
    return ones


def sum_lastaxis(x: np.ndarray) -> np.ndarray:
    """``x.sum(axis=-1, keepdims=True)`` as a batched GEMV."""
    return np.matmul(x, _ones_vector(x.shape[-1], x.dtype))[..., None]


def mean_lastaxis(x: np.ndarray) -> np.ndarray:
    """``x.mean(axis=-1, keepdims=True)`` as a batched GEMV."""
    out = sum_lastaxis(x)
    out *= x.dtype.type(1.0 / x.shape[-1])
    return out


def sum_leading(x2d: np.ndarray) -> np.ndarray:
    """``x2d.sum(axis=0)`` for a 2-D array, as one GEMV."""
    return np.matmul(_ones_vector(x2d.shape[0], x2d.dtype), x2d)
