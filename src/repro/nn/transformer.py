"""Transformer encoder: embeddings, encoder layers, and the full stack.

Post-LN layout (as in RoBERTa, which DeepSCC fine-tunes):
``x = LN(x + Attn(x)); x = LN(x + FFN(x))``.  Learned positional embeddings,
GELU feed-forward, dropout on embeddings/attention/FFN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.nn.attention import _NEG_INF, MultiHeadSelfAttention
from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ResidualLayerNorm,
)
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["EncoderConfig", "FeedForward", "TransformerEncoderLayer", "TransformerEncoder"]


@dataclass(frozen=True)
class EncoderConfig:
    """Hyperparameters of the encoder stack.

    Defaults are the scaled-down PragFormer used throughout the benches;
    §4.3's sequence cap of 110 tokens is the default ``max_len``.
    """

    vocab_size: int = 1000
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    max_len: int = 110
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ValueError("d_model must be divisible by n_heads")


class FeedForward(Module):
    """Position-wise FFN: Linear -> GELU -> Dropout -> Linear."""

    def __init__(self, d_model: int, d_ff: int, dropout: float, rng: RngLike = None) -> None:
        super().__init__()
        r1, r2, r3 = spawn_rngs(rng, 3)
        self.fc1 = Linear(d_model, d_ff, rng=r1)
        self.act = GELU()
        self.drop = Dropout(dropout, rng=r2)
        self.fc2 = Linear(d_ff, d_model, rng=r3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2.forward(self.drop.forward(self.act.forward(self.fc1.forward(x))))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.drop.backward(self.fc2.backward(dy))))


class TransformerEncoderLayer(Module):
    """One post-LN encoder block.

    The residual adds are fused into the layer norms
    (:class:`~repro.nn.layers.ResidualLayerNorm`); the attribute names stay
    ``ln1``/``ln2`` so checkpoints keep their ``ln1.gamma``-style keys.
    """

    def __init__(self, cfg: EncoderConfig, rng: RngLike = None) -> None:
        super().__init__()
        r_attn, r_ff, r_d1, r_d2 = spawn_rngs(rng, 4)
        self.attn = MultiHeadSelfAttention(cfg.d_model, cfg.n_heads, cfg.dropout, rng=r_attn)
        self.ln1 = ResidualLayerNorm(cfg.d_model)
        self.ffn = FeedForward(cfg.d_model, cfg.d_ff, cfg.dropout, rng=r_ff)
        self.ln2 = ResidualLayerNorm(cfg.d_model)
        self.drop1 = Dropout(cfg.dropout, rng=r_d1)
        self.drop2 = Dropout(cfg.dropout, rng=r_d2)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        x = self.ln1.forward(x, self.drop1.forward(self.attn.forward(x, mask)))
        x = self.ln2.forward(x, self.drop2.forward(self.ffn.forward(x)))
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        # each ResidualLayerNorm backward returns a fresh gradient for the
        # residual sum, so the branch gradients accumulate into it in place
        d = self.ln2.backward(dy)
        d += self.ffn.backward(self.drop2.backward(d))
        d = self.ln1.backward(d)
        d += self.attn.backward(self.drop1.backward(d))
        return d


class TransformerEncoder(Module):
    """Token + position embeddings followed by the encoder stack.

    ``forward`` returns the full hidden-state sequence (B, L, D); heads pick
    what they need (CLS slot for classification, all positions for MLM).
    """

    def __init__(self, cfg: EncoderConfig, rng: RngLike = None) -> None:
        super().__init__()
        self.cfg = cfg
        r_tok, r_pos, r_drop, *r_layers = spawn_rngs(rng, 3 + cfg.n_layers)
        self.tok_emb = Embedding(cfg.vocab_size, cfg.d_model, rng=r_tok)
        self.pos_emb = Embedding(cfg.max_len, cfg.d_model, rng=r_pos)
        self.emb_ln = LayerNorm(cfg.d_model)
        self.emb_drop = Dropout(cfg.dropout, rng=r_drop)
        self.layers: List[TransformerEncoderLayer] = [
            TransformerEncoderLayer(cfg, rng=r) for r in r_layers
        ]

    def forward(self, ids: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        b, l = ids.shape
        if l > self.cfg.max_len:
            raise ValueError(f"sequence length {l} exceeds max_len {self.cfg.max_len}")
        if mask is not None:
            # keep everything in the compute dtype; a float64 mask would
            # silently promote the whole attention stack.  The additive key
            # bias is built once here rather than once per layer.
            mask = mask.astype(self.tok_emb.W.data.dtype, copy=False)
            if mask.all():
                # length-bucketed + trimmed batches are frequently padding-
                # free; dropping the bias skips one full (B, H, L, L) add
                # per layer
                mask = None
            else:
                mask = (1.0 - mask[:, None, None, :]) * _NEG_INF
        # int32 positions match the encoding pipeline's id dtype (half the
        # index-traffic of int64 through the embedding gathers)
        positions = np.broadcast_to(np.arange(l, dtype=np.int32), (b, l))
        x = self.tok_emb.forward(ids) + self.pos_emb.forward(positions)
        x = self.emb_drop.forward(self.emb_ln.forward(x))
        for layer in self.layers:
            x = layer.forward(x, mask)
        return x

    def backward(self, dy: np.ndarray) -> None:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        dy = self.emb_ln.backward(self.emb_drop.backward(dy))
        self.tok_emb.backward(dy)
        self.pos_emb.backward(dy)

    def attention_maps(self) -> List[np.ndarray]:
        """Per-layer attention weights from the most recent forward pass.

        Under ``inference_mode`` the maps are dropped unless each layer's
        ``attn.retain_attention`` is set (see
        :meth:`PragFormer.predict_proba`'s ``retain_attention`` flag).
        Training/eval maps alias pooled scratch and are only valid until
        the next forward; set ``retain_attention`` to get private copies
        that survive later batches."""
        return [layer.attn.last_attention for layer in self.layers]
