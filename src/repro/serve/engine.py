"""High-throughput batched inference engine for the PragFormer advisor.

The paper's end goal (§2.1) is an advisor that classifies arbitrary incoming
code snippets; this module turns the one-snippet-at-a-time ``advise`` path
into serving infrastructure:

* **Tokenize once** — snippets go through :func:`repro.tokenize.text_tokens`
  (or a :class:`~repro.data.encoding.TokenCache` for corpus records) and
  :class:`~repro.tokenize.Vocab` exactly as in training, with results
  memoized by source digest so repeated traffic never re-lexes.
* **Micro-batching** — pending snippets are sorted by encoded length and
  packed greedily into length-homogeneous buckets (at most
  ``max_batch_size`` rows, padding waste bounded by ``bucket_waste``), each
  padded only to its own longest row, so ``trim_batch``'s
  quadratic-attention savings actually bite on mixed-length traffic.
* **Result caching** — predictions are memoized in a bounded LRU keyed by a
  digest of the token ids; identical snippets (the common case under heavy
  traffic) skip the model entirely, and duplicates *within* one batch are
  coalesced into a single forward row.
* **Sync and async APIs** — :meth:`InferenceEngine.predict_proba` /
  :meth:`~InferenceEngine.advise_many` for bulk calls;
  :meth:`~InferenceEngine.submit` enqueues a request and returns a
  :class:`concurrent.futures.Future`, with a background worker that flushes
  a batch when it is full or ``flush_interval`` elapses.
* **Hot model swap** — the model, vocabulary, serving length, and a
  *version tag* live together in one immutable slot;
  :meth:`~InferenceEngine.swap_model` replaces the slot atomically.  Every
  cache key (prediction LRU *and* tokenize/encode memo) is prefixed with
  the version tag, so entries written under an old model can never be
  served for the new one, and requests that started before a swap finish
  on the weights they started with.

Knobs live on :class:`EngineConfig`; counters on
:class:`~repro.serve.metrics.EngineStats`.  The engine is the bottom layer
of the serving stack: :mod:`repro.serve.registry` hosts several model heads
(directive + clause models) each behind one of these engines,
:mod:`repro.serve.sharding` partitions traffic across worker processes that
each run a private engine, and :mod:`repro.serve.http_api` exposes the whole
stack over HTTP.  ``docs/serving.md`` walks the architecture end to end.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.encoding import TokenCache, pad_encoded
from repro.models.pragformer import PragFormer
from repro.nn.dtype import get_dtype
from repro.serve.metrics import EngineStats
from repro.tokenize import ERROR_TOKEN, Representation, Vocab, \
    robust_text_tokens, text_tokens

__all__ = ["EngineConfig", "EngineStats", "LRUCache", "Advice",
           "InferenceEngine", "ModelSlot", "source_digest"]


def source_digest(code: str, size: int = 16) -> bytes:
    """Digest of snippet source text — the serving stack's shared key.

    One definition on purpose: the tokenize-once memo (here), the
    cross-head lex memo (:mod:`repro.serve.registry`), and shard routing
    (:mod:`repro.serve.sharding`) must all key on the same bytes, or a
    future normalization tweak would silently split them apart.  Lone
    surrogates (JSON ``"\\ud800"`` escapes survive :func:`json.loads`) are
    replace-encoded rather than allowed to raise — dirty bytes must never
    crash the keying layer.
    """
    return hashlib.blake2b(code.encode("utf-8", errors="replace"),
                           digest_size=size).digest()


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs.

    ``max_batch_size`` bounds one forward pass; ``cache_capacity`` bounds
    both the prediction LRU and the tokenize/encode memo (0 disables them);
    ``flush_interval`` is how long the async worker waits for a batch to
    fill before running a partial one.  ``bucket_waste`` bounds how ragged a
    length bucket may be: a bucket is closed early once padding it to the
    next row's length would exceed ``bucket_waste`` x the real token cells,
    keeping buckets length-homogeneous so short snippets never pay a long
    snippet's quadratic attention cost.

    ``gate_margin`` enables cross-request clause gating in
    :class:`~repro.serve.registry.MultiModelEngine`: when set, clause heads
    only see snippets whose directive probability exceeds
    ``0.5 - gate_margin`` (``None``, the default, disables gating and every
    head sees every snippet).  A small positive margin keeps near-threshold
    snippets fanning out so borderline verdicts still carry clause
    probabilities; see ``docs/operations.md`` for the accuracy caveats.

    The dirty-input caps: ``max_snippet_bytes`` bounds one snippet's UTF-8
    size (0 disables the cap) and ``lex_budget_s`` bounds one snippet's
    tokenize wall-time.  A snippet over either limit is *rejected* — it
    gets a neutral degraded verdict and a ``rejected_*`` counter tick
    instead of stalling a worker; see ``docs/serving.md`` ("Dirty input").
    """

    max_batch_size: int = 128
    cache_capacity: int = 4096
    flush_interval: float = 0.005
    bucket_waste: float = 1.35
    gate_margin: Optional[float] = None
    max_snippet_bytes: int = 262144
    lex_budget_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if self.bucket_waste < 1.0:
            raise ValueError("bucket_waste must be >= 1.0")
        if self.gate_margin is not None and not 0.0 <= self.gate_margin <= 0.5:
            raise ValueError("gate_margin must be in [0, 0.5] (or None)")
        if self.max_snippet_bytes < 0:
            raise ValueError("max_snippet_bytes must be >= 0")
        if self.lex_budget_s <= 0:
            raise ValueError("lex_budget_s must be > 0")


class LRUCache:
    """Bounded least-recently-used mapping (capacity 0 = disabled).

    ``evictions`` counts entries dropped to respect ``capacity`` over the
    cache's lifetime; :meth:`put` additionally returns how many entries the
    one call evicted so callers can feed per-engine counters
    (:attr:`EngineStats.evictions`) without re-reading the total.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.evictions = 0
        self._data: "OrderedDict[bytes, np.ndarray]" = OrderedDict()

    def get(self, key: bytes) -> Optional[np.ndarray]:
        """Return the cached value (refreshing recency) or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: bytes, value: np.ndarray) -> int:
        """Insert ``key``; return the number of entries evicted (0 or 1)."""
        if self.capacity <= 0:
            return 0
        self._data[key] = value
        self._data.move_to_end(key)
        evicted = 0
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data


@dataclass(frozen=True)
class Advice:
    """One advisor verdict: directive probability plus the §4.1 decision.

    ``degraded`` marks a verdict the fleet could not actually compute (a
    worker died or missed its deadline and every fallback failed too):
    the serving layer answers a neutral ``p = 0.5`` placeholder instead
    of raising, and this flag is how callers tell it apart from a real
    model prediction.

    ``recovered`` marks a verdict computed from error-recovered lexing:
    the snippet did not tokenize cleanly, the resilient lexer patched
    over the damage (``ERROR_TOKEN`` in the stream), and the model still
    answered.  Advisory only — the probability is real, but callers that
    care about input hygiene can tell these answers apart."""

    probability: float
    needs_directive: bool
    degraded: bool = False
    recovered: bool = False


@dataclass(frozen=True)
class ModelSlot:
    """Everything one prediction depends on, swapped as a unit.

    ``version`` tags the deployed checkpoint; ``version_bytes`` (its UTF-8
    encoding) prefixes every cache key derived while this slot is current,
    so predictions and encodings from different model versions can never
    collide.  Slots are immutable: a request snapshots the engine's slot
    once and uses it for its whole lifetime, which is what lets
    :meth:`InferenceEngine.swap_model` run under live traffic — in-flight
    requests finish on the weights they started with.
    """

    model: PragFormer
    vocab: Vocab
    max_len: int
    version: str

    @property
    def version_bytes(self) -> bytes:
        """The version tag as the byte prefix used in cache keys."""
        return self.version.encode("utf-8")


_SHUTDOWN = object()


class InferenceEngine:
    """Batched, cached serving front-end for a trained :class:`PragFormer`.

    Thread-safe: the prediction cache is lock-protected and model forwards
    are serialized (the NumPy modules keep per-forward state), so the sync
    bulk API and the async queue can be used concurrently.  The model,
    vocabulary, serving length, and version tag live in one immutable
    :class:`ModelSlot` that :meth:`swap_model` replaces atomically; every
    request snapshots the slot once, so a swap under load never mixes
    weights within a request and never serves a stale cache entry (keys are
    version-prefixed).
    """

    def __init__(
        self,
        model: PragFormer,
        vocab: Vocab,
        max_len: Optional[int] = None,
        config: Optional[EngineConfig] = None,
        tokenizer: Optional[Callable[[str], List[str]]] = None,
        version: str = "0",
    ) -> None:
        self._slot = ModelSlot(model, vocab, max_len or model.config.max_len,
                               version)
        self.config = config or EngineConfig()
        # error-recovering lexer by default: on clean input it tokenizes
        # identically to the strict lexer (same cache keys, same verdicts),
        # on dirty input it emits ERROR_TOKEN instead of raising
        self.tokenizer = tokenizer or robust_text_tokens
        self.cache = LRUCache(self.config.cache_capacity)
        self._encode_memo = LRUCache(self.config.cache_capacity)
        # version-prefixed digests of snippets whose lexing needed error
        # recovery — how advise_many stamps Advice.recovered even when
        # the encoding itself is a memo hit
        self._recovered_memo = LRUCache(self.config.cache_capacity)
        self.stats = EngineStats()
        self._swap_count = 0
        self._cache_lock = threading.Lock()
        self._model_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._worker_lock = threading.Lock()
        self._closed = False

    # -- the live model slot -----------------------------------------------

    @property
    def model(self) -> PragFormer:
        """The currently deployed model (see :meth:`swap_model`)."""
        return self._slot.model

    @property
    def vocab(self) -> Vocab:
        """The currently deployed vocabulary."""
        return self._slot.vocab

    @property
    def max_len(self) -> int:
        """The current serving truncation length."""
        return self._slot.max_len

    @property
    def model_version(self) -> str:
        """Version tag of the deployed slot (prefixes every cache key)."""
        return self._slot.version

    def swap_model(
        self,
        model: PragFormer,
        vocab: Vocab,
        max_len: Optional[int] = None,
        version: Optional[str] = None,
    ) -> str:
        """Atomically deploy a new (model, vocab, max_len) under ``version``.

        Requests already in flight keep the slot they snapshotted and
        finish on the old weights; every later request sees the new slot.
        Because cache keys are version-prefixed, entries written under the
        old version can never satisfy a new-version lookup — they age out
        of the LRUs naturally.  ``version`` defaults to a per-engine
        ``swap-N`` counter tag; returns the tag actually deployed.
        """
        with self._cache_lock:
            self._swap_count += 1
            if version is None:
                version = f"swap-{self._swap_count}"
            self._slot = ModelSlot(model, vocab,
                                   max_len or model.config.max_len, version)
        return version

    # -- encoding ----------------------------------------------------------

    def encode(self, code: str) -> np.ndarray:
        """Snippet text -> CLS-prefixed, truncated token-id row.

        Tokenize-once: results are memoized by source digest (pure-Python
        lexing costs about as much as a small-model forward pass, so
        repeated traffic must not re-lex).  Raises :class:`ValueError` for
        a snippet the engine rejects (byte cap / lex budget); the batched
        advise paths answer those with a neutral degraded verdict instead.
        """
        ids = self._encode(self._slot, code)
        if ids is None:
            raise ValueError(
                "snippet rejected by dirty-input limits "
                f"(max_snippet_bytes={self.config.max_snippet_bytes}, "
                f"lex_budget_s={self.config.lex_budget_s})")
        return ids

    def reject_reason(self, code: str) -> Optional[str]:
        """Pre-tokenize admission check: why ``code`` must be rejected.

        Returns ``"oversize"`` when the snippet exceeds
        ``max_snippet_bytes``, else ``None``.  Cheap (one UTF-8 encode), so
        routers and registries call it before spending lex time; the
        budget/error causes only materialize during :meth:`encode` itself.
        """
        limit = self.config.max_snippet_bytes
        if limit and len(code.encode("utf-8", errors="replace")) > limit:
            return "oversize"
        return None

    def _count_rejected(self, reason: str) -> None:
        """Bump the rejected counters under the cache lock."""
        with self._cache_lock:
            self.stats.rejected += 1
            if reason == "oversize":
                self.stats.rejected_oversize += 1
            elif reason == "budget":
                self.stats.rejected_budget += 1
            else:
                self.stats.rejected_error += 1

    def _encode(self, slot: ModelSlot, code: str,
                key: Optional[bytes] = None) -> Optional[np.ndarray]:
        """Encode ``code`` under ``slot``, or ``None`` when rejected.

        Memo keys carry slot.version so a row encoded with an old
        vocabulary is never reused after a swap.  Rejections are memoized
        too (as the reason string) so a repeated poison snippet pays its
        lex budget once, not per request; every rejected answer still
        ticks the ``rejected``/``rejected_*`` counters.  Callers that
        already computed the version-prefixed digest pass it as ``key``
        to skip the second hash.
        """
        if key is None:
            key = slot.version_bytes + source_digest(code)
        with self._cache_lock:
            hit = self._encode_memo.get(key)
        if hit is not None:
            if isinstance(hit, str):  # memoized rejection reason
                self._count_rejected(hit)
                return None
            return hit
        reason = self.reject_reason(code)
        recovered = False
        tokens: List[str] = []
        if reason is None:
            start = time.monotonic()
            try:
                tokens = self.tokenizer(code)
            except Exception:  # a custom strict tokenizer may still raise
                reason = "error"
            else:
                if time.monotonic() - start > self.config.lex_budget_s:
                    reason = "budget"
                else:
                    recovered = ERROR_TOKEN in tokens
        if reason is not None:
            with self._cache_lock:
                self._encode_memo.put(key, reason)
            self._count_rejected(reason)
            return None
        ids = slot.vocab.encode(tokens, max_len=slot.max_len)
        with self._cache_lock:
            self.stats.tokenized += 1
            if recovered:
                self.stats.recovered += 1
                self._recovered_memo.put(key, True)
            self.stats.encode_evictions += self._encode_memo.put(key, ids)
        return ids

    @staticmethod
    def _digest(slot: ModelSlot, ids: np.ndarray) -> bytes:
        """Prediction-cache key: model version tag + token-id digest."""
        return slot.version_bytes + hashlib.blake2b(
            ids.tobytes(), digest_size=16).digest()

    # -- sync bulk API -----------------------------------------------------

    def predict_proba(self, codes: Sequence[str]) -> np.ndarray:
        """(N, 2) class probabilities for ``codes``, batched and cached.

        Rejected snippets (byte cap / lex budget) contribute a neutral
        ``[0.5, 0.5]`` row instead of raising."""
        slot = self._slot
        probs, _ = self._predict_maybe_rejected(
            [self._encode(slot, code) for code in codes], slot)
        return probs

    def _predict_maybe_rejected(self, encoded: List[Optional[np.ndarray]],
                                slot: ModelSlot):
        """Run the rows that encoded; give the rest neutral 0.5 verdicts.

        Returns ``(probs, rejected)`` where ``rejected[i]`` is True for a
        row that was answered with the neutral placeholder.  One bad
        snippet in a batch never fails or stalls its neighbours — they
        still take the normal batched path.
        """
        rejected = [ids is None for ids in encoded]
        ok_rows = [ids for ids in encoded if ids is not None]
        ok_probs = self._predict_encoded(ok_rows, slot)
        n_rejected = len(encoded) - len(ok_rows)
        if not n_rejected:
            return ok_probs, rejected
        with self._cache_lock:
            self.stats.requests += n_rejected
        probs = np.full((len(encoded), 2), 0.5, dtype=get_dtype())
        it = iter(ok_probs)
        for i, bad in enumerate(rejected):
            if not bad:
                probs[i] = next(it)
        return probs, rejected

    def advise(self, code: str) -> Advice:
        """One snippet -> :class:`Advice` (batched path, cache included)."""
        return self.advise_many([code])[0]

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Bulk :class:`Advice` for ``codes``; positive iff P(+) > 0.5.

        A rejected snippet yields ``Advice(0.5, False, degraded=True)`` —
        the same neutral-verdict contract the fleet uses for a dead worker,
        so callers need exactly one degraded-handling path.  Verdicts
        computed from error-recovered lexing carry ``recovered=True``
        (stamped from the recovered-digest memo, so memo-hit encodings
        keep the flag too)."""
        slot = self._slot
        keys = [slot.version_bytes + source_digest(code) for code in codes]
        encoded = [self._encode(slot, code, key=key)
                   for code, key in zip(codes, keys)]
        with self._cache_lock:
            recovered = [self._recovered_memo.get(key) is not None
                         for key in keys]
        probs, rejected = self._predict_maybe_rejected(encoded, slot)
        return [Advice(float(p), bool(p > 0.5), degraded=bad, recovered=rec)
                for p, bad, rec in zip(probs[:, 1], rejected, recovered)]

    def codec(self) -> Optional[dict]:
        """Describe how to encode snippets for this engine, or ``None``.

        The shared-memory transport (:mod:`repro.serve.shm_ring`) moves
        pre-encoded int32 token-id rows instead of source text, which
        requires the *router* to encode exactly as this engine would.
        The codec ships everything that encoding depends on: the deployed
        ``version`` (the staleness tag carried in every request frame),
        the ``vocab``, the truncation ``max_len``, and the clause-head
        name order (empty for a bare engine).  The ``tokenizer`` field
        names which of the two known lexers to replicate (``"resilient"``
        is the default recovering one, ``"strict"`` the raising one) and
        ``max_snippet_bytes`` ships the byte cap so the router can reject
        oversize snippets before encoding, exactly as this engine would.
        Engines built with a custom tokenizer callable return ``None`` —
        the router cannot replicate an arbitrary callable, so the fleet
        falls back to the pickled queue transport."""
        if self.tokenizer is robust_text_tokens:
            tokenizer_name = "resilient"
        elif self.tokenizer is text_tokens:
            tokenizer_name = "strict"
        else:
            return None
        slot = self._slot
        return {"version": slot.version, "max_len": slot.max_len,
                "vocab": slot.vocab, "heads": [],
                "tokenizer": tokenizer_name,
                "max_snippet_bytes": self.config.max_snippet_bytes}

    def predict_proba_encoded(self, rows: Sequence[np.ndarray]) -> np.ndarray:
        """(N, 2) probabilities for pre-encoded token-id rows.

        The shared-memory data plane's entry point: ``rows`` were encoded
        by the router under this engine's codec (same vocabulary, same
        ``max_len``), so the engine skips tokenization entirely and goes
        straight to the batched/cached forward path.  Rows are defensively
        truncated to the current slot's ``max_len``; prediction-cache keys
        are the same version-prefixed id digests as the text path, so the
        two transports share one cache and return identical verdicts."""
        slot = self._slot
        encoded = []
        for row in rows:
            ids = np.ascontiguousarray(row, dtype=np.int32)
            encoded.append(ids[:slot.max_len] if ids.size > slot.max_len
                           else ids)
        return self._predict_encoded(encoded, slot)

    def advise_many_encoded(self, rows: Sequence[np.ndarray]) -> List[Advice]:
        """Bulk :class:`Advice` for pre-encoded token-id rows (the
        shared-memory transport's ``advise_many``); positive iff
        P(+) > 0.5, exactly as the text path decides."""
        probs = self.predict_proba_encoded(rows)[:, 1]
        return [Advice(float(p), bool(p > 0.5)) for p in probs]

    def predict_records(self, records: Sequence, cache: TokenCache,
                        rep: Representation = Representation.TEXT) -> np.ndarray:
        """Bulk probabilities for corpus :class:`Record` objects, with
        tokenization memoized through the shared :class:`TokenCache`."""
        slot = self._slot
        encoded = [slot.vocab.encode(cache.tokens(rec, rep), max_len=slot.max_len)
                   for rec in records]
        return self._predict_encoded(encoded, slot)

    # -- core batching path ------------------------------------------------

    def _predict_encoded(self, encoded: List[np.ndarray],
                         slot: ModelSlot) -> np.ndarray:
        n = len(encoded)
        # compute dtype, not np.empty's float64 default — cached rows and
        # HTTP responses stay float32-pure
        out = np.empty((n, 2), dtype=get_dtype())
        if n == 0:
            return out
        keys = [self._digest(slot, ids) for ids in encoded]

        # resolve cache hits and coalesce duplicate misses per digest
        pending: "OrderedDict[bytes, List[int]]" = OrderedDict()
        hits = 0
        with self._cache_lock:
            self.stats.requests += n
            for i, key in enumerate(keys):
                value = self.cache.get(key)
                if value is not None:
                    out[i] = value
                    hits += 1
                else:
                    pending.setdefault(key, []).append(i)
            self.stats.cache_hits += hits
            self.stats.cache_misses += n - hits
            self.stats.coalesced += (n - hits) - len(pending)

        if not pending:
            return out

        # length-sorted bucketing: each bucket pads only to its own longest
        # row, so short-snippet buckets run quadratic attention on short L.
        # Longest bucket first: the model's grow-only scratch pools then
        # allocate once for the pass instead of reallocating per bucket
        # (ascending order made every bucket outgrow the previous buffers,
        # extending the heap with freshly-faulted pages on each step)
        unique = sorted(pending.items(), key=lambda kv: len(encoded[kv[1][0]]),
                        reverse=True)
        for bucket in self._buckets(unique, [len(encoded[rows[0]]) for _, rows in unique]):
            split = pad_encoded([encoded[rows[0]] for _, rows in bucket],
                                slot.vocab.pad_id)
            with self._model_lock:
                probs = slot.model.predict_proba(split, batch_size=len(bucket))
            with self._cache_lock:
                self.stats.record_batch(len(bucket))
                for (key, rows), p in zip(bucket, probs):
                    self.stats.evictions += self.cache.put(key, p)
                    for i in rows:
                        out[i] = p
        return out

    def _buckets(self, unique: List, lengths: List[int]):
        """Greedy length-homogeneous buckets over descending-length rows.

        A bucket pads to its first (longest) row; it closes when it is full
        or when admitting the next (shorter) row would pad the bucket
        beyond ``bucket_waste`` x its real cells."""
        max_rows = self.config.max_batch_size
        waste = self.config.bucket_waste
        bucket: List = []
        real_cells = 0
        bucket_max = 0
        for item, length in zip(unique, lengths):
            if bucket and (
                len(bucket) == max_rows
                or (len(bucket) + 1) * bucket_max > waste * (real_cells + length)
            ):
                yield bucket
                bucket, real_cells = [], 0
            if not bucket:
                bucket_max = length
            bucket.append(item)
            real_cells += length
        if bucket:
            yield bucket

    # -- async queue API ---------------------------------------------------

    def submit(self, code: str) -> Future:
        """Enqueue one snippet; the returned future resolves to its (2,)
        probability vector once a micro-batch containing it has run.

        The request snapshots the current :class:`ModelSlot`, so a
        :meth:`swap_model` racing the queue cannot run an old-vocabulary
        row through the new model.  A rejected snippet (byte cap / lex
        budget) resolves immediately to the neutral ``[0.5, 0.5]``
        placeholder rather than entering the batch queue."""
        if self._closed:
            raise RuntimeError("engine is closed")
        self._ensure_worker()
        future: Future = Future()
        slot = self._slot
        ids = self._encode(slot, code)
        if ids is None:
            future.set_result(np.full(2, 0.5, dtype=get_dtype()))
            return future
        self._queue.put((slot, ids, future))
        return future

    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._worker_loop, name="inference-engine", daemon=True)
                self._worker.start()

    def _worker_loop(self) -> None:
        cfg = self.config
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.monotonic() + cfg.flush_interval
            while len(batch) < cfg.max_batch_size:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._flush(batch)
                    return
                batch.append(nxt)
            self._flush(batch)

    def _flush(self, batch: List) -> None:
        # group by model slot: a swap_model racing the queue may leave rows
        # from two versions in one flush, and each must run on (and cache
        # under) the weights it snapshotted at submit time
        groups: "OrderedDict[int, List]" = OrderedDict()
        for item in batch:
            groups.setdefault(id(item[0]), []).append(item)
        for items in groups.values():
            slot = items[0][0]
            try:
                probs = self._predict_encoded([ids for _, ids, _ in items],
                                              slot)
            except BaseException as exc:  # surface errors to every waiter
                for _, _, future in items:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, _, future), p in zip(items, probs):
                if not future.done():
                    future.set_result(p)

    def close(self) -> None:
        """Stop the async worker (idempotent); sync APIs keep working."""
        self._closed = True
        with self._worker_lock:
            worker = self._worker
            self._worker = None
        if worker is not None and worker.is_alive():
            self._queue.put(_SHUTDOWN)
            worker.join(timeout=5.0)
        # a submit() racing close() may have enqueued behind the shutdown
        # sentinel; fail those futures instead of leaving waiters hanging
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                future = item[-1]
                if not future.done():
                    future.set_exception(RuntimeError("engine is closed"))

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
