"""Multi-model registry: every advisor head behind one serving engine.

The paper's advisor is really three classifiers asked in sequence — the
directive model ("should this loop get a ``#pragma omp parallel for``?",
§4.1) and the ``private`` / ``reduction`` clause models ("with which
clauses?", §5.2).  After PR 1 only the directive model sat behind
:class:`~repro.serve.engine.InferenceEngine`; this module hosts all of them
behind a single front door:

* :class:`ModelHead` / :class:`ModelRegistry` — named (model, vocab,
  max_len) triples.  ``ModelRegistry.from_context`` pulls the trained
  directive + clause models out of an experiment context;
  ``ModelRegistry.from_checkpoint`` reloads a directory written by
  :func:`repro.models.save_advisor`.
* :class:`MultiModelEngine` — one :class:`InferenceEngine` per head, all
  sharing a single lexing memo so a snippet is tokenized **once** no matter
  how many heads look at it.  Because every head truncates to the same
  ``max_len``, the encoded row *lengths* — and therefore the
  length-homogeneous bucket structure — are identical across heads, so the
  fan-out re-buckets nothing.
* :class:`FullAdvice` — the combined verdict: the directive
  :class:`~repro.serve.engine.Advice` plus one :class:`ClauseAdvice` per
  clause head, JSON-ready via :meth:`FullAdvice.as_dict`.

Two operability layers ride on top (see ``docs/operations.md``):

* **Hot reload** — :meth:`MultiModelEngine.reload` swaps every head to a
  new advisor checkpoint under live traffic; in-flight requests finish on
  the old weights and version-tagged cache keys guarantee no stale
  predictions survive the swap.  :class:`CheckpointWatcher` polls a
  checkpoint directory's manifest mtime and reloads automatically
  (``repro serve --watch DIR``).
* **Clause gating** — with ``EngineConfig.gate_margin`` set, the directive
  head is consulted first and clause heads only see snippets whose
  directive probability clears ``0.5 - gate_margin``, cutting clause-head
  compute on majority-negative traffic.

``repro serve --http`` and ``repro advise`` are the CLI front-ends; see
``docs/serving.md`` for the architecture walk-through.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.models.pragformer import PragFormer
from repro.serve.engine import (
    Advice,
    EngineConfig,
    InferenceEngine,
    LRUCache,
    source_digest,
)
from repro.serve.metrics import merge_engine_stats
from repro.tokenize import Vocab, text_tokens

__all__ = [
    "DEFAULT_CLAUSES",
    "DIRECTIVE",
    "CheckpointWatcher",
    "ClauseAdvice",
    "FullAdvice",
    "ModelHead",
    "ModelRegistry",
    "MultiModelEngine",
    "checkpoint_mtime",
]


def checkpoint_mtime(path) -> Optional[int]:
    """Manifest mtime (ns) of an advisor checkpoint, or ``None`` if absent.

    The ``advisor.json`` manifest is written *last* by
    :func:`repro.models.save_advisor`, so its mtime identifies a complete
    checkpoint.  One definition shared by :class:`CheckpointWatcher` and
    the CLI's ``--watch`` startup (which captures a baseline *before*
    loading the checkpoint, so a rollout landing mid-load is still seen).
    """
    from repro.models.persistence import _ADVISOR_MANIFEST

    try:
        return (Path(path) / _ADVISOR_MANIFEST).stat().st_mtime_ns
    except OSError:
        return None

#: Registry name of the mandatory directive head; all other heads are
#: treated as clause models.
DIRECTIVE = "directive"

#: The clause heads the paper trains (§5.2) — what ``from_context`` loads.
DEFAULT_CLAUSES = ("private", "reduction")


@dataclass(frozen=True)
class ModelHead:
    """One named classifier: model + the vocabulary it was trained with."""

    name: str
    model: PragFormer
    vocab: Vocab
    max_len: int


@dataclass(frozen=True)
class ClauseAdvice:
    """One clause head's verdict: probability plus the >0.5 suggestion."""

    probability: float
    suggested: bool


@dataclass(frozen=True)
class FullAdvice:
    """Combined advisor verdict: directive decision + per-clause verdicts.

    ``clauses`` maps clause-head name (``"private"``, ``"reduction"``) to
    :class:`ClauseAdvice`; a clause is only *recommended* when the snippet
    also needs a directive — a ``private`` clause on a serial loop is
    meaningless — which is what :meth:`recommended_clauses` encodes.
    """

    directive: Advice
    clauses: Dict[str, ClauseAdvice]

    def recommended_clauses(self) -> List[str]:
        """Clause names worth suggesting: directive-positive and p > 0.5."""
        if not self.directive.needs_directive:
            return []
        return [name for name, c in self.clauses.items() if c.suggested]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict — the ``/advise`` HTTP response body."""
        return {
            "needs_directive": self.directive.needs_directive,
            "p_directive": round(self.directive.probability, 6),
            "clauses": {
                name: {"probability": round(c.probability, 6),
                       "suggested": c.suggested}
                for name, c in self.clauses.items()
            },
            "recommended_clauses": self.recommended_clauses(),
        }


class ModelRegistry:
    """Ordered mapping of head name -> :class:`ModelHead`.

    The ``directive`` head is mandatory for serving (the advisor's primary
    question); clause heads are optional and fan out alongside it.
    """

    def __init__(self) -> None:
        self._heads: "OrderedDict[str, ModelHead]" = OrderedDict()

    def register(self, name: str, model: PragFormer, vocab: Vocab,
                 max_len: Optional[int] = None) -> ModelHead:
        """Add (or replace) a head; ``max_len`` defaults to the model's.

        Names must be filesystem-safe (``validate_head_name``, the same
        rule ``save_advisor`` enforces), so a serving registry can always
        be checkpointed."""
        from repro.models.persistence import validate_head_name

        validate_head_name(name)
        head = ModelHead(name, model, vocab, max_len or model.config.max_len)
        self._heads[name] = head
        return head

    def get(self, name: str) -> ModelHead:
        """Look up a head by name (KeyError with the known names if absent)."""
        try:
            return self._heads[name]
        except KeyError:
            raise KeyError(
                f"no head {name!r}; registered: {sorted(self._heads)}") from None

    def names(self) -> List[str]:
        """Head names in registration order."""
        return list(self._heads)

    def clause_names(self) -> List[str]:
        """All non-directive head names, in registration order."""
        return [n for n in self._heads if n != DIRECTIVE]

    def __contains__(self, name: str) -> bool:
        return name in self._heads

    def __len__(self) -> int:
        return len(self._heads)

    def __iter__(self) -> Iterator[ModelHead]:
        return iter(self._heads.values())

    # -- construction / persistence ---------------------------------------

    @classmethod
    def from_context(cls, ctx, clauses: Sequence[str] = DEFAULT_CLAUSES
                     ) -> "ModelRegistry":
        """Registry over an experiment context's trained advisor models.

        Pulls the TEXT-representation directive classifier plus one clause
        model per name in ``clauses`` (training each on first use, memoized
        by the context).
        """
        registry = cls()
        enc = ctx.encoded()
        registry.register(DIRECTIVE, ctx.pragformer, enc.vocab,
                          max_len=ctx.scale.pragformer.max_len)
        for clause in clauses:
            cenc = ctx.clause_encoded(clause)
            registry.register(clause, ctx.clause_model(clause), cenc.vocab,
                              max_len=cenc.max_len)
        return registry

    @classmethod
    def from_checkpoint(cls, path) -> "ModelRegistry":
        """Reload a registry saved by :meth:`save` / ``save_advisor``,
        including each head's serving ``max_len``."""
        from repro.models.persistence import load_advisor

        registry = cls()
        for name, (model, vocab, max_len) in load_advisor(path).items():
            registry.register(name, model, vocab, max_len=max_len)
        return registry

    def save(self, path) -> None:
        """Write every head to ``path`` via :func:`repro.models.save_advisor`."""
        from repro.models.persistence import save_advisor

        save_advisor({h.name: (h.model, h.vocab, h.max_len) for h in self},
                     path)


class _SharedLexMemo:
    """Thread-safe bounded memo of ``code -> token list``, shared by every
    head's engine so one snippet is lexed once for the whole fan-out.
    Storage is a lock-wrapped :class:`~repro.serve.engine.LRUCache`, the
    same eviction implementation the engines use."""

    def __init__(self, tokenize: Callable[[str], List[str]], capacity: int) -> None:
        self._tokenize = tokenize
        self._lock = threading.Lock()
        self._memo = LRUCache(capacity)
        self.lexed = 0  # distinct snippets actually lexed

    def __call__(self, code: str) -> List[str]:
        key = source_digest(code)
        with self._lock:
            hit = self._memo.get(key)
        if hit is not None:
            return hit
        tokens = self._tokenize(code)
        with self._lock:
            self.lexed += 1
            self._memo.put(key, tokens)
        return tokens


class MultiModelEngine:
    """All registry heads served through one batched, cached front door.

    One :class:`InferenceEngine` (own prediction LRU, own counters) per
    head; a shared :class:`_SharedLexMemo` so the expensive pure-Python lex
    runs once per distinct snippet regardless of head count.  The combined
    :meth:`advise_full` path fans a snippet out to the directive head and
    every clause head and folds the verdicts into one :class:`FullAdvice`.

    With ``config.gate_margin`` set, :meth:`advise_full_many` and
    :meth:`advise_full_async` consult the directive head first and only
    fan clause work out for snippets whose directive probability exceeds
    ``0.5 - gate_margin`` — gated-out snippets come back with an empty
    ``clauses`` dict (their recommendation list is empty either way).

    Thread-safe to the same degree as :class:`InferenceEngine`.  Use as a
    context manager (or call :meth:`close`) to stop the per-head async
    workers.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[EngineConfig] = None,
        tokenizer: Optional[Callable[[str], List[str]]] = None,
    ) -> None:
        if DIRECTIVE not in registry:
            raise ValueError(f"registry must contain a {DIRECTIVE!r} head")
        self.registry = registry
        self.config = config or EngineConfig()
        self.model_version = "0"
        self.lex_memo = _SharedLexMemo(tokenizer or text_tokens,
                                       self.config.cache_capacity)
        self.engines: Dict[str, InferenceEngine] = {
            head.name: InferenceEngine(head.model, head.vocab,
                                       max_len=head.max_len,
                                       config=self.config,
                                       tokenizer=self.lex_memo)
            for head in registry
        }
        self._reload_lock = threading.Lock()
        self._reload_count = 0
        self._gate_lock = threading.Lock()
        self.gated_snippets = 0    # snippets whose clause fan-out was skipped
        self.fanned_snippets = 0   # snippets that did reach the clause heads

    # -- directive-only paths (InferenceEngine-compatible surface) ---------

    @property
    def directive_engine(self) -> InferenceEngine:
        """The engine behind the mandatory ``directive`` head."""
        return self.engines[DIRECTIVE]

    def predict_proba(self, codes: Sequence[str]):
        """(N, 2) directive-head probabilities (clause heads untouched)."""
        return self.directive_engine.predict_proba(codes)

    def advise(self, code: str) -> Advice:
        """Directive-only advice for one snippet."""
        return self.directive_engine.advise(code)

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Directive-only advice for many snippets."""
        return self.directive_engine.advise_many(codes)

    # -- combined fan-out path ---------------------------------------------

    def advise_full(self, code: str) -> FullAdvice:
        """One snippet through all heads -> one :class:`FullAdvice`."""
        return self.advise_full_many([code])[0]

    @staticmethod
    def _clause_advice(p: float) -> ClauseAdvice:
        """The §4.1 decision rule for one clause head (positive iff > 0.5),
        shared by the sync fan-out and async paths so they cannot drift."""
        return ClauseAdvice(float(p), bool(float(p) > 0.5))

    @classmethod
    def _assemble_full(cls, p_directive: float,
                       clause_probs: Dict[str, float]) -> FullAdvice:
        """Positive-class probabilities -> :class:`FullAdvice`."""
        p = float(p_directive)
        return FullAdvice(
            Advice(p, bool(p > 0.5)),
            {name: cls._clause_advice(prob)
             for name, prob in clause_probs.items()},
        )

    def _fans_out(self, probability: float) -> bool:
        """Gating rule: does a snippet with this directive probability reach
        the clause heads?  Always true with gating disabled; with a margin,
        true for positives and for negatives within ``gate_margin`` of the
        0.5 decision boundary (so near-threshold verdicts still carry
        clause probabilities)."""
        margin = self.config.gate_margin
        return margin is None or float(probability) > 0.5 - margin

    def _count_gated(self, gated: int, fanned: int) -> None:
        """Accumulate gating counters (no-op when gating is disabled)."""
        if self.config.gate_margin is None:
            return
        with self._gate_lock:
            self.gated_snippets += gated
            self.fanned_snippets += fanned

    def advise_full_async(self, code: str,
                          timeout: Optional[float] = None) -> FullAdvice:
        """One snippet through every head via the async ``submit()`` queues.

        Unlike :meth:`advise_full` — which runs a batch-of-1 forward per
        head immediately — this enqueues the snippet on each head's
        micro-batching worker and blocks until the verdicts arrive, so
        *concurrent* callers (e.g. the HTTP server's handler threads) get
        coalesced into shared forward passes instead of each paying a
        batch-of-1.  Single-threaded callers pay at most one
        ``flush_interval`` of extra latency per head.

        With ``gate_margin`` set, the directive verdict is awaited first
        and clause heads are only enqueued when the snippet fans out —
        gating trades the lost head-level overlap for skipping the clause
        forwards entirely on directive-negative traffic.
        """
        if self.config.gate_margin is not None:
            p_dir = float(self.directive_engine.submit(code)
                          .result(timeout=timeout)[1])
            if not self._fans_out(p_dir):
                self._count_gated(1, 0)
                return self._assemble_full(p_dir, {})
            self._count_gated(0, 1)
            futures = [(name, engine.submit(code))
                       for name, engine in self.engines.items()
                       if name != DIRECTIVE]
            return self._assemble_full(p_dir, {
                name: float(future.result(timeout=timeout)[1])
                for name, future in futures})
        futures = [(name, engine.submit(code))
                   for name, engine in self.engines.items()]
        probs = {name: float(future.result(timeout=timeout)[1])
                 for name, future in futures}
        return self._assemble_full(
            probs[DIRECTIVE],
            {name: p for name, p in probs.items() if name != DIRECTIVE})

    def advise_full_many(self, codes: Sequence[str],
                         directive: Optional[Sequence[Advice]] = None
                         ) -> List[FullAdvice]:
        """Bulk combined advice: every head sees every fanned-out snippet.

        Tokenization is shared (one lex per distinct snippet), and since
        all heads truncate to the same ``max_len`` the per-head engines
        form identical length buckets — the fan-out costs one forward pass
        per head, nothing more.  Callers that already hold directive
        verdicts for ``codes`` (e.g. the CLI, which gates clause inference
        on them) can pass them via ``directive`` to skip re-scoring.

        With ``gate_margin`` set, clause heads only see the snippets that
        fan out (see :meth:`_fans_out`); gated-out snippets get an empty
        ``clauses`` dict.  Snippets that do fan out get byte-identical
        clause verdicts to an ungated engine — gating changes which rows
        run, never their values.
        """
        if directive is None:
            directive = self.directive_engine.advise_many(codes)
        elif len(directive) != len(codes):
            raise ValueError("directive advice must match codes 1:1")
        fan_idx = [i for i, adv in enumerate(directive)
                   if self._fans_out(adv.probability)]
        self._count_gated(len(codes) - len(fan_idx), len(fan_idx))
        fan_codes = [codes[i] for i in fan_idx]
        fan_row = {orig: row for row, orig in enumerate(fan_idx)}
        clause_probs = {
            name: self.engines[name].predict_proba(fan_codes)[:, 1]
            for name in self.registry.clause_names()
        }
        full = []
        for i, adv in enumerate(directive):
            row = fan_row.get(i)
            clauses = {} if row is None else {
                name: self._clause_advice(probs[row])
                for name, probs in clause_probs.items()
            }
            full.append(FullAdvice(adv, clauses))
        return full

    # -- hot reload ----------------------------------------------------------

    def reload(self, advisor_dir, version: Optional[str] = None) -> str:
        """Swap every head to the checkpoint in ``advisor_dir``, live.

        Loads the checkpoint (slow I/O, outside any lock), then swaps each
        head's engine to its new (model, vocab, max_len) under one fresh
        version tag.  Per head the swap is atomic — in-flight requests
        finish on the weights they started with, and version-tagged cache
        keys mean no prediction computed by the old model is ever served
        for the new one.  A request fanning out *during* the reload may
        combine old-directive with new-clause verdicts for one transient
        call; each verdict is still internally consistent.

        The checkpoint must provide every currently served head (extra
        heads in the checkpoint are ignored — the head set is fixed at
        construction).  Raises without touching the engines when the
        checkpoint is missing, malformed, or incomplete, so a failed
        reload leaves the old model serving.  ``version`` overrides the
        default ``v<n>:<dir>`` tag — :class:`~repro.serve.sharding
        .ShardedEngine` passes one tag to every worker so a fleet always
        agrees on its deployed version.  Returns the tag deployed (also
        reported by :meth:`stats` as ``model_version``).
        """
        from repro.models.persistence import load_advisor

        heads = load_advisor(advisor_dir)
        missing = [name for name in self.engines if name not in heads]
        if missing:
            raise ValueError(
                f"checkpoint {advisor_dir} lacks served heads {missing}; "
                f"it provides {sorted(heads)}")
        with self._reload_lock:
            self._reload_count += 1
            if version is None:
                version = f"v{self._reload_count}:{Path(advisor_dir).name}"
            registry = ModelRegistry()
            for name in self.registry.names():
                model, vocab, max_len = heads[name]
                registry.register(name, model, vocab, max_len=max_len)
                self.engines[name].swap_model(model, vocab, max_len,
                                              version=version)
            self.registry = registry
            self.model_version = version
        return version

    # -- observability ------------------------------------------------------

    def head_names(self) -> List[str]:
        """Hosted head names, in registration order (``/healthz`` surface)."""
        return self.registry.names()

    def stats(self) -> Dict[str, object]:
        """Nested per-head counters plus a combined roll-up.

        Shape: ``{"heads": {name: EngineStats.as_dict()}, "combined":
        merged counters, "snippets_lexed": distinct snippets lexed by the
        shared memo, "model_version": deployed checkpoint tag, "reloads":
        completed hot reloads, "clause_gating": gate config + skip
        counters}`` — JSON-ready for the ``/stats`` endpoint.
        """
        per_head = {name: eng.stats.as_dict() for name, eng in self.engines.items()}
        with self._gate_lock:
            gating = {
                "enabled": self.config.gate_margin is not None,
                "gate_margin": self.config.gate_margin,
                "gated_snippets": self.gated_snippets,
                "fanned_out": self.fanned_snippets,
            }
        return {
            "heads": per_head,
            "combined": merge_engine_stats(
                eng.stats for eng in self.engines.values()),
            "snippets_lexed": self.lex_memo.lexed,
            "model_version": self.model_version,
            "reloads": self._reload_count,
            "clause_gating": gating,
        }

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close every per-head engine (idempotent)."""
        for engine in self.engines.values():
            engine.close()

    def __enter__(self) -> "MultiModelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Sentinel default for ``CheckpointWatcher(baseline_mtime=...)``: stat the
#: manifest at construction time.
_STAT_AT_INIT = object()


class CheckpointWatcher:
    """Poll an advisor checkpoint directory and hot-reload on change.

    Backs ``repro serve --watch DIR``: a daemon thread stats the
    checkpoint's ``advisor.json`` manifest every ``interval`` seconds and
    calls ``advisor.reload(path)`` when its mtime moves.  The manifest is
    the right sentinel because :func:`repro.models.save_advisor` writes it
    *last* — a new mtime means every head's ``.npz`` is already on disk,
    so the watcher never loads a half-written checkpoint.

    A failed reload (corrupt or incomplete checkpoint) is recorded in
    ``last_error`` and polling continues — the advisor keeps serving the
    old weights.  ``advisor`` is anything exposing ``reload(path)``: a
    :class:`MultiModelEngine` or a
    :class:`~repro.serve.sharding.ShardedEngine` wrapping one per worker.

    ``baseline_mtime`` is the manifest mtime the advisor's *current*
    weights correspond to; by default the watcher stats the manifest at
    construction.  Callers that load the checkpoint *before* building the
    watcher (the CLI) should capture :func:`checkpoint_mtime` before
    loading and pass it here — otherwise a rollout landing during the
    load window is absorbed into the baseline and never served.
    """

    def __init__(self, advisor, path, interval: float = 2.0,
                 baseline_mtime=_STAT_AT_INIT) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.advisor = advisor
        self.path = Path(path)
        self.interval = interval
        self.reloads = 0          # successful reloads triggered by the watch
        self.last_error: Optional[str] = None
        self._last_mtime = (checkpoint_mtime(self.path)
                            if baseline_mtime is _STAT_AT_INIT
                            else baseline_mtime)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _manifest_mtime(self) -> Optional[int]:
        """The manifest's mtime in ns, or ``None`` while it doesn't exist."""
        return checkpoint_mtime(self.path)

    def poll_once(self) -> bool:
        """One poll step: reload if the manifest mtime moved.

        Returns True when a reload was performed (successfully or not —
        check ``last_error``); False when nothing changed.  Exposed so
        tests and manual operators can drive the watch loop themselves.
        """
        mtime = self._manifest_mtime()
        if mtime is None or mtime == self._last_mtime:
            return False
        # record the mtime before reloading: a *broken* checkpoint must not
        # be retried every interval, only when it changes again
        self._last_mtime = mtime
        try:
            self.advisor.reload(self.path)
        except Exception as exc:  # noqa: BLE001 — keep serving old weights
            self.last_error = f"{type(exc).__name__}: {exc}"
        else:
            self.reloads += 1
            self.last_error = None
        return True

    def start(self) -> "CheckpointWatcher":
        """Start the polling daemon thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="checkpoint-watcher", daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def stop(self) -> None:
        """Stop the polling thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    def __enter__(self) -> "CheckpointWatcher":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
