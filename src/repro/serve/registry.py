"""Multi-model registry: every advisor head behind one serving engine.

The paper's advisor is really three classifiers asked in sequence — the
directive model ("should this loop get a ``#pragma omp parallel for``?",
§4.1) and the ``private`` / ``reduction`` clause models ("with which
clauses?", §5.2).  After PR 1 only the directive model sat behind
:class:`~repro.serve.engine.InferenceEngine`; this module hosts all of them
behind a single front door:

* :class:`ModelHead` / :class:`ModelRegistry` — named (model, vocab,
  max_len) triples.  ``ModelRegistry.from_context`` pulls the trained
  directive + clause models out of an experiment context;
  ``ModelRegistry.from_checkpoint`` reloads a directory written by
  :func:`repro.models.save_advisor`.
* :class:`MultiModelEngine` — one :class:`InferenceEngine` per head, all
  sharing a single lexing memo so a snippet is tokenized **once** no matter
  how many heads look at it.  Because every head truncates to the same
  ``max_len``, the encoded row *lengths* — and therefore the
  length-homogeneous bucket structure — are identical across heads, so the
  fan-out re-buckets nothing.
* :class:`FullAdvice` — the combined verdict: the directive
  :class:`~repro.serve.engine.Advice` plus one :class:`ClauseAdvice` per
  clause head, JSON-ready via :meth:`FullAdvice.as_dict`.

Three operability layers ride on top (see ``docs/operations.md``):

* **Hot reload** — :meth:`MultiModelEngine.reload` swaps every head to a
  new advisor checkpoint under live traffic; in-flight requests finish on
  the old weights and version-tagged cache keys guarantee no stale
  predictions survive the swap.  :class:`CheckpointWatcher` polls a
  checkpoint directory's manifest mtime and reloads automatically
  (``repro serve --watch DIR``).
* **Clause gating** — with ``EngineConfig.gate_margin`` set, the directive
  head is consulted first and clause heads only see snippets whose
  directive probability clears ``0.5 - gate_margin``, cutting clause-head
  compute on majority-negative traffic.
* **Canary rollout** — :meth:`MultiModelEngine.start_canary` serves a new
  checkpoint to a deterministic digest-hash slice of traffic
  (:func:`canary_routes`) next to the current primary, accumulating
  per-arm latency / error / verdict-agreement counters
  (:class:`~repro.serve.metrics.ArmStats`);
  :meth:`~MultiModelEngine.promote` atomically makes the canary primary
  through the same versioned-slot machinery as :meth:`reload` (so no
  stale cache entry survives), :meth:`~MultiModelEngine.rollback` drops
  it, and an optional :class:`CanaryPolicy` auto-promotes or
  auto-rolls-back once enough canary traffic has been judged.

``repro serve --http`` and ``repro advise`` are the CLI front-ends; see
``docs/serving.md`` for the architecture walk-through.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.pragformer import PragFormer
from repro.serve.api import AdviceRequest, AdviceResult
from repro.serve.engine import (
    Advice,
    EngineConfig,
    InferenceEngine,
    LRUCache,
    source_digest,
)
from repro.serve.metrics import ArmStats, merge_engine_stats
from repro.tokenize import Vocab, robust_text_tokens, text_tokens

__all__ = [
    "DEFAULT_CLAUSES",
    "DIRECTIVE",
    "CanaryPolicy",
    "CheckpointWatcher",
    "ClauseAdvice",
    "FullAdvice",
    "ModelHead",
    "ModelRegistry",
    "MultiModelEngine",
    "canary_routes",
    "canary_routes_digest",
    "checkpoint_mtime",
]


def checkpoint_mtime(path) -> Optional[int]:
    """Manifest mtime (ns) of an advisor checkpoint, or ``None`` if absent.

    The ``advisor.json`` manifest is written *last* by
    :func:`repro.models.save_advisor`, so its mtime identifies a complete
    checkpoint.  One definition shared by :class:`CheckpointWatcher` and
    the CLI's ``--watch`` startup (which captures a baseline *before*
    loading the checkpoint, so a rollout landing mid-load is still seen).
    """
    from repro.models.persistence import _ADVISOR_MANIFEST

    try:
        return (Path(path) / _ADVISOR_MANIFEST).stat().st_mtime_ns
    except OSError:
        return None

#: Registry name of the mandatory directive head; all other heads are
#: treated as clause models.
DIRECTIVE = "directive"

#: The clause heads the paper trains (§5.2) — what ``from_context`` loads.
DEFAULT_CLAUSES = ("private", "reduction")


@dataclass(frozen=True)
class ModelHead:
    """One named classifier: model + the vocabulary it was trained with."""

    name: str
    model: PragFormer
    vocab: Vocab
    max_len: int


@dataclass(frozen=True)
class ClauseAdvice:
    """One clause head's verdict: probability plus the >0.5 suggestion."""

    probability: float
    suggested: bool


@dataclass(frozen=True)
class FullAdvice:
    """Combined advisor verdict: directive decision + per-clause verdicts.

    ``clauses`` maps clause-head name (``"private"``, ``"reduction"``) to
    :class:`ClauseAdvice`; a clause is only *recommended* when the snippet
    also needs a directive — a ``private`` clause on a serial loop is
    meaningless — which is what :meth:`recommended_clauses` encodes.
    ``degraded`` marks a verdict the fleet could not compute (see
    :class:`~repro.serve.engine.Advice`): neutral placeholder values, no
    clause verdicts, and the flag surfaces in :meth:`as_dict` so HTTP
    clients can tell.
    """

    directive: Advice
    clauses: Dict[str, ClauseAdvice]
    degraded: bool = False

    def recommended_clauses(self) -> List[str]:
        """Clause names worth suggesting: directive-positive and p > 0.5."""
        if not self.directive.needs_directive:
            return []
        return [name for name, c in self.clauses.items() if c.suggested]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict — the ``/advise`` HTTP response body."""
        return {
            "needs_directive": self.directive.needs_directive,
            "p_directive": round(self.directive.probability, 6),
            "clauses": {
                name: {"probability": round(c.probability, 6),
                       "suggested": c.suggested}
                for name, c in self.clauses.items()
            },
            "recommended_clauses": self.recommended_clauses(),
            "degraded": self.degraded,
        }


class ModelRegistry:
    """Ordered mapping of head name -> :class:`ModelHead`.

    The ``directive`` head is mandatory for serving (the advisor's primary
    question); clause heads are optional and fan out alongside it.
    """

    def __init__(self) -> None:
        self._heads: "OrderedDict[str, ModelHead]" = OrderedDict()

    def register(self, name: str, model: PragFormer, vocab: Vocab,
                 max_len: Optional[int] = None) -> ModelHead:
        """Add (or replace) a head; ``max_len`` defaults to the model's.

        Names must be filesystem-safe (``validate_head_name``, the same
        rule ``save_advisor`` enforces), so a serving registry can always
        be checkpointed."""
        from repro.models.persistence import validate_head_name

        validate_head_name(name)
        head = ModelHead(name, model, vocab, max_len or model.config.max_len)
        self._heads[name] = head
        return head

    def get(self, name: str) -> ModelHead:
        """Look up a head by name (KeyError with the known names if absent)."""
        try:
            return self._heads[name]
        except KeyError:
            raise KeyError(
                f"no head {name!r}; registered: {sorted(self._heads)}") from None

    def names(self) -> List[str]:
        """Head names in registration order."""
        return list(self._heads)

    def clause_names(self) -> List[str]:
        """All non-directive head names, in registration order."""
        return [n for n in self._heads if n != DIRECTIVE]

    def __contains__(self, name: str) -> bool:
        return name in self._heads

    def __len__(self) -> int:
        return len(self._heads)

    def __iter__(self) -> Iterator[ModelHead]:
        return iter(self._heads.values())

    # -- construction / persistence ---------------------------------------

    @classmethod
    def from_context(cls, ctx, clauses: Sequence[str] = DEFAULT_CLAUSES
                     ) -> "ModelRegistry":
        """Registry over an experiment context's trained advisor models.

        Pulls the TEXT-representation directive classifier plus one clause
        model per name in ``clauses`` (training each on first use, memoized
        by the context).
        """
        registry = cls()
        enc = ctx.encoded()
        registry.register(DIRECTIVE, ctx.pragformer, enc.vocab,
                          max_len=ctx.scale.pragformer.max_len)
        for clause in clauses:
            cenc = ctx.clause_encoded(clause)
            registry.register(clause, ctx.clause_model(clause), cenc.vocab,
                              max_len=cenc.max_len)
        return registry

    @classmethod
    def from_checkpoint(cls, path, share: bool = False):
        """Reload a registry saved by :meth:`save` / ``save_advisor``,
        including each head's serving ``max_len``.

        With ``share=True`` the heads are additionally published into a
        fresh shared weights segment (``load_advisor(share=True)``) and
        the return value becomes ``(registry, handle)`` where ``handle``
        is the owning :class:`~repro.models.persistence.SharedWeights`
        (``None`` for a legacy checkpoint without a blob).  Under a
        ``fork``-started shard fleet this is what makes the *initial*
        weights one-copy too, not just reloads.
        """
        from repro.models.persistence import load_advisor

        registry = cls()
        if share:
            heads, handle = load_advisor(path, share=True)
            for name, (model, vocab, max_len) in heads.items():
                registry.register(name, model, vocab, max_len=max_len)
            return registry, handle
        for name, (model, vocab, max_len) in load_advisor(path).items():
            registry.register(name, model, vocab, max_len=max_len)
        return registry

    def save(self, path) -> None:
        """Write every head to ``path`` via :func:`repro.models.save_advisor`."""
        from repro.models.persistence import save_advisor

        save_advisor({h.name: (h.model, h.vocab, h.max_len) for h in self},
                     path)


class _SharedLexMemo:
    """Thread-safe bounded memo of ``code -> token list``, shared by every
    head's engine so one snippet is lexed once for the whole fan-out.
    Storage is a lock-wrapped :class:`~repro.serve.engine.LRUCache`, the
    same eviction implementation the engines use."""

    def __init__(self, tokenize: Callable[[str], List[str]], capacity: int) -> None:
        self._tokenize = tokenize
        self._lock = threading.Lock()
        self._memo = LRUCache(capacity)
        self.lexed = 0  # distinct snippets actually lexed

    def __call__(self, code: str) -> List[str]:
        key = source_digest(code)
        with self._lock:
            hit = self._memo.get(key)
        if hit is not None:
            return hit
        tokens = self._tokenize(code)
        with self._lock:
            self.lexed += 1
            self._memo.put(key, tokens)
        return tokens


def canary_routes_digest(digest: bytes, fraction: float) -> bool:
    """:func:`canary_routes` over an already-computed 16-byte digest.

    The shared-memory transport (:mod:`repro.serve.shm_ring`) ships each
    snippet's :func:`~repro.serve.engine.source_digest` instead of its
    source text, so workers route canary traffic from the digest alone —
    this is the one arm-assignment rule both forms must agree on.
    """
    return int.from_bytes(digest, "big") % 100 < round(fraction * 100)


def canary_routes(code: str, fraction: float) -> bool:
    """Deterministic canary-arm assignment for one snippet.

    A snippet goes to the canary iff ``digest % 100 < fraction * 100``
    over a blake2b digest of the source text, so the assignment is stable
    across calls, processes, and sharded workers (every worker of a fleet
    splits traffic identically), and a given snippet never flaps between
    arms mid-rollout.  The 16-byte digest is deliberately *not* the
    8-byte one shard routing reduces — blake2b output depends on the
    digest size, so the two hashes are independent; reusing the routing
    integer would correlate ``% 100`` with ``% n_shards`` and starve some
    shards of canary traffic whenever ``n_shards`` shares a factor with
    100 (e.g. 10 shards at fraction 0.05 would put every canary snippet
    on shards 0-4).  ``fraction`` is quantized to whole percent —
    ``start_canary`` rejects fractions that would quantize to zero.
    """
    return canary_routes_digest(source_digest(code, size=16), fraction)


@dataclass(frozen=True)
class CanaryPolicy:
    """Auto-promotion rule for a canary rollout.

    Once the canary arm has judged ``min_samples`` outcomes (served +
    errored snippets), the policy fires exactly once: **roll back** when
    the arm's error rate exceeds ``max_error_rate`` or its directive
    verdicts disagree with the primary arm's on more than
    ``max_disagreement`` of the compared snippets; otherwise **promote**
    (with ``auto_promote=False`` the policy only ever rolls back — the
    operator promotes manually after reading ``/stats``).
    """

    min_samples: int = 200
    max_disagreement: float = 0.02
    max_error_rate: float = 0.0
    auto_promote: bool = True

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 <= self.max_disagreement <= 1.0:
            raise ValueError("max_disagreement must be in [0, 1]")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError("max_error_rate must be in [0, 1]")

    def judge(self, canary: ArmStats) -> Optional[Tuple[str, str]]:
        """``("promote"|"rollback", reason)`` once the sample floor is met,
        else ``None`` (keep serving both arms)."""
        if canary.samples < self.min_samples:
            return None
        if canary.error_rate() > self.max_error_rate:
            return ("rollback",
                    f"error rate {canary.error_rate():.4f} > "
                    f"max_error_rate {self.max_error_rate} "
                    f"after {canary.samples} samples")
        if canary.disagreement_rate() > self.max_disagreement:
            return ("rollback",
                    f"disagreement rate {canary.disagreement_rate():.4f} > "
                    f"max_disagreement {self.max_disagreement} "
                    f"after {canary.samples} samples")
        if self.auto_promote:
            return ("promote",
                    f"{canary.samples} samples within policy bounds "
                    f"(disagreement {canary.disagreement_rate():.4f}, "
                    f"errors {canary.error_rate():.4f})")
        return None


class _CanaryState:
    """Everything one live canary rollout owns, behind one lock.

    ``engines`` is the canary's own per-head :class:`InferenceEngine` set
    (sharing the parent's lex memo); ``primary``/``canary`` are the
    per-arm counters.  ``finished`` flips exactly once — whichever of
    promote / rollback / policy decision claims the state first wins, and
    requests that raced the finish fall back to the primary arm without
    polluting the counters.
    """

    def __init__(self, version: str, fraction: float,
                 registry: ModelRegistry,
                 engines: Dict[str, InferenceEngine],
                 policy: Optional[CanaryPolicy],
                 started_at: float) -> None:
        self.version = version
        self.fraction = fraction
        self.registry = registry
        self.engines = engines
        self.policy = policy
        self.started_at = started_at
        self.primary = ArmStats()
        self.canary = ArmStats()
        self._lock = threading.Lock()
        self._decided = False   # the policy fired (promote/rollback queued)
        self.finished = False   # promote()/rollback() claimed the state

    def note_primary(self, n: int, elapsed_s: float) -> None:
        """Account ``n`` primary-arm snippets served in ``elapsed_s``."""
        with self._lock:
            self.primary.record_served(n, elapsed_s)

    def note_primary_errors(self, n: int) -> None:
        """Account ``n`` primary-arm failures (the exception propagates)."""
        with self._lock:
            self.primary.errors += n

    def note_canary(self, n: int, elapsed_s: float,
                    agreed: Sequence[bool]) -> Optional[Tuple[str, str]]:
        """Account served canary traffic; returns a policy decision at most
        once over the state's lifetime."""
        with self._lock:
            self.canary.record_served(n, elapsed_s)
            self.canary.record_agreements(agreed)
            return self._judge_locked()

    def note_canary_errors(self, n: int) -> Optional[Tuple[str, str]]:
        """Account failed canary traffic (served by primary fallback)."""
        with self._lock:
            if self.finished:
                # the promote/rollback race itself closed the canary
                # engines under this request; that is not a model failure
                return None
            self.canary.errors += n
            return self._judge_locked()

    def _judge_locked(self) -> Optional[Tuple[str, str]]:
        if self.policy is None or self._decided or self.finished:
            return None
        decision = self.policy.judge(self.canary)
        if decision is not None:
            self._decided = True
        return decision

    def arms_dict(self) -> Dict[str, object]:
        """JSON-ready per-arm counter snapshot."""
        with self._lock:
            return {"primary": self.primary.as_dict(),
                    "canary": self.canary.as_dict()}


class MultiModelEngine:
    """All registry heads served through one batched, cached front door.

    One :class:`InferenceEngine` (own prediction LRU, own counters) per
    head; a shared :class:`_SharedLexMemo` so the expensive pure-Python lex
    runs once per distinct snippet regardless of head count.  The combined
    :meth:`advise_full` path fans a snippet out to the directive head and
    every clause head and folds the verdicts into one :class:`FullAdvice`.

    With ``config.gate_margin`` set, :meth:`advise_full_many` and
    :meth:`advise_full_async` consult the directive head first and only
    fan clause work out for snippets whose directive probability exceeds
    ``0.5 - gate_margin`` — gated-out snippets come back with an empty
    ``clauses`` dict (their recommendation list is empty either way).

    :meth:`start_canary` deploys a second checkpoint to a deterministic
    digest slice of traffic alongside the primary, with per-arm counters
    and :meth:`promote` / :meth:`rollback` (or a :class:`CanaryPolicy`)
    to finish the rollout — see ``docs/operations.md``.

    Thread-safe to the same degree as :class:`InferenceEngine`.  Use as a
    context manager (or call :meth:`close`) to stop the per-head async
    workers.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[EngineConfig] = None,
        tokenizer: Optional[Callable[[str], List[str]]] = None,
    ) -> None:
        if DIRECTIVE not in registry:
            raise ValueError(f"registry must contain a {DIRECTIVE!r} head")
        self.registry = registry
        self.config = config or EngineConfig()
        self.model_version = "0"
        # recovering lexer by default, matching InferenceEngine: clean
        # input tokenizes identically to the strict lexer, dirty input
        # yields ERROR_TOKEN instead of an exception
        self.lex_memo = _SharedLexMemo(tokenizer or robust_text_tokens,
                                       self.config.cache_capacity)
        self.engines: Dict[str, InferenceEngine] = {
            head.name: InferenceEngine(head.model, head.vocab,
                                       max_len=head.max_len,
                                       config=self.config,
                                       tokenizer=self.lex_memo)
            for head in registry
        }
        self._reload_lock = threading.Lock()
        self._reload_count = 0
        self._gate_lock = threading.Lock()
        self.gated_snippets = 0    # snippets whose clause fan-out was skipped
        self.fanned_snippets = 0   # snippets that did reach the clause heads
        self._canary: Optional[_CanaryState] = None
        self._last_canary: Optional[Dict[str, object]] = None
        # vocabulary remap tables for the pre-encoded (shared-memory) path:
        # (id(src_vocab), id(dst_vocab)) -> int32 id translation table
        self._remap_lock = threading.Lock()
        self._remap_tables: Dict[Tuple[int, int], np.ndarray] = {}
        # shared-weights attachments this engine's models are bound onto
        # (``reload(segment=)`` / ``start_canary(segment=)``); mappings are
        # closed at engine close, unlink stays with the segment's creator
        self._weights_handles: List[object] = []
        self._weights_mode = "private"

    # -- directive-only paths (InferenceEngine-compatible surface) ---------

    @property
    def directive_engine(self) -> InferenceEngine:
        """The engine behind the mandatory ``directive`` head."""
        return self.engines[DIRECTIVE]

    def predict_proba(self, codes: Sequence[str]):
        """(N, 2) directive-head probabilities (clause heads untouched)."""
        return self.directive_engine.predict_proba(codes)

    def advise(self, code: str) -> Advice:
        """Directive-only advice for one snippet.

        .. deprecated:: use :meth:`advise_v1` — same verdict, plus the
           clause advice and operational fields the legacy shape lacks.
        """
        return self.directive_engine.advise(code)

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Directive-only advice for many snippets.

        .. deprecated:: use :meth:`advise_v1` — same verdicts (this is
           the directive core it delegates to), richer results.
        """
        return self.directive_engine.advise_many(codes)

    # -- pre-encoded (shared-memory transport) paths ------------------------

    def codec(self) -> Optional[dict]:
        """Describe how to encode snippets for this fleet, or ``None``.

        Same contract as :meth:`InferenceEngine.codec`, from the
        directive head's engine (the transport vocabulary): the router
        encodes every snippet once under this codec and ships int32 id
        rows; clause and canary heads whose vocabularies differ are fed
        through per-head remap tables worker-side.  ``heads`` carries the
        fleet's head-name order — the index space clause verdicts use on
        the wire.  ``tokenizer`` names which known lexer the router must
        replicate and ``max_snippet_bytes`` ships the byte cap (see
        :meth:`InferenceEngine.codec`).  ``None`` when a custom tokenizer
        makes router-side encoding impossible (the fleet then stays on
        the queue transport).
        """
        if self.lex_memo._tokenize is robust_text_tokens:
            tokenizer_name = "resilient"
        elif self.lex_memo._tokenize is text_tokens:
            tokenizer_name = "strict"
        else:
            return None
        engine = self.directive_engine
        return {"version": self.model_version, "max_len": engine.max_len,
                "vocab": engine.vocab, "heads": self.head_names(),
                "tokenizer": tokenizer_name,
                "max_snippet_bytes": self.config.max_snippet_bytes}

    def predict_proba_encoded(self, rows: Sequence[np.ndarray]) -> np.ndarray:
        """Directive-head probabilities for pre-encoded token-id rows."""
        return self.directive_engine.predict_proba_encoded(rows)

    def advise_many_encoded(self, rows: Sequence[np.ndarray]) -> List[Advice]:
        """Directive-only advice for pre-encoded token-id rows.

        .. deprecated:: external callers should use :meth:`advise_v1`
           with ``ids=``/``digest=`` requests; this remains as the
           transport-internal directive core.
        """
        return self.directive_engine.advise_many_encoded(rows)

    def _remap_table(self, src: Vocab, dst: Vocab) -> np.ndarray:
        """Id-translation table from ``src`` into ``dst`` (memoized).

        ``table[src_id] = dst.token_to_id(src.id_to_token(src_id))`` —
        specials map to themselves (every :class:`~repro.tokenize.Vocab`
        pins them to ids 0-3) and tokens absent from ``dst`` map to its
        UNK, matching what ``dst`` would produce from the text itself for
        every token the transport vocabulary knows.  (A token OOV in the
        *transport* vocab is already UNK on the wire, so a clause head
        that privately knows it still sees UNK — the one place the
        pre-encoded path can differ from re-encoding source text; heads
        trained on the same corpus share the vocabulary in practice.)"""
        key = (id(src), id(dst))
        with self._remap_lock:
            table = self._remap_tables.get(key)
        if table is None:
            table = np.asarray(
                [dst.token_to_id(src.id_to_token(i)) for i in range(len(src))],
                dtype=np.int32)
            with self._remap_lock:
                if len(self._remap_tables) > 32:
                    # vocab objects die with their slots; don't pin them
                    self._remap_tables.clear()
                self._remap_tables[key] = table
        return table

    def _rows_for(self, engine: InferenceEngine,
                  rows: Sequence[np.ndarray]) -> Sequence[np.ndarray]:
        """Translate transport-encoded rows into ``engine``'s vocabulary.

        Rows arrive encoded under the directive head's codec; a head
        sharing that vocabulary object (the common case) passes through
        untouched, otherwise each row is remapped id-by-id and truncated
        to the head's own ``max_len``."""
        src = self.directive_engine.vocab
        dst = engine.vocab
        if dst is src:
            return rows
        table = self._remap_table(src, dst)
        max_len = engine.max_len
        return [table[row][:max_len] for row in rows]

    # -- combined fan-out path ---------------------------------------------

    def advise_full(self, code: str) -> FullAdvice:
        """One snippet through all heads -> one :class:`FullAdvice`.

        .. deprecated:: use :meth:`advise_v1` — identical verdicts (the
           parity test pins them field by field), richer result shape.
        """
        return self.advise_full_many([code])[0]

    @staticmethod
    def _clause_advice(p: float) -> ClauseAdvice:
        """The §4.1 decision rule for one clause head (positive iff > 0.5),
        shared by the sync fan-out and async paths so they cannot drift."""
        return ClauseAdvice(float(p), bool(float(p) > 0.5))

    @classmethod
    def _assemble_full(cls, p_directive: float,
                       clause_probs: Dict[str, float],
                       degraded: bool = False) -> FullAdvice:
        """Positive-class probabilities -> :class:`FullAdvice`."""
        p = float(p_directive)
        return FullAdvice(
            Advice(p, bool(p > 0.5), degraded=degraded),
            {name: cls._clause_advice(prob)
             for name, prob in clause_probs.items()},
            degraded=degraded,
        )

    def _fans_out(self, probability: float) -> bool:
        """Gating rule: does a snippet with this directive probability reach
        the clause heads?  Always true with gating disabled; with a margin,
        true for positives and for negatives within ``gate_margin`` of the
        0.5 decision boundary (so near-threshold verdicts still carry
        clause probabilities)."""
        margin = self.config.gate_margin
        return margin is None or float(probability) > 0.5 - margin

    def _count_gated(self, gated: int, fanned: int) -> None:
        """Accumulate gating counters (no-op when gating is disabled)."""
        if self.config.gate_margin is None:
            return
        with self._gate_lock:
            self.gated_snippets += gated
            self.fanned_snippets += fanned

    def _async_fan_out(self, engines: Dict[str, InferenceEngine], code: str,
                       timeout: Optional[float]) -> FullAdvice:
        """One snippet through ``engines`` via the async ``submit()``
        queues, honouring clause gating — the shared core of the primary
        and canary arms of :meth:`advise_full_async`."""
        directive_engine = engines[DIRECTIVE]
        # dirty-input admission first: a snippet the directive engine
        # rejects (byte cap / lex budget) gets the neutral degraded verdict
        # immediately — clause heads would reject it identically, so
        # enqueueing them would only burn queue slots
        if directive_engine._encode(directive_engine._slot, code) is None:
            return self._assemble_full(0.5, {}, degraded=True)
        if self.config.gate_margin is not None:
            p_dir = float(directive_engine.submit(code)
                          .result(timeout=timeout)[1])
            if not self._fans_out(p_dir):
                self._count_gated(1, 0)
                return self._assemble_full(p_dir, {})
            self._count_gated(0, 1)
            futures = [(name, engine.submit(code))
                       for name, engine in engines.items()
                       if name != DIRECTIVE]
            return self._assemble_full(p_dir, {
                name: float(future.result(timeout=timeout)[1])
                for name, future in futures})
        futures = [(name, engine.submit(code))
                   for name, engine in engines.items()]
        probs = {name: float(future.result(timeout=timeout)[1])
                 for name, future in futures}
        return self._assemble_full(
            probs[DIRECTIVE],
            {name: p for name, p in probs.items() if name != DIRECTIVE})

    def advise_full_async(self, code: str,
                          timeout: Optional[float] = None) -> FullAdvice:
        """One snippet through every head via the async ``submit()`` queues.

        Unlike :meth:`advise_full` — which runs a batch-of-1 forward per
        head immediately — this enqueues the snippet on each head's
        micro-batching worker and blocks until the verdicts arrive, so
        *concurrent* callers (e.g. the HTTP server's handler threads) get
        coalesced into shared forward passes instead of each paying a
        batch-of-1.  Single-threaded callers pay at most one
        ``flush_interval`` of extra latency per head.

        With ``gate_margin`` set, the directive verdict is awaited first
        and clause heads are only enqueued when the snippet fans out —
        gating trades the lost head-level overlap for skipping the clause
        forwards entirely on directive-negative traffic.

        With a canary active (:meth:`start_canary`), snippets in the
        canary's digest slice are served by the canary engines (with a
        shadow primary directive verdict for the agreement counters) and
        everything else by the primary, each arm feeding its
        :class:`~repro.serve.metrics.ArmStats`.
        """
        state = self._canary
        if state is None:
            return self._async_fan_out(self.engines, code, timeout)
        if canary_routes(code, state.fraction):
            return self._canary_async(state, code, timeout)
        start = time.perf_counter()
        try:
            full = self._async_fan_out(self.engines, code, timeout)
        except Exception:
            state.note_primary_errors(1)
            raise
        state.note_primary(1, time.perf_counter() - start)
        return full

    def _canary_async(self, state: "_CanaryState", code: str,
                      timeout: Optional[float]) -> FullAdvice:
        """Canary-arm async path: serve from the canary engines, shadow the
        primary directive head for verdict agreement, and fall back to the
        primary arm (counting an error) if the canary fails — a bad canary
        checkpoint degrades metrics, never availability."""
        shadow = self.directive_engine.submit(code)
        start = time.perf_counter()
        try:
            full = self._async_fan_out(state.engines, code, timeout)
        except Exception:
            self._apply_decision(state.note_canary_errors(1))
            full = self._async_fan_out(self.engines, code, timeout)
            shadow.result(timeout=timeout)  # drain the shadow verdict
            return full
        elapsed = time.perf_counter() - start
        p_primary = float(shadow.result(timeout=timeout)[1])
        agreed = full.directive.needs_directive == bool(p_primary > 0.5)
        self._apply_decision(state.note_canary(1, elapsed, [agreed]))
        return full

    def _fan_out(self, engines: Dict[str, InferenceEngine],
                 codes: Sequence[str],
                 directive: Optional[Sequence[Advice]]) -> List[FullAdvice]:
        """Bulk fan-out through one arm's ``engines`` (gating included) —
        the shared core of the primary and canary arms of
        :meth:`advise_full_many`."""
        if directive is None:
            directive = engines[DIRECTIVE].advise_many(codes)
        # degraded (rejected) snippets never reach the clause heads: the
        # heads share the same dirty-input limits and would reject them
        # identically, so they stay out of both gating counters
        n_degraded = sum(1 for adv in directive if adv.degraded)
        fan_idx = [i for i, adv in enumerate(directive)
                   if not adv.degraded and self._fans_out(adv.probability)]
        self._count_gated(len(codes) - n_degraded - len(fan_idx),
                          len(fan_idx))
        fan_codes = [codes[i] for i in fan_idx]
        fan_row = {orig: row for row, orig in enumerate(fan_idx)}
        clause_probs = {
            name: engine.predict_proba(fan_codes)[:, 1]
            for name, engine in engines.items() if name != DIRECTIVE
        }
        full = []
        for i, adv in enumerate(directive):
            row = fan_row.get(i)
            clauses = {} if row is None else {
                name: self._clause_advice(probs[row])
                for name, probs in clause_probs.items()
            }
            full.append(FullAdvice(adv, clauses, degraded=adv.degraded))
        return full

    def _fan_out_encoded(self, engines: Dict[str, InferenceEngine],
                         rows: Sequence[np.ndarray]) -> List[FullAdvice]:
        """Bulk fan-out of pre-encoded rows through one arm's ``engines``
        — the encoded twin of :meth:`_fan_out` (same gating rule, same
        assembly), with rows translated per head via :meth:`_rows_for`."""
        directive = engines[DIRECTIVE].advise_many_encoded(
            self._rows_for(engines[DIRECTIVE], rows))
        fan_idx = [i for i, adv in enumerate(directive)
                   if self._fans_out(adv.probability)]
        self._count_gated(len(rows) - len(fan_idx), len(fan_idx))
        fan_rows = [rows[i] for i in fan_idx]
        fan_row = {orig: row for row, orig in enumerate(fan_idx)}
        clause_probs = {
            name: engine.predict_proba_encoded(
                self._rows_for(engine, fan_rows))[:, 1]
            for name, engine in engines.items() if name != DIRECTIVE
        }
        full = []
        for i, adv in enumerate(directive):
            row = fan_row.get(i)
            clauses = {} if row is None else {
                name: self._clause_advice(probs[row])
                for name, probs in clause_probs.items()
            }
            full.append(FullAdvice(adv, clauses, degraded=adv.degraded))
        return full

    def advise_full_many_encoded(self, rows: Sequence[np.ndarray],
                                 digests: Sequence[bytes]
                                 ) -> List[FullAdvice]:
        """Bulk combined advice for pre-encoded token-id rows.

        The shared-memory transport's ``advise_full_many``: ``rows`` were
        encoded by the router under this fleet's :meth:`codec` and
        ``digests`` are the matching 16-byte source digests — the worker
        never sees source text, so canary routing runs on the digests
        (:func:`canary_routes_digest`, the identical slice the text path
        computes) and shadow/agreement accounting works exactly as in
        :meth:`advise_full_many`.

        .. deprecated:: external callers should use :meth:`advise_v1`;
           this remains as the shared-memory transport's fan-out core.
        """
        if len(digests) != len(rows):
            raise ValueError("digests must match rows 1:1")
        rows = [np.ascontiguousarray(row, dtype=np.int32) for row in rows]
        state = self._canary
        if state is None:
            return self._fan_out_encoded(self.engines, rows)
        return self._advise_full_many_canary_encoded(state, rows, digests)

    def _advise_full_many_canary_encoded(self, state: "_CanaryState",
                                         rows: Sequence[np.ndarray],
                                         digests: Sequence[bytes]
                                         ) -> List[FullAdvice]:
        """Encoded twin of :meth:`_advise_full_many_canary`: split by
        digest, serve each arm, merge in request order."""
        c_rows = [i for i in range(len(rows))
                  if canary_routes_digest(digests[i], state.fraction)]
        c_set = set(c_rows)
        p_rows = [i for i in range(len(rows)) if i not in c_set]
        out: List[Optional[FullAdvice]] = [None] * len(rows)
        if p_rows:
            start = time.perf_counter()
            try:
                p_full = self._fan_out_encoded(self.engines,
                                               [rows[i] for i in p_rows])
            except Exception:
                state.note_primary_errors(len(p_rows))
                raise
            state.note_primary(len(p_rows), time.perf_counter() - start)
            for i, full in zip(p_rows, p_full):
                out[i] = full
        if c_rows:
            c_encoded = [rows[i] for i in c_rows]
            start = time.perf_counter()
            try:
                c_full = self._fan_out_encoded(state.engines, c_encoded)
            except Exception:
                # same availability rule as the text path: a failing
                # canary arm is served by the primary and counted
                self._apply_decision(state.note_canary_errors(len(c_rows)))
                c_full = self._fan_out_encoded(self.engines, c_encoded)
                for i, full in zip(c_rows, c_full):
                    out[i] = full
                return out
            elapsed = time.perf_counter() - start
            shadow = self.directive_engine.advise_many_encoded(c_encoded)
            agreed = [got.directive.needs_directive == ref.needs_directive
                      for got, ref in zip(c_full, shadow)]
            self._apply_decision(
                state.note_canary(len(c_rows), elapsed, agreed))
            for i, full in zip(c_rows, c_full):
                out[i] = full
        return out

    def advise_full_many(self, codes: Sequence[str],
                         directive: Optional[Sequence[Advice]] = None
                         ) -> List[FullAdvice]:
        """Bulk combined advice: every head sees every fanned-out snippet.

        Tokenization is shared (one lex per distinct snippet), and since
        all heads truncate to the same ``max_len`` the per-head engines
        form identical length buckets — the fan-out costs one forward pass
        per head, nothing more.  Callers that already hold directive
        verdicts for ``codes`` (e.g. the CLI, which gates clause inference
        on them) can pass them via ``directive`` to skip re-scoring.

        With ``gate_margin`` set, clause heads only see the snippets that
        fan out (see :meth:`_fans_out`); gated-out snippets get an empty
        ``clauses`` dict.  Snippets that do fan out get byte-identical
        clause verdicts to an ungated engine — gating changes which rows
        run, never their values.

        With a canary active, the batch is split by :func:`canary_routes`:
        the canary slice is served by the canary engines (shadow primary
        directive verdicts feed the agreement counters), the rest by the
        primary, and results come back in request order either way.

        .. deprecated:: external callers should use :meth:`advise_v1`,
           which wraps this path and adds the operational fields; this
           remains as the fan-out core every surface shares.
        """
        if directive is not None and len(directive) != len(codes):
            raise ValueError("directive advice must match codes 1:1")
        state = self._canary
        if state is None:
            return self._fan_out(self.engines, codes, directive)
        return self._advise_full_many_canary(state, codes, directive)

    def _advise_full_many_canary(self, state: "_CanaryState",
                                 codes: Sequence[str],
                                 directive: Optional[Sequence[Advice]]
                                 ) -> List[FullAdvice]:
        """Split one bulk call across the two arms and merge in order."""
        c_rows = [i for i, code in enumerate(codes)
                  if canary_routes(code, state.fraction)]
        c_set = set(c_rows)
        p_rows = [i for i in range(len(codes)) if i not in c_set]
        out: List[Optional[FullAdvice]] = [None] * len(codes)
        if p_rows:
            p_dir = None if directive is None else [directive[i] for i in p_rows]
            start = time.perf_counter()
            try:
                p_full = self._fan_out(self.engines,
                                       [codes[i] for i in p_rows], p_dir)
            except Exception:
                state.note_primary_errors(len(p_rows))
                raise
            state.note_primary(len(p_rows), time.perf_counter() - start)
            for i, full in zip(p_rows, p_full):
                out[i] = full
        if c_rows:
            c_codes = [codes[i] for i in c_rows]
            c_dir = None if directive is None else [directive[i] for i in c_rows]
            start = time.perf_counter()
            try:
                c_full = self._fan_out(state.engines, c_codes, None)
            except Exception:
                # a failing canary arm degrades metrics, not availability:
                # serve its slice from the primary and count the errors
                self._apply_decision(state.note_canary_errors(len(c_rows)))
                c_full = self._fan_out(self.engines, c_codes, c_dir)
                for i, full in zip(c_rows, c_full):
                    out[i] = full
                return out
            elapsed = time.perf_counter() - start
            # shadow directive verdicts from the primary arm, for the
            # agreement counters (cheap: one extra directive-head batch,
            # largely cache-resident on repeated traffic)
            shadow = (c_dir if c_dir is not None
                      else self.directive_engine.advise_many(c_codes))
            agreed = [got.directive.needs_directive == ref.needs_directive
                      for got, ref in zip(c_full, shadow)]
            self._apply_decision(
                state.note_canary(len(c_rows), elapsed, agreed))
            for i, full in zip(c_rows, c_full):
                out[i] = full
        return out

    # -- the v1 advice surface ----------------------------------------------

    def advise_v1(self, requests: Sequence) -> List[AdviceResult]:
        """Bulk advice through the unified v1 surface.

        ``requests`` is a sequence of :class:`~repro.serve.api
        .AdviceRequest` (bare strings are accepted and wrapped as
        ``code``); every request in one call must use the same input
        form — all source text, or all pre-encoded ``ids``/``digest``
        rows.  Returns one :class:`~repro.serve.api.AdviceResult` per
        request, in order: the same verdict/probability/clause values the
        legacy ``advise_full_many`` path computes (it *is* that path
        underneath — gating, canary split, and caches are shared), plus
        the operational context as first-class fields: ``model_version``,
        ``arm`` (which canary arm was routed to), ``degraded``, and
        ``recovered``.  The arm/version labels are advisory snapshots —
        a promote racing the call can relabel, never change a verdict.
        """
        reqs = [AdviceRequest.of(r) for r in requests]
        if not reqs:
            return []
        n_encoded = sum(1 for r in reqs if r.code is None)
        if n_encoded not in (0, len(reqs)):
            raise ValueError("advise_v1: one call must not mix code= and "
                             "ids= requests")
        state = self._canary
        if n_encoded == 0:
            codes = [r.code for r in reqs]
            fulls = self.advise_full_many(codes)
            routed = [state is not None
                      and canary_routes(code, state.fraction)
                      for code in codes]
        else:
            rows = [r.ids for r in reqs]
            digests = [r.digest for r in reqs]
            fulls = self.advise_full_many_encoded(rows, digests)
            routed = [state is not None
                      and canary_routes_digest(digest, state.fraction)
                      for digest in digests]
        return [
            AdviceResult.from_full(
                full,
                model_version=(state.version if canary
                               else self.model_version),
                arm="canary" if canary else "primary",
                id=req.id)
            for req, full, canary in zip(reqs, fulls, routed)
        ]

    # -- hot reload ----------------------------------------------------------

    def reload(self, advisor_dir, version: Optional[str] = None,
               segment: Optional[str] = None) -> str:
        """Swap every head to the checkpoint in ``advisor_dir``, live.

        Loads the checkpoint (slow I/O, outside any lock), then swaps each
        head's engine to its new (model, vocab, max_len) under one fresh
        version tag.  Per head the swap is atomic — in-flight requests
        finish on the weights they started with, and version-tagged cache
        keys mean no prediction computed by the old model is ever served
        for the new one.  A request fanning out *during* the reload may
        combine old-directive with new-clause verdicts for one transient
        call; each verdict is still internally consistent.

        The checkpoint must provide every currently served head (extra
        heads in the checkpoint are ignored — the head set is fixed at
        construction).  Raises without touching the engines when the
        checkpoint is missing, malformed, or incomplete, so a failed
        reload leaves the old model serving.  ``version`` overrides the
        default ``v<n>:<dir>`` tag — :class:`~repro.serve.sharding
        .ShardedEngine` passes one tag to every worker so a fleet always
        agrees on its deployed version.  Returns the tag deployed (also
        reported by :meth:`stats` as ``model_version``).

        Raises ``RuntimeError`` while a canary is active — finish the
        rollout (:meth:`promote` / :meth:`rollback`) first, so the canary's
        agreement counters always compare against one fixed primary.

        ``segment`` names an already-published shared weights segment
        (see :func:`repro.models.share_weights`): the new heads then map
        the fleet's one read-only weight copy instead of deserializing
        the checkpoint here, and the swap is just a slot-pointer flip.
        An unreachable segment silently falls back to the eager load.
        """
        heads, shared = self._load_checkpoint_heads(advisor_dir,
                                                    segment=segment)
        with self._reload_lock:
            # checked under the lock: a start_canary racing this reload
            # either installed its state first (we refuse) or will see the
            # reloaded primary as its comparison baseline
            if self._canary is not None:
                if shared is not None:
                    shared.close()
                raise RuntimeError(
                    "a canary rollout is active; promote() or rollback() "
                    "it before reloading the primary")
            self._reload_count += 1
            if version is None:
                version = f"v{self._reload_count}:{Path(advisor_dir).name}"
            registry = ModelRegistry()
            for name in self.registry.names():
                model, vocab, max_len = heads[name]
                registry.register(name, model, vocab, max_len=max_len)
                self.engines[name].swap_model(model, vocab, max_len,
                                              version=version)
            self.registry = registry
            self.model_version = version
            if shared is not None:
                self._weights_handles.append(shared)
            self._weights_mode = "shared" if shared is not None else "private"
        return version

    def _load_checkpoint_heads(self, advisor_dir, segment=None):
        """Load an advisor checkpoint and require it to cover every served
        head (shared by :meth:`reload` and :meth:`start_canary`; raises
        without touching any engine on a missing/incomplete checkpoint).

        With ``segment`` set, binds the heads onto that already-published
        shared weights segment (zero weight bytes deserialized here); an
        unreachable or invalid segment falls back to the eager per-process
        load — availability beats sharing.  Returns ``(heads, handle)``
        where ``handle`` is the :class:`~repro.models.persistence
        .SharedWeights` attachment or ``None``.
        """
        from repro.models.persistence import load_advisor

        shared = None
        if segment is not None:
            try:
                heads, shared = load_advisor(advisor_dir, segment=segment)
            except (ValueError, FileNotFoundError, OSError):
                heads = load_advisor(advisor_dir)
        else:
            heads = load_advisor(advisor_dir)
        missing = [name for name in self.engines if name not in heads]
        if missing:
            if shared is not None:
                shared.close()
            raise ValueError(
                f"checkpoint {advisor_dir} lacks served heads {missing}; "
                f"it provides {sorted(heads)}")
        return heads, shared

    # -- canary rollout ------------------------------------------------------

    def start_canary(self, advisor_dir, fraction: float,
                     policy: Optional[CanaryPolicy] = None,
                     version: Optional[str] = None,
                     segment: Optional[str] = None) -> str:
        """Serve the checkpoint in ``advisor_dir`` to a canary slice of
        traffic next to the current primary.

        ``fraction`` of the digest space (``canary_routes``) is served by a
        second versioned engine set loaded from the checkpoint; the rest
        keeps hitting the primary.  Both arms accumulate
        :class:`~repro.serve.metrics.ArmStats` (visible under ``canary``
        in :meth:`stats`), and canary-routed snippets additionally get a
        shadow primary directive verdict for the agreement counters.  A
        canary-arm failure is served by the primary and counted as an arm
        error — a broken canary checkpoint can never fail requests.

        ``policy`` auto-promotes or auto-rolls-back once its sample floor
        is met; without one the operator calls :meth:`promote` /
        :meth:`rollback`.  ``version`` overrides the default
        ``v<n>:<dir>`` tag (:class:`~repro.serve.sharding.ShardedEngine`
        passes one tag fleet-wide).  Raises ``RuntimeError`` if a canary
        is already active; a missing/incomplete checkpoint raises without
        disturbing the primary.  Returns the canary's version tag.

        ``segment`` names an already-published shared weights segment,
        exactly as in :meth:`reload` — the canary arm then maps the same
        one-copy blob the rest of the fleet's canary arms map.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if round(fraction * 100) < 1:
            raise ValueError(
                f"fraction {fraction} quantizes to zero canary traffic "
                "(canary_routes works in whole percent; use >= 0.005)")
        heads, shared = self._load_checkpoint_heads(advisor_dir,
                                                    segment=segment)
        with self._reload_lock:
            if self._canary is not None:
                if shared is not None:
                    shared.close()
                raise RuntimeError(
                    f"canary {self._canary.version} already active; "
                    "promote() or rollback() it first")
            self._reload_count += 1
            if version is None:
                version = f"v{self._reload_count}:{Path(advisor_dir).name}"
            registry = ModelRegistry()
            engines: Dict[str, InferenceEngine] = {}
            for name in self.registry.names():
                model, vocab, max_len = heads[name]
                registry.register(name, model, vocab, max_len=max_len)
                engines[name] = InferenceEngine(
                    model, vocab, max_len=max_len, config=self.config,
                    tokenizer=self.lex_memo, version=version)
            self._canary = _CanaryState(version, fraction, registry, engines,
                                        policy, time.time())
            if shared is not None:
                self._weights_handles.append(shared)
        return version

    def promote(self, reason: Optional[str] = None) -> str:
        """Atomically make the canary the new primary; returns its tag.

        Reuses the hot-reload machinery: each primary head's slot is
        swapped to the canary's (model, vocab, max_len) under the canary's
        version tag, so in-flight primary requests finish on the weights
        they started with and every version-prefixed cache key written
        under the old primary misses by construction afterwards.  The
        canary engine set is closed (queued async work drains first); a
        request racing the promote falls back to the just-promoted
        primary.  Raises ``RuntimeError`` with no canary active.
        """
        with self._reload_lock:
            state = self._canary
            if state is None:
                raise RuntimeError("no canary active")
            state.finished = True
            self._canary = None
            for name in state.registry.names():
                head = state.registry.get(name)
                self.engines[name].swap_model(head.model, head.vocab,
                                              head.max_len,
                                              version=state.version)
            self.registry = state.registry
            self.model_version = state.version
            self._finish_canary(state, "promoted", reason)
        for engine in state.engines.values():
            engine.close()
        return state.version

    def rollback(self, reason: Optional[str] = None) -> str:
        """Drop the canary; the primary keeps serving untouched.

        Returns the primary's (still-deployed) version tag.  Raises
        ``RuntimeError`` with no canary active.
        """
        with self._reload_lock:
            state = self._canary
            if state is None:
                raise RuntimeError("no canary active")
            state.finished = True
            self._canary = None
            self._finish_canary(state, "rolled_back", reason)
        for engine in state.engines.values():
            engine.close()
        return self.model_version

    def _finish_canary(self, state: "_CanaryState", outcome: str,
                       reason: Optional[str]) -> None:
        """Record the rollout's outcome + final counters (``last_canary``
        in :meth:`stats`).  Caller holds ``_reload_lock``."""
        self._last_canary = {
            "version": state.version,
            "fraction": state.fraction,
            "outcome": outcome,
            "reason": reason,
            "duration_s": round(time.time() - state.started_at, 3),
            "arms": state.arms_dict(),
        }

    def _apply_decision(self, decision: Optional[Tuple[str, str]]) -> None:
        """Act on a :class:`CanaryPolicy` verdict from a request thread.

        Promote/rollback may race a concurrent explicit call — the loser's
        ``RuntimeError`` ("no canary active") is deliberately swallowed;
        exactly one finish wins.
        """
        if decision is None:
            return
        action, reason = decision
        try:
            if action == "promote":
                self.promote(reason=f"policy: {reason}")
            else:
                self.rollback(reason=f"policy: {reason}")
        except RuntimeError:
            pass

    # -- observability ------------------------------------------------------

    def head_names(self) -> List[str]:
        """Hosted head names, in registration order (``/healthz`` surface)."""
        return self.registry.names()

    def stats(self) -> Dict[str, object]:
        """Nested per-head counters plus a combined roll-up.

        Shape: ``{"heads": {name: EngineStats.as_dict()}, "combined":
        merged counters, "snippets_lexed": distinct snippets lexed by the
        shared memo, "model_version": deployed checkpoint tag, "reloads":
        completed hot reloads, "clause_gating": gate config + skip
        counters, "canary": live rollout (version, fraction, per-arm
        counters) or ``None``, "last_canary": how the previous rollout
        ended, or ``None``, "weights": whether the served weights map a
        shared segment and how many attachments are held}`` — JSON-ready
        for the ``/stats`` endpoint.
        """
        per_head = {name: eng.stats.as_dict() for name, eng in self.engines.items()}
        with self._gate_lock:
            gating = {
                "enabled": self.config.gate_margin is not None,
                "gate_margin": self.config.gate_margin,
                "gated_snippets": self.gated_snippets,
                "fanned_out": self.fanned_snippets,
            }
        state = self._canary
        canary = None if state is None else {
            "version": state.version,
            "fraction": state.fraction,
            "policy": None if state.policy is None else {
                "min_samples": state.policy.min_samples,
                "max_disagreement": state.policy.max_disagreement,
                "max_error_rate": state.policy.max_error_rate,
                "auto_promote": state.policy.auto_promote,
            },
            "arms": state.arms_dict(),
        }
        return {
            "heads": per_head,
            "combined": merge_engine_stats(
                eng.stats for eng in self.engines.values()),
            "snippets_lexed": self.lex_memo.lexed,
            "model_version": self.model_version,
            "reloads": self._reload_count,
            "clause_gating": gating,
            "canary": canary,
            "last_canary": self._last_canary,
            "weights": {"mode": self._weights_mode,
                        "attached_segments": len(self._weights_handles)},
        }

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close every per-head engine, canary set included (idempotent).

        Shared-weights attachments are closed best-effort afterwards —
        model parameter views may keep a mapping exported until the
        models are collected, which is fine: unlinking (the creator's
        job) does not wait on it, and the pages free with the process.
        """
        state = self._canary
        if state is not None:
            for engine in state.engines.values():
                engine.close()
        for engine in self.engines.values():
            engine.close()
        for handle in self._weights_handles:
            handle.close()

    def __enter__(self) -> "MultiModelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Sentinel default for ``CheckpointWatcher(baseline_mtime=...)``: stat the
#: manifest at construction time.
_STAT_AT_INIT = object()


class CheckpointWatcher:
    """Poll an advisor checkpoint directory and hot-reload on change.

    Backs ``repro serve --watch DIR``: a daemon thread stats the
    checkpoint's ``advisor.json`` manifest every ``interval`` seconds and
    calls ``advisor.reload(path)`` when its mtime moves.  The manifest is
    the right sentinel because :func:`repro.models.save_advisor` writes it
    *last* — a new mtime means every head's ``.npz`` is already on disk,
    so the watcher never loads a half-written checkpoint.

    A failed reload (corrupt or incomplete checkpoint) is recorded in
    ``last_error`` and polling continues — the advisor keeps serving the
    old weights.  ``advisor`` is anything exposing ``reload(path)``: a
    :class:`MultiModelEngine` or a
    :class:`~repro.serve.sharding.ShardedEngine` wrapping one per worker.

    ``baseline_mtime`` is the manifest mtime the advisor's *current*
    weights correspond to; by default the watcher stats the manifest at
    construction.  Callers that load the checkpoint *before* building the
    watcher (the CLI) should capture :func:`checkpoint_mtime` before
    loading and pass it here — otherwise a rollout landing during the
    load window is absorbed into the baseline and never served.
    """

    def __init__(self, advisor, path, interval: float = 2.0,
                 baseline_mtime=_STAT_AT_INIT) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.advisor = advisor
        self.path = Path(path)
        self.interval = interval
        self.reloads = 0          # successful reloads triggered by the watch
        self.poll_errors = 0      # poll bodies that raised (and were survived)
        self.last_error: Optional[str] = None
        self._last_mtime = (checkpoint_mtime(self.path)
                            if baseline_mtime is _STAT_AT_INIT
                            else baseline_mtime)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _manifest_mtime(self) -> Optional[int]:
        """The manifest's mtime in ns, or ``None`` while it doesn't exist."""
        return checkpoint_mtime(self.path)

    def poll_once(self) -> bool:
        """One poll step: reload if the manifest mtime moved.

        Returns True when a reload was performed (successfully or not —
        check ``last_error``); False when nothing changed.  Exposed so
        tests and manual operators can drive the watch loop themselves.
        """
        mtime = self._manifest_mtime()
        if mtime is None or mtime == self._last_mtime:
            return False
        # record the mtime before reloading: a *broken* checkpoint must not
        # be retried every interval, only when it changes again
        previous_mtime, self._last_mtime = self._last_mtime, mtime
        try:
            self.advisor.reload(self.path)
        except RuntimeError as exc:
            # a canary-blocked reload is *retryable*, not broken: keep the
            # old baseline so the rollout is retried every poll and lands
            # as soon as the canary is promoted or rolled back (otherwise
            # a checkpoint written mid-canary would be dropped forever)
            self.last_error = f"{type(exc).__name__}: {exc}"
            if "canary" in str(exc):
                self._last_mtime = previous_mtime
        except Exception as exc:  # noqa: BLE001 — keep serving old weights
            self.last_error = f"{type(exc).__name__}: {exc}"
        else:
            self.reloads += 1
            self.last_error = None
        return True

    def start(self) -> "CheckpointWatcher":
        """Start the polling daemon thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="checkpoint-watcher", daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        # the poll body is exception-proofed: a transient unreadable or
        # partially-written checkpoint dir (an unpacking rollout, an NFS
        # blip) must log-and-retry, not silently kill the watcher thread
        # and leave the fleet never reloading again
        while not self._stop.wait(self.interval):
            try:
                self.poll_once()
            except Exception as exc:  # noqa: BLE001 — watcher must survive
                self.poll_errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"

    def stop(self) -> None:
        """Stop the polling thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    def __enter__(self) -> "CheckpointWatcher":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
